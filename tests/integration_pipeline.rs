//! Cross-crate integration tests: the full LingXi pipeline end to end.

use lingxi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_catalog(seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 6,
            mean_duration: 40.0,
            vbr: VbrModel::default_vbr(),
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .expect("catalog")
}

#[test]
fn full_managed_pipeline_reduces_stalls_for_sensitive_user() {
    let catalog = small_catalog(1);
    let profile = StallProfile::new(SensitivityKind::Sensitive, 1.5, 0.6).unwrap();
    let net = UserNetProfile {
        class: NetClass::Constrained,
        mean_kbps: 1100.0,
        cv: 0.6,
    };

    let run_arm = |managed: bool, seed: u64| -> (f64, usize) {
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let mut total_stall = 0.0;
        let mut completions = 0usize;
        for s in 0..16 {
            let video = catalog.video_cyclic(s);
            let mut trace_rng = StdRng::seed_from_u64(9000 + s as u64);
            let trace = net
                .trace((video.duration() * 3.0) as usize, 1.0, &mut trace_rng)
                .unwrap();
            let mut abr = Hyb::default_rule();
            let mut user = QosExitModel::calibrated(profile);
            let mut rng = StdRng::seed_from_u64(seed + s as u64);
            if managed {
                let out = run_managed_session(
                    1,
                    video,
                    catalog.ladder(),
                    &trace,
                    PlayerConfig::default(),
                    &mut abr,
                    &mut controller,
                    &mut predictor,
                    &mut user,
                    &mut rng,
                )
                .unwrap();
                total_stall += out.log.total_stall();
                completions += usize::from(out.log.completed());
            } else {
                let setup = SessionSetup {
                    user_id: 1,
                    video,
                    ladder: catalog.ladder(),
                    process: &trace,
                    config: PlayerConfig::default(),
                };
                let ladder = catalog.ladder();
                let sizes = &video.sizes;
                let log = run_session(
                    &setup,
                    |env| {
                        let ctx = AbrContext {
                            ladder,
                            sizes,
                            next_segment: env.segment_index(),
                            segment_duration: sizes.segment_duration(),
                        };
                        abr.select(env, &ctx)
                    },
                    |env, record, r| {
                        let view = SegmentView {
                            env,
                            record,
                            ladder,
                        };
                        if user.decide(&view, r) {
                            ExitDecision::Exit
                        } else {
                            ExitDecision::Continue
                        }
                    },
                    &mut rng,
                )
                .unwrap();
                total_stall += log.total_stall();
                completions += usize::from(log.completed());
            }
        }
        (total_stall, completions)
    };

    let (stall_managed, _) = run_arm(true, 100);
    let (stall_static, _) = run_arm(false, 100);
    assert!(
        stall_managed < stall_static * 1.1,
        "managed stall {stall_managed:.1} should not exceed static {stall_static:.1}"
    );
}

#[test]
fn long_term_state_roundtrips_through_store() {
    let catalog = small_catalog(2);
    let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.5).unwrap();
    let net = UserNetProfile {
        class: NetClass::Constrained,
        mean_kbps: 900.0,
        cv: 0.5,
    };
    let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
    let mut predictor = ProfilePredictor {
        profile,
        base: 0.01,
    };
    let mut rng = StdRng::seed_from_u64(7);
    for s in 0..6 {
        let video = catalog.video_cyclic(s);
        let trace = net
            .trace((video.duration() * 3.0) as usize, 1.0, &mut rng)
            .unwrap();
        let mut abr = Hyb::default_rule();
        let mut user = QosExitModel::calibrated(profile);
        run_managed_session(
            42,
            video,
            catalog.ladder(),
            &trace,
            PlayerConfig::default(),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
    }
    let dir = std::env::temp_dir().join(format!("lingxi_it_state_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = StateStore::open(&dir).unwrap();
    let state = LongTermState {
        user_id: 42,
        tracker: controller.tracker().clone(),
        params: controller.params(),
        optimizations: controller.optimizations(),
    };
    store.save(&state).unwrap();
    let restored = store.load(42).unwrap().expect("state saved");
    // JSON float text round-trips can drift by one ulp; compare the fields
    // that matter semantically.
    assert_eq!(restored.user_id, state.user_id);
    assert_eq!(restored.optimizations, state.optimizations);
    assert_eq!(restored.params, state.params);
    assert_eq!(
        restored.tracker.recent_stall_count(),
        state.tracker.recent_stall_count()
    );
    for (a, b) in restored
        .tracker
        .matrix()
        .flat()
        .iter()
        .zip(state.tracker.matrix().flat())
    {
        assert!((a - b).abs() < 1e-9);
    }
    // A controller restored from the state carries the tuned parameters.
    let c2 =
        LingXiController::with_state(LingXiConfig::for_hyb(), restored.tracker, restored.params)
            .unwrap();
    assert_eq!(c2.params(), controller.params());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn predictor_training_pipeline_end_to_end() {
    // media → net → player → user → exit: build a labelled dataset from
    // simulated playback and train the Fig. 7 predictor on it.
    use lingxi::exp::datasets::harvest_entries;
    use lingxi::exp::world::{stall_heavy_mixture, World, WorldConfig};

    let world = World::build(
        &WorldConfig {
            n_users: 60,
            n_videos: 15,
            mean_sessions_per_day: 8.0,
            mixture: stall_heavy_mixture(),
        },
        3,
    )
    .unwrap();
    let harvested = harvest_entries(&world, 3, 2).unwrap();
    let raw: Vec<_> = harvested.into_iter().map(|h| h.entry).collect();
    let ds = ExitDataset::new(&raw, DatasetFlavor::Stall).unwrap();
    assert!(ds.len() > 100, "stall dataset too small: {}", ds.len());
    let mut rng = StdRng::seed_from_u64(4);
    let (train, test) = ds.split(&mut rng).unwrap();
    let balanced = ds.balance(&train, &mut rng).unwrap();
    let mut predictor = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
    predictor.train(&ds, &balanced, &mut rng).unwrap();
    let report = predictor.evaluate(&ds, &test);
    assert!(report.accuracy > 0.5, "accuracy {}", report.accuracy);
    assert!(report.recall > 0.4, "recall {}", report.recall);
}

#[test]
fn ab_engine_runs_lingxi_vs_static_end_to_end() {
    use lingxi::exp::world::{LingXiHybArm, StaticHybArm, World, WorldConfig};
    use std::sync::Arc;

    let world = Arc::new(World::build(&WorldConfig::default().scaled(0.04), 5).unwrap());
    let users: Vec<UserRecord> = world.population.users().to_vec();
    let mut test = AbTest::new(6);
    test.common_random_numbers = true;
    let wc = world.clone();
    let wt = world.clone();
    let report = test
        .run(
            &users,
            &users,
            move |_| {
                Box::new(StaticHybArm {
                    params: QoeParams::default(),
                    world: wc.clone(),
                }) as Box<dyn ArmRunner>
            },
            move |u| Box::new(LingXiHybArm::new(wt.clone(), u)) as Box<dyn ArmRunner>,
        )
        .unwrap();
    // CRN + identical AA behaviour ⇒ zero pre-intervention differences.
    for d in 0..5 {
        assert!(
            report.watch_time.daily_rel_diff_pct[d].abs() < 1e-9,
            "AA day {d} diff {}",
            report.watch_time.daily_rel_diff_pct[d]
        );
    }
    // Stall effect direction: LingXi must not increase stalls.
    assert!(report.stall_time.did.effect < 10.0);
}

#[test]
fn pensieve_policy_tunable_at_inference() {
    // The §5.2 augmentation: changing QoeParams changes Pensieve's chosen
    // level distribution without retraining.
    let catalog = small_catalog(8);
    let mut rng = StdRng::seed_from_u64(9);
    let mut policy = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
    let trainer = lingxi::abr::PensieveTrainer {
        episodes_per_epoch: 8,
        epochs: 6,
        episode_segments: 20,
        ..Default::default()
    };
    trainer
        .train(&mut policy, catalog.ladder(), &mut rng)
        .unwrap();
    // Same state, two parameterisations: outputs must be valid levels and
    // the probability vectors must differ.
    let env = PlayerEnv::new(PlayerConfig::default()).unwrap();
    let video = catalog.video_cyclic(0);
    let ctx = AbrContext {
        ladder: catalog.ladder(),
        sizes: &video.sizes,
        next_segment: 0,
        segment_duration: 2.0,
    };
    policy.set_params(QoeParams::stall_averse());
    let p1 = policy.action_probs(&env, &ctx);
    policy.set_params(QoeParams::quality_seeking());
    let p2 = policy.action_probs(&env, &ctx);
    assert_eq!(p1.len(), 4);
    let diff: f64 = p1.iter().zip(&p2).map(|(a, b)| (a - b).abs()).sum();
    assert!(diff > 1e-9, "params must influence the policy");
}
