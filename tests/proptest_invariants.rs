//! Property-based invariants across the workspace (proptest).

use lingxi::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // Whole-pipeline cases (sessions, Monte-Carlo evaluations) are the
    // most expensive properties in the workspace: keep the count low so
    // `cargo test -q` completes in CI time. Override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The player buffer always stays within [0, B_max] whatever the
    /// segment sizes and bandwidths thrown at it (Eq. 3's clamping).
    #[test]
    fn buffer_always_within_bounds(
        seed in 0u64..1000,
        sizes in proptest::collection::vec(100.0f64..20_000.0, 1..40),
        bandwidths in proptest::collection::vec(50.0f64..60_000.0, 1..40),
    ) {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.02)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, &size) in sizes.iter().enumerate() {
            let bw = bandwidths[i % bandwidths.len()];
            env.step(size, i % 4, bw, 2.0, &mut rng).unwrap();
            prop_assert!(env.buffer() >= 0.0, "buffer {}", env.buffer());
            prop_assert!(env.buffer() <= env.bmax() + 1e-9, "buffer {} > bmax {}", env.buffer(), env.bmax());
            prop_assert!(env.total_stall() >= 0.0);
            prop_assert!(env.wall_time() >= env.playback_time() - 1e-9);
        }
    }

    /// Every ABR returns a level inside the ladder for arbitrary player
    /// states.
    #[test]
    fn abrs_always_return_valid_levels(
        seed in 0u64..500,
        steps in 0usize..12,
        bandwidth in 100.0f64..50_000.0,
    ) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(seed);
        let sizes = SegmentSizes::generate(&ladder, 30, 2.0, &VbrModel::default_vbr(), &mut rng).unwrap();
        let mut env = PlayerEnv::new(PlayerConfig::default()).unwrap();
        for k in 0..steps {
            let size = sizes.size_kbits(k, k % 4).unwrap();
            env.step(size, k % 4, bandwidth, 2.0, &mut rng).unwrap();
        }
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: steps,
            segment_duration: 2.0,
        };
        let mut abrs: Vec<Box<dyn Abr>> = vec![
            Box::new(ThroughputRule::default_rule()),
            Box::new(Bba::default_rule()),
            Box::new(Bola::default_rule()),
            Box::new(Hyb::default_rule()),
            Box::new(RobustMpc::default_rule()),
        ];
        for abr in abrs.iter_mut() {
            let level = abr.select(&env, &ctx);
            prop_assert!(level <= ladder.top_level(), "{} gave {}", abr.name(), level);
        }
    }

    /// QoeParams unit-cube mapping is a clamped bijection.
    #[test]
    fn qoe_params_unit_roundtrip(
        stall in 1.0f64..20.0,
        switch in 0.0f64..4.0,
        beta in 0.3f64..0.95,
    ) {
        let p = QoeParams { stall_weight: stall, switch_weight: switch, beta };
        let q = QoeParams::from_unit(p.to_unit());
        prop_assert!((p.stall_weight - q.stall_weight).abs() < 1e-9);
        prop_assert!((p.switch_weight - q.switch_weight).abs() < 1e-9);
        prop_assert!((p.beta - q.beta).abs() < 1e-9);
    }

    /// Exit-model probabilities are always valid probabilities, and the
    /// stall response is monotone in cumulative session stall.
    #[test]
    fn exit_probabilities_valid_and_monotone(
        tolerance in 0.5f64..10.0,
        ceiling in 0.05f64..0.9,
        stalls in proptest::collection::vec(0.0f64..5.0, 1..12),
    ) {
        let profile = StallProfile::new(SensitivityKind::Sensitive, tolerance, ceiling).unwrap();
        let mut cumulative = 0.0;
        let mut prev = 0.0;
        for s in stalls {
            cumulative += s;
            let r = profile.response(cumulative);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r >= prev - 1e-12, "response not monotone");
            prev = r;
        }
    }

    /// Monte-Carlo evaluation returns exit rates in [0, 1] and respects
    /// the sample budget for arbitrary bandwidth models.
    #[test]
    fn mc_exit_rate_is_probability(
        mu in 200.0f64..20_000.0,
        sigma_frac in 0.0f64..0.8,
        p_exit in 0.0f64..0.5,
        seed in 0u64..200,
    ) {
        use lingxi::core::{evaluate_parameters, ConstantPredictor, McConfig};
        use lingxi::stats::NormalDist;
        let ladder = BitrateLadder::default_short_video();
        let env = PlayerEnv::new(PlayerConfig::default()).unwrap();
        let tracker = UserStateTracker::new();
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: p_exit };
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = McConfig { samples: 4, t_sample: 24.0, segment_duration: 2.0 };
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(mu, mu * sigma_frac).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            None,
            &mut rng,
        ).unwrap();
        prop_assert!((0.0..=1.0).contains(&eval.exit_rate));
        prop_assert!(eval.watched <= cfg.samples * cfg.segments_per_sample());
        prop_assert!(eval.exited <= eval.watched);
    }

    /// GP posterior is finite with non-negative variance on arbitrary
    /// observation sets.
    #[test]
    fn gp_predictions_well_formed(
        xs in proptest::collection::vec(0.0f64..1.0, 2..12),
        noise_scale in 0.01f64..0.5,
        query in 0.0f64..1.0,
    ) {
        use lingxi::bayes::{GpConfig, GpModel};
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 6.0).sin() * noise_scale).collect();
        let gp = GpModel::fit(GpConfig::default(), &points, &ys).unwrap();
        let (mean, var) = gp.predict(&[query]).unwrap();
        prop_assert!(mean.is_finite());
        prop_assert!(var.is_finite());
        prop_assert!(var >= 0.0);
    }

    /// Session logs are internally consistent for arbitrary worlds.
    #[test]
    fn session_logs_consistent(seed in 0u64..300, kbps in 200.0f64..30_000.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig { n_videos: 2, ..CatalogConfig::default() },
            &mut rng,
        ).unwrap();
        let trace = BandwidthTrace::constant(kbps, 600, 1.0).unwrap();
        let video = catalog.video_cyclic(0);
        let setup = SessionSetup {
            user_id: 1,
            video,
            ladder: catalog.ladder(),
            process: &trace,
            config: PlayerConfig::default(),
        };
        let mut abr = Hyb::default_rule();
        let ladder = catalog.ladder();
        let sizes = &video.sizes;
        let log = run_session(
            &setup,
            |env| {
                let ctx = AbrContext {
                    ladder, sizes,
                    next_segment: env.segment_index(),
                    segment_duration: sizes.segment_duration(),
                };
                abr.select(env, &ctx)
            },
            |_, record, _| {
                // Deterministic pseudo-user: exits on heavy stall.
                if record.stall_time > 6.0 { ExitDecision::Exit } else { ExitDecision::Continue }
            },
            &mut rng,
        ).unwrap();
        prop_assert!(log.segments.len() <= video.n_segments());
        prop_assert!(log.watch_time <= log.video_duration + 1e-9);
        prop_assert!(log.total_stall() >= 0.0);
        prop_assert!(log.completion_ratio() >= 0.0 && log.completion_ratio() <= 1.0);
        if log.completed() {
            prop_assert_eq!(log.segments.len(), video.n_segments());
        } else {
            prop_assert!(log.exit_segment.is_some());
        }
    }
}
