//! Facade smoke test: the `lingxi::prelude` re-exports resolve and the
//! README/lib.rs quickstart path (`Catalog::generate` →
//! `run_managed_session`) runs deterministically and fast.

use std::time::Instant;

use lingxi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every prelude name referenced by type or value position, so a future
/// re-export regression is a compile error here rather than a downstream
/// user surprise.
#[test]
fn prelude_reexports_resolve() {
    // abr
    let _: ThroughputRule = ThroughputRule::default_rule();
    let _: Bba = Bba::default_rule();
    let _: Bola = Bola::default_rule();
    let _: Hyb = Hyb::default_rule();
    let _: RobustMpc = RobustMpc::default_rule();
    let _: QoeParams = QoeParams::default();
    let _ = PensieveConfig::default();
    let mut rng = StdRng::seed_from_u64(0);
    let pensieve: Pensieve = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
    let _: Box<dyn Abr> = Box::new(pensieve);
    let _ = QoeLin::from_params(&QoeParams::default(), QualityMap::LinearMbps);
    // media
    let ladder: BitrateLadder = BitrateLadder::default_short_video();
    let _: CatalogConfig = CatalogConfig::default();
    let _: VbrModel = VbrModel::default_vbr();
    let _: QualityTier = QualityTier::Sd;
    let sizes: SegmentSizes =
        SegmentSizes::generate(&ladder, 4, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
    let _ = sizes.n_segments();
    // net
    let _: BandwidthTrace = BandwidthTrace::constant(1000.0, 10, 1.0).unwrap();
    let _: UserNetProfile = UserNetProfile {
        class: NetClass::Wifi,
        mean_kbps: 5000.0,
        cv: 0.3,
    };
    let _ = ProductionMixture::default();
    let _ = RttModel::default_mobile();
    let _: Box<dyn BandwidthEstimator> = Box::new(lingxi::net::EwmaEstimator::new(0.3).unwrap());
    // player
    let _: PlayerConfig = PlayerConfig::default();
    let _: BmaxPolicy = BmaxPolicy::Fixed(10.0);
    let env: PlayerEnv = PlayerEnv::new(PlayerConfig::default()).unwrap();
    let _ = env.buffer();
    let _: Option<SessionLog> = None;
    let _: Option<SessionSetup<'_>> = None;
    let _: ExitDecision = ExitDecision::Continue;
    // user
    let profile: StallProfile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.5).unwrap();
    let _: QosExitModel = QosExitModel::calibrated(profile);
    let _: RuleBasedExit = RuleBasedExit::new(6.0, 3).unwrap();
    let _: PopulationConfig = PopulationConfig::default();
    let _: Option<UserPopulation> = None;
    let _: Option<UserRecord> = None;
    let _: Option<SegmentView<'_>> = None;
    let _: Option<Box<dyn ExitModel>> = None;
    // exit
    let _: UserStateTracker = UserStateTracker::new();
    let _: StateMatrix = StateMatrix::zeros();
    let _: PredictorConfig = PredictorConfig::small();
    let _: Option<ExitPredictor> = None;
    let _: Option<HybridPredictor> = None;
    let _: Option<ExitDataset> = None;
    let _: DatasetFlavor = DatasetFlavor::All;
    // bayes
    let _: ObserverConfig = ObserverConfig::for_dim(2);
    let _: ObOptimizer = ObOptimizer::new(ObserverConfig::for_dim(2)).unwrap();
    // core
    let _: LingXiConfig = LingXiConfig::for_hyb();
    let _: LingXiController = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
    let _: McConfig = McConfig::default();
    let _: ProfilePredictor = ProfilePredictor {
        profile,
        base: 0.01,
    };
    let _: SearchStrategy = SearchStrategy::default();
    let _: LongTermState = LongTermState::new(1);
    let _: Option<StateStore> = None;
    let _: Option<RolloutContext> = None;
    let _: Option<Box<dyn RolloutPredictor>> = None;
    // abtest
    let _: AbSchedule = AbSchedule::paper_default();
    let _: Option<AbTest> = None;
    let _: Option<Box<dyn ArmRunner>> = None;
}

/// The quickstart doctest path, under a fixed seed, with a wall-clock
/// budget: the facade's first-contact experience must stay fast.
#[test]
fn quickstart_path_runs_fast() {
    let start = Instant::now();

    let mut rng = StdRng::seed_from_u64(7);
    let catalog = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 3,
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let trace = BandwidthTrace::constant(1200.0, 600, 1.0).unwrap();

    let mut abr = Hyb::default_rule();
    let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
    let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.5).unwrap();
    let mut predictor = ProfilePredictor {
        profile,
        base: 0.01,
    };
    let mut user = QosExitModel::calibrated(profile);

    let outcome = run_managed_session(
        1,
        catalog.video_cyclic(0),
        catalog.ladder(),
        &trace,
        PlayerConfig::default(),
        &mut abr,
        &mut controller,
        &mut predictor,
        &mut user,
        &mut rng,
    )
    .unwrap();

    assert!(!outcome.log.segments.is_empty());
    assert!(outcome.log.total_stall() >= 0.0);
    assert!(outcome.log.watch_time <= outcome.log.video_duration + 1e-9);

    // Determinism: the same seed reproduces the same session.
    let mut rng2 = StdRng::seed_from_u64(7);
    let catalog2 = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 3,
            ..CatalogConfig::default()
        },
        &mut rng2,
    )
    .unwrap();
    let mut abr2 = Hyb::default_rule();
    let mut controller2 = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
    let mut predictor2 = ProfilePredictor {
        profile,
        base: 0.01,
    };
    let mut user2 = QosExitModel::calibrated(profile);
    let outcome2 = run_managed_session(
        1,
        catalog2.video_cyclic(0),
        catalog2.ladder(),
        &trace,
        PlayerConfig::default(),
        &mut abr2,
        &mut controller2,
        &mut predictor2,
        &mut user2,
        &mut rng2,
    )
    .unwrap();
    assert_eq!(outcome.log.segments.len(), outcome2.log.segments.len());
    assert_eq!(outcome.log.watch_time, outcome2.log.watch_time);

    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "quickstart took {elapsed:?}, budget is 5 s"
    );
}
