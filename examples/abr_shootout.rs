//! ABR shootout: every algorithm in the crate on the same traces.
//!
//! Run with: `cargo run --release --example abr_shootout`
//!
//! Plays a fixed session mix over three bandwidth regimes (constrained /
//! cellular / wifi) with each ABR and prints mean bitrate, stall time,
//! switches and `QoE_lin` — the offline comparison that motivates picking
//! HYB/MPC as LingXi's substrates.

use lingxi::abr::qoe_lin_of_log;
use lingxi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make_abrs() -> Vec<Box<dyn Abr>> {
    let mut rng = StdRng::seed_from_u64(99);
    vec![
        Box::new(ThroughputRule::default_rule()),
        Box::new(Bba::default_rule()),
        Box::new(Bola::default_rule()),
        Box::new(Hyb::default_rule()),
        Box::new(RobustMpc::default_rule()),
        Box::new(Pensieve::new(PensieveConfig::default(), &mut rng).expect("pensieve")),
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let catalog = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 10,
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .expect("catalog");
    let regimes = [
        ("constrained", NetClass::Constrained, 1200.0, 0.6),
        ("cellular", NetClass::Cellular, 3500.0, 0.45),
        ("wifi", NetClass::Wifi, 12_000.0, 0.3),
    ];
    let qoe = QoeLin::paper_default(catalog.ladder());
    let sessions = 12;

    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>8} {:>9}",
        "regime", "abr", "kbps", "stall(s)", "switches", "QoE_lin"
    );
    for (name, class, kbps, cv) in regimes {
        let net = UserNetProfile {
            class,
            mean_kbps: kbps,
            cv,
        };
        for abr in make_abrs().iter_mut() {
            let mut bitrate = 0.0;
            let mut stall = 0.0;
            let mut switches = 0usize;
            let mut qoe_total = 0.0;
            for s in 0..sessions {
                let video = catalog.video_cyclic(s);
                let mut trace_rng = StdRng::seed_from_u64(7000 + s as u64);
                let trace = net
                    .trace((video.duration() * 3.0) as usize, 1.0, &mut trace_rng)
                    .expect("trace");
                let setup = SessionSetup {
                    user_id: 0,
                    video,
                    ladder: catalog.ladder(),
                    process: &trace,
                    config: PlayerConfig::default(),
                };
                abr.reset();
                let ladder = catalog.ladder();
                let sizes = &video.sizes;
                let mut session_rng = StdRng::seed_from_u64(8000 + s as u64);
                let log = run_session(
                    &setup,
                    |env| {
                        let ctx = AbrContext {
                            ladder,
                            sizes,
                            next_segment: env.segment_index(),
                            segment_duration: sizes.segment_duration(),
                        };
                        abr.select(env, &ctx)
                    },
                    |_, _, _| ExitDecision::Continue, // patient robot viewer
                    &mut session_rng,
                )
                .expect("session");
                bitrate += log.mean_bitrate();
                stall += log.total_stall();
                switches += log.switch_count();
                qoe_total += qoe_lin_of_log(&qoe, ladder, &log);
            }
            println!(
                "{:<12} {:<11} {:>9.0} {:>9.2} {:>8} {:>9.1}",
                name,
                abr.name(),
                bitrate / sessions as f64,
                stall,
                switches,
                qoe_total
            );
        }
        println!();
    }
}
