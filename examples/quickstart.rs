//! Quickstart: one stall-sensitive user on a weak link, with and without
//! LingXi.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The example plays the same videos over the same bandwidth twice — once
//! with static HYB parameters, once with LingXi re-tuning β after stalls —
//! and prints the per-session stall/watch outcomes side by side.

use lingxi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- World: a small catalog and a bursty 1.2 Mbps link. -------------
    let catalog = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 6,
            mean_duration: 40.0,
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .expect("catalog");
    let net = UserNetProfile {
        class: NetClass::Constrained,
        mean_kbps: 1200.0,
        cv: 0.6,
    };

    // --- User: exits quickly once stalls exceed ~2 s. -------------------
    let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.6).expect("profile");

    // --- LingXi: HYB under management. -----------------------------------
    let mut controller = LingXiController::new(LingXiConfig::for_hyb()).expect("config");
    let mut predictor = ProfilePredictor {
        profile,
        base: 0.01,
    };

    println!("session |      arm | watch(s) | stall(s) | stalls | beta_after");
    println!("--------+----------+----------+----------+--------+-----------");
    let sessions = 10;
    let mut managed_stall = 0.0;
    let mut static_stall = 0.0;
    for s in 0..sessions {
        let video = catalog.video_cyclic(s);
        let mut trace_rng = StdRng::seed_from_u64(100 + s as u64);
        let trace = net
            .trace((video.duration() * 3.0) as usize, 1.0, &mut trace_rng)
            .expect("trace");

        // Managed arm.
        let mut abr = Hyb::default_rule();
        let mut user = QosExitModel::calibrated(profile);
        let mut arm_rng = StdRng::seed_from_u64(1000 + s as u64);
        let managed = run_managed_session(
            1,
            video,
            catalog.ladder(),
            &trace,
            PlayerConfig::default(),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut arm_rng,
        )
        .expect("managed session");
        managed_stall += managed.log.total_stall();
        println!(
            "{:>7} | {:>8} | {:>8.1} | {:>8.2} | {:>6} | {:>9.2}",
            s + 1,
            "lingxi",
            managed.log.watch_time,
            managed.log.total_stall(),
            managed.log.stall_count(),
            controller.params().beta,
        );

        // Static arm on the same video/trace.
        let mut abr2 = Hyb::default_rule();
        let mut user2 = QosExitModel::calibrated(profile);
        let mut arm_rng2 = StdRng::seed_from_u64(2000 + s as u64);
        let setup = SessionSetup {
            user_id: 1,
            video,
            ladder: catalog.ladder(),
            process: &trace,
            config: PlayerConfig::default(),
        };
        let ladder = catalog.ladder();
        let sizes = &video.sizes;
        let log = run_session(
            &setup,
            |env| {
                let ctx = AbrContext {
                    ladder,
                    sizes,
                    next_segment: env.segment_index(),
                    segment_duration: sizes.segment_duration(),
                };
                abr2.select(env, &ctx)
            },
            |env, record, r| {
                let view = SegmentView {
                    env,
                    record,
                    ladder,
                };
                if user2.decide(&view, r) {
                    ExitDecision::Exit
                } else {
                    ExitDecision::Continue
                }
            },
            &mut arm_rng2,
        )
        .expect("static session");
        static_stall += log.total_stall();
        println!(
            "{:>7} | {:>8} | {:>8.1} | {:>8.2} | {:>6} | {:>9.2}",
            s + 1,
            "static",
            log.watch_time,
            log.total_stall(),
            log.stall_count(),
            0.80,
        );
    }
    println!();
    println!(
        "total stall: lingxi {managed_stall:.1} s vs static {static_stall:.1} s \
         ({} optimizations ran)",
        controller.optimizations()
    );
}
