//! Personalization in action: three users with different stall tolerance
//! share the same network, and LingXi learns a different β for each.
//!
//! Run with: `cargo run --release --example personalized_streaming`
//!
//! Also demonstrates the deployment state machinery of §4: each user's
//! long-term state is persisted to a `StateStore` and restored, as the
//! production client does across app restarts.

use lingxi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let catalog = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 8,
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .expect("catalog");
    let net = UserNetProfile {
        class: NetClass::Constrained,
        mean_kbps: 1000.0,
        cv: 0.6,
    };
    let users = [
        (
            "impatient",
            StallProfile::new(SensitivityKind::Sensitive, 1.0, 0.7).expect("profile"),
        ),
        (
            "threshold-4s",
            StallProfile::new(SensitivityKind::ThresholdSensitive, 4.0, 0.6).expect("profile"),
        ),
        (
            "patient",
            StallProfile::new(SensitivityKind::Insensitive, 9.0, 0.15).expect("profile"),
        ),
    ];

    let store_dir = std::env::temp_dir().join("lingxi_example_state");
    let store = StateStore::open(&store_dir).expect("state store");

    println!(
        "{:<14} {:>9} {:>12} {:>14}",
        "user", "sessions", "final beta", "optimizations"
    );
    for (uid, (name, profile)) in users.iter().enumerate() {
        // Restore long-term state if this user streamed before.
        let restored = store.load(uid as u64).expect("load");
        let mut controller = match restored {
            Some(state) => {
                LingXiController::with_state(LingXiConfig::for_hyb(), state.tracker, state.params)
                    .expect("controller")
            }
            None => LingXiController::new(LingXiConfig::for_hyb()).expect("controller"),
        };
        let mut predictor = ProfilePredictor {
            profile: *profile,
            base: 0.01,
        };
        let sessions = 14;
        let mut user_rng = StdRng::seed_from_u64(500 + uid as u64);
        for s in 0..sessions {
            let video = catalog.video_cyclic(s);
            let trace = net
                .trace((video.duration() * 3.0) as usize, 1.0, &mut user_rng)
                .expect("trace");
            let mut abr = Hyb::default_rule();
            let mut user = QosExitModel::calibrated(*profile);
            let _ = run_managed_session(
                uid as u64,
                video,
                catalog.ladder(),
                &trace,
                PlayerConfig::default(),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut user_rng,
            )
            .expect("session");
        }
        // Persist long-term state (the app-termination hook of §4).
        let state = LongTermState {
            user_id: uid as u64,
            tracker: controller.tracker().clone(),
            params: controller.params(),
            optimizations: controller.optimizations(),
        };
        store.save(&state).expect("save");
        println!(
            "{:<14} {:>9} {:>12.3} {:>14}",
            name,
            sessions,
            controller.params().beta,
            controller.optimizations()
        );
    }
    println!("\nlong-term state persisted under {store_dir:?} (restored on next run)");
}
