//! A compact version of the paper's §5.3 A/B test: 10 days, AA then AB,
//! difference-in-differences on watch time, bitrate and stall time.
//!
//! Run with: `cargo run --release --example ab_experiment`

use std::sync::Arc;

use lingxi::exp::world::{LingXiHybArm, StaticHybArm, World, WorldConfig};
use lingxi::prelude::*;

fn main() {
    let world = Arc::new(World::build(&WorldConfig::default().scaled(0.15), 11).expect("world"));
    let buckets = world.population.traffic_split(2);
    let control: Vec<UserRecord> = buckets[0].iter().map(|u| **u).collect();
    let treatment: Vec<UserRecord> = buckets[1].iter().map(|u| **u).collect();
    println!(
        "cohorts: {} control users, {} treatment users, 10 days (AA days 1-5)",
        control.len(),
        treatment.len()
    );

    let test = AbTest::new(77);
    let wc = world.clone();
    let wt = world.clone();
    let report = test
        .run(
            &control,
            &treatment,
            move |_| {
                Box::new(StaticHybArm {
                    params: QoeParams::default(),
                    world: wc.clone(),
                }) as Box<dyn ArmRunner>
            },
            move |u| Box::new(LingXiHybArm::new(wt.clone(), u)) as Box<dyn ArmRunner>,
        )
        .expect("experiment");

    for series in [&report.watch_time, &report.bitrate, &report.stall_time] {
        println!(
            "\n=== {} (relative % diff, treatment vs control) ===",
            series.name
        );
        for (d, v) in series.daily_rel_diff_pct.iter().enumerate() {
            let phase = if d < 5 { "AA" } else { "AB" };
            println!("  day {:>2} [{phase}]  {v:>8.3}%", d + 1);
        }
        println!(
            "  DiD effect {:+.3}% ± {:.3} (t = {:.2}, p = {:.4})",
            series.did.effect, series.did.std_err, series.did.t, series.did.p_two_sided
        );
    }
}
