#!/usr/bin/env bash
# Vendored-registry drift check (CI): the crates under vendor/ are path
# dependencies standing in for crates.io (no network in the build
# environment — see DESIGN.md), so Cargo.lock must agree with each
# vendored crate's manifest. A mismatch means someone bumped a vendored
# crate without rebuilding the lockfile (or hand-edited the lockfile),
# which `cargo build --locked` would later fail on in confusing ways.
#
# Usage: scripts/check_vendor_drift.sh [repo-root]
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
lock="$root/Cargo.lock"
fail=0

if [ ! -f "$lock" ]; then
    echo "error: $lock not found" >&2
    exit 1
fi

for manifest in "$root"/vendor/*/Cargo.toml; do
    name=$(sed -n 's/^name *= *"\(.*\)"/\1/p' "$manifest" | head -n1)
    version=$(sed -n 's/^version *= *"\(.*\)"/\1/p' "$manifest" | head -n1)
    if [ -z "$name" ] || [ -z "$version" ]; then
        echo "DRIFT: cannot parse name/version from $manifest" >&2
        fail=1
        continue
    fi
    # The lockfile records each package as a `[[package]]` block whose
    # `version` line directly follows `name`.
    locked=$(awk -v pkg="$name" '
        $0 == "name = \"" pkg "\"" { grab = 1; next }
        grab && /^version = / { gsub(/version = |"/, ""); print; exit }
    ' "$lock")
    if [ -z "$locked" ]; then
        echo "DRIFT: vendored crate $name is missing from Cargo.lock" >&2
        fail=1
    elif [ "$locked" != "$version" ]; then
        echo "DRIFT: $name vendor/ has $version but Cargo.lock has $locked" >&2
        fail=1
    else
        echo "ok: $name $version"
    fi
done

# Unsafe-budget check: each vendored crate's raw word-boundary count of
# `unsafe` across its *.rs files must match the committed manifest
# vendor/UNSAFE_BUDGET (same metric as lingxi-detlint rule D4 — raw text
# on purpose, so even a new comment mentioning unsafe surfaces for
# review). Member crates don't need a budget: they #![forbid(unsafe_code)].
budget="$root/vendor/UNSAFE_BUDGET"
if [ ! -f "$budget" ]; then
    echo "DRIFT: $budget not found (every vendored crate needs a declared unsafe budget)" >&2
    fail=1
else
    for dir in "$root"/vendor/*/; do
        name=$(basename "$dir")
        # grep exits 1 on zero matches (the common, good case); guard it
        # so `set -o pipefail` doesn't abort the scan.
        actual=$( (find "$dir" -name '*.rs' -print0 \
            | xargs -0 grep -oh -w 'unsafe' 2>/dev/null || true) | wc -l | tr -d ' ')
        declared=$(awk -v pkg="$name" '$1 == pkg { print $2; exit }' "$budget")
        if [ -z "$declared" ]; then
            echo "DRIFT: vendor crate $name (unsafe count $actual) has no entry in vendor/UNSAFE_BUDGET" >&2
            fail=1
        elif [ "$declared" != "$actual" ]; then
            echo "DRIFT: vendor crate $name: unsafe count $actual drifted from declared budget $declared" >&2
            fail=1
        else
            echo "ok: $name unsafe budget $declared"
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "vendored-registry drift detected: re-run 'cargo build' to refresh Cargo.lock (and commit it); for unsafe-budget drift, audit the new sites and update vendor/UNSAFE_BUDGET in the same commit" >&2
    exit 1
fi
echo "vendor/ and Cargo.lock agree"
