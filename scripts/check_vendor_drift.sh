#!/usr/bin/env bash
# Vendored-registry drift check (CI): the crates under vendor/ are path
# dependencies standing in for crates.io (no network in the build
# environment — see DESIGN.md), so Cargo.lock must agree with each
# vendored crate's manifest. A mismatch means someone bumped a vendored
# crate without rebuilding the lockfile (or hand-edited the lockfile),
# which `cargo build --locked` would later fail on in confusing ways.
#
# Usage: scripts/check_vendor_drift.sh [repo-root]
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
lock="$root/Cargo.lock"
fail=0

if [ ! -f "$lock" ]; then
    echo "error: $lock not found" >&2
    exit 1
fi

for manifest in "$root"/vendor/*/Cargo.toml; do
    name=$(sed -n 's/^name *= *"\(.*\)"/\1/p' "$manifest" | head -n1)
    version=$(sed -n 's/^version *= *"\(.*\)"/\1/p' "$manifest" | head -n1)
    if [ -z "$name" ] || [ -z "$version" ]; then
        echo "DRIFT: cannot parse name/version from $manifest" >&2
        fail=1
        continue
    fi
    # The lockfile records each package as a `[[package]]` block whose
    # `version` line directly follows `name`.
    locked=$(awk -v pkg="$name" '
        $0 == "name = \"" pkg "\"" { grab = 1; next }
        grab && /^version = / { gsub(/version = |"/, ""); print; exit }
    ' "$lock")
    if [ -z "$locked" ]; then
        echo "DRIFT: vendored crate $name is missing from Cargo.lock" >&2
        fail=1
    elif [ "$locked" != "$version" ]; then
        echo "DRIFT: $name vendor/ has $version but Cargo.lock has $locked" >&2
        fail=1
    else
        echo "ok: $name $version"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "vendored-registry drift detected: re-run 'cargo build' to refresh Cargo.lock (and commit it)" >&2
    exit 1
fi
echo "vendor/ and Cargo.lock agree"
