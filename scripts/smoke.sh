#!/usr/bin/env bash
# scripts/smoke.sh — the CI smoke matrix, one table driving every
# end-to-end determinism smoke.
#
# Usage:
#   scripts/smoke.sh all                  # run every row in table order
#   scripts/smoke.sh <scenario> [scale]   # run one row, optionally rescaled
#
# Each row runs the release `experiments` binary end to end; the
# scenarios gate themselves (shard/dispatcher invariance, per-class QoE
# ordering, kill/resume bit-equivalence, LSQ-beats-static-hash), so this
# script only routes the invocation — a red row is a real property
# violation, not a flaky threshold.

set -euo pipefail
cd "$(dirname "$0")/.."

# The smoke matrix. Columns: scenario, experiment id, cargo features
# ('-' for none), default scale, extra CLI flags. `@resume` marks the
# one row that is a shell recipe (run/kill/resume + CSV diff) rather
# than a single experiment invocation.
SMOKE_TABLE='
flashcrowd         flashcrowd  -                          0.01
population         population  -                          0.01  --days 2
fairness           fairness    -                          0.01
checkpoint         checkpoint  -                          0.05
dispatch           dispatch    -                          0.02
dispatch-refheap   dispatch    lingxi-exp/reference-heap  0.02
population-resume  @resume     -                          0.01
'

rows() {
    printf '%s\n' "$SMOKE_TABLE" | sed -e 's/#.*//' -e '/^[[:space:]]*$/d'
}

usage() {
    echo "usage: scripts/smoke.sh all | <scenario> [scale]" >&2
    echo "scenarios:" >&2
    rows | awk '{printf "  %s\n", $1}' >&2
}

# Population kill/resume smoke (CSV fingerprint diff). End-to-end
# through the CLI flags: run population straight, run it again killed at
# the barrier after epoch 1 (leaving a checkpoint manifest + binary-log
# state), resume to completion, and diff every series CSV against the
# straight run. headline.csv is excluded — it carries wall-clock
# throughput, which is not deterministic; every simulated series must
# match byte for byte.
run_resume() {
    local scale="$1"
    cargo build --release --locked -p lingxi-exp --bin experiments
    local bin=target/release/experiments
    local straight resumed state scratch
    straight=$(mktemp -d)
    resumed=$(mktemp -d)
    state=$(mktemp -d)
    scratch=$(mktemp -d)
    "$bin" population --seed 7 --scale "$scale" --days 2 --out "$straight"
    "$bin" population --seed 7 --scale "$scale" --days 2 \
        --state-dir "$state" --checkpoint-every 1 --stop-after-epochs 1 --out "$scratch"
    "$bin" population --seed 7 --scale "$scale" --days 2 \
        --state-dir "$state" --resume --out "$resumed"
    local f base
    for f in "$straight"/population/*.csv; do
        base=$(basename "$f")
        if [ "$base" = headline.csv ]; then
            continue
        fi
        diff -u "$f" "$resumed/population/$base"
    done
    rm -rf "$straight" "$resumed" "$state" "$scratch"
}

run_row() {
    local name="$1" scale_override="${2:-}"
    local row
    row=$(rows | awk -v n="$name" '$1 == n')
    if [ -z "$row" ]; then
        echo "smoke.sh: unknown scenario '$name'" >&2
        usage
        exit 2
    fi
    local _n exp features scale extra
    read -r _n exp features scale extra <<<"$row"
    if [ -n "$scale_override" ]; then
        scale="$scale_override"
    fi
    echo ">>> smoke: $name (experiment $exp, scale $scale)"
    if [ "$exp" = "@resume" ]; then
        run_resume "$scale"
        return
    fi
    local feature_args=()
    if [ "$features" != "-" ]; then
        feature_args=(--features "$features")
    fi
    # $extra is a whitespace-separated flag list by design.
    # shellcheck disable=SC2086
    cargo run --release --locked -p lingxi-exp "${feature_args[@]}" \
        --bin experiments -- "$exp" --scale "$scale" $extra
}

case "${1:-}" in
"" | -h | --help)
    usage
    exit 2
    ;;
all)
    # Build once up front so the feature-less rows share one binary and
    # the log attributes compile time to the build, not the first row.
    cargo build --release --locked -p lingxi-exp --bin experiments
    for name in $(rows | awk '{print $1}'); do
        run_row "$name"
    done
    echo ">>> smoke: all rows green"
    ;;
*)
    run_row "$1" "${2:-}"
    ;;
esac
