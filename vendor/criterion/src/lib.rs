//! Offline, dependency-free stand-in for `criterion`.
//!
//! Implements the measurement subset this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Behavior mirrors upstream criterion's two modes:
//!
//! - under `cargo bench` (the harness receives `--bench`), every benchmark
//!   is warmed up and timed over an adaptive iteration count, reporting
//!   mean ns/iteration;
//! - under `cargo test` (no `--bench` flag), every benchmark body runs
//!   exactly once so bench code is exercised without the timing cost.

use std::time::{Duration, Instant};

/// Measurement state passed to each benchmark closure.
pub struct Bencher {
    /// Run the body exactly once (test mode) instead of timing it.
    quick: bool,
    /// Target measurement duration per benchmark.
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Time `f`, storing the mean cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            std::hint::black_box(f());
            self.result_ns = None;
            return;
        }
        // Warm up and estimate the per-call cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.measurement_time / 4 {
            std::hint::black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_call = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let target = self.measurement_time.as_nanos() as f64;
        let iters = ((target / per_call.max(1.0)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.result_ns = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// Throughput declaration for a benchmark group: how much work one
/// iteration represents. The report then includes a rate (elements or
/// bytes per second) next to the per-iteration time, like upstream.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many logical elements.
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

impl Throughput {
    fn rate(&self, ns_per_iter: f64) -> String {
        let per_sec = |n: u64| n as f64 / (ns_per_iter / 1e9);
        match self {
            Throughput::Elements(n) => format!("{:.0} elem/s", per_sec(*n)),
            Throughput::Bytes(n) => format!("{:.0} B/s", per_sec(*n)),
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (joined to the group name).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream criterion's harness receives `--bench` from `cargo
        // bench`; without it (e.g. `cargo test --benches`) run in quick
        // test mode.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self {
            quick: !bench_mode,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        self.run_one_with(id, None, f)
    }

    fn run_one_with(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            quick: self.quick,
            measurement_time: self.measurement_time,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some(ns) => match throughput {
                Some(t) => println!("{id:<40} time: {}  thrpt: {}", format_ns(ns), t.rate(ns)),
                None => println!("{id:<40} time: {}", format_ns(ns)),
            },
            None => println!("{id:<40} ok (test mode)"),
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.run_one(&id, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the adaptive iteration count ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.measurement_time = t;
        self
    }

    /// Declare how much work one iteration of this group's benchmarks
    /// performs; reports gain an elements/bytes-per-second rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        self.c.run_one_with(&id, self.throughput, &mut f);
        self
    }

    /// Benchmark one function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, ID: IntoBenchmarkId, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        self.c
            .run_one_with(&id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Re-export for closures that want criterion's `black_box`.
pub use std::hint::black_box;

/// Group benchmark functions under one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_criterion() -> Criterion {
        Criterion {
            quick: true,
            measurement_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn bench_function_runs_body() {
        let mut ran = 0u32;
        quick_criterion().bench_function("unit", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn groups_and_inputs_run() {
        let mut calls = Vec::new();
        let mut c = quick_criterion();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        for n in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new("case", n), &n, |b, &n| {
                b.iter(|| calls.push(n))
            });
        }
        group.finish();
        assert_eq!(calls, vec![2, 4]);
    }

    #[test]
    fn timed_mode_measures() {
        let mut c = Criterion {
            quick: false,
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            quick: false,
            measurement_time: c.measurement_time,
            result_ns: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.result_ns.is_some());
        assert!(b.result_ns.unwrap() > 0.0);
        c.bench_function("timed", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn throughput_rates_format() {
        // 1000 elements at 1 ms/iter = 1M elem/s.
        assert_eq!(Throughput::Elements(1000).rate(1e6), "1000000 elem/s");
        assert_eq!(Throughput::Bytes(500).rate(1e9), "500 B/s");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gp_step", 8).into_id(), "gp_step/8");
        assert_eq!(BenchmarkId::from_parameter(3).into_id(), "3");
    }
}
