//! Offline, dependency-free stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde`'s `Value` data model, without `syn`/`quote` (the
//! build container has no crates.io access). Supported shapes — the full
//! set this workspace uses:
//!
//! - structs with named fields (plus unit and tuple structs);
//! - enums with unit, tuple, and struct variants (externally tagged);
//! - `#[serde(skip)]` (omit on serialize, `Default::default()` on
//!   deserialize) and `#[serde(default)]` (default when missing).
//!
//! Generic types are intentionally rejected: nothing in the workspace
//! derives serde on a generic type, and supporting bounds would triple the
//! parser for no benefit.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item.body, dir) {
        (Body::Struct(fields), Direction::Serialize) => struct_serialize(&item.name, fields),
        (Body::Struct(fields), Direction::Deserialize) => struct_deserialize(&item.name, fields),
        (Body::Tuple(n), Direction::Serialize) => tuple_serialize(&item.name, *n),
        (Body::Tuple(n), Direction::Deserialize) => tuple_deserialize(&item.name, *n),
        (Body::Unit, Direction::Serialize) => unit_serialize(&item.name),
        (Body::Unit, Direction::Deserialize) => unit_deserialize(&item.name),
        (Body::Enum(variants), Direction::Serialize) => enum_serialize(&item.name, variants),
        (Body::Enum(variants), Direction::Deserialize) => enum_deserialize(&item.name, variants),
    };
    code.parse().unwrap()
}

// ---- model ---------------------------------------------------------------

struct Item {
    name: String,
    body: Body,
}

enum Body {
    Struct(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(skip)]`: omitted on serialize, defaulted on deserialize.
    skip: bool,
    /// `#[serde(default)]`: defaulted when missing on deserialize.
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing -------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consume leading attributes; report whether serde `skip` / `default`
    /// markers were among them.
    fn skip_attributes(&mut self) -> (bool, bool) {
        let (mut skip, mut default) = (false, false);
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(head)) = inner.next() {
                    if head.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            for t in args.stream() {
                                if let TokenTree::Ident(i) = t {
                                    match i.to_string().as_str() {
                                        "skip" | "skip_serializing" | "skip_deserializing" => {
                                            skip = true
                                        }
                                        "default" => default = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (skip, default)
    }

    /// Consume `pub`, `pub(crate)`, etc., if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consume type tokens until a `,` at angle-bracket depth 0 (the comma
    /// itself is consumed). Parens/brackets arrive as single groups, so
    /// only `<`/`>` need explicit depth tracking.
    fn skip_type_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if c.at_punct('<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                body: Body::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                body: Body::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                body: Body::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                body: Body::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let (skip, default) = c.skip_attributes();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        c.skip_type_until_comma();
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Count fields of a tuple struct / tuple variant (top-level commas; a
/// trailing comma does not add a field).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        let (_, _) = c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        c.skip_type_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---- codegen -------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

fn push_named_fields_ser(out: &mut String, fields: &[Field], accessor: &dyn Fn(&str) -> String) {
    out.push_str(&format!(
        "let mut __m: ::std::vec::Vec<(::std::string::String, {VALUE})> = ::std::vec::Vec::new();\n"
    ));
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__m.push((\"{name}\".to_string(), ::serde::Serialize::to_value({access})));\n",
            name = f.name,
            access = accessor(&f.name),
        ));
    }
    out.push_str(&format!("{VALUE}::Map(__m)\n"));
}

/// Build the `Name { field: ..., }` constructor body reading from `__src`
/// (a `&Value` expected to be a map).
fn named_fields_de(type_path: &str, type_label: &str, fields: &[Field], src: &str) -> String {
    let mut out = format!("{type_path} {{\n");
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            out.push_str(&format!(
                "{name}: match {src}.get(\"{name}\") {{ \
                   ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::core::option::Option::None => ::core::default::Default::default() }},\n",
                name = f.name,
            ));
        } else {
            out.push_str(&format!(
                "{name}: match {src}.get(\"{name}\") {{ \
                   ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::core::option::Option::None => return ::core::result::Result::Err(\
                     ::serde::Error::custom(\"missing field `{name}` in {label}\")) }},\n",
                name = f.name,
                label = type_label,
            ));
        }
    }
    out.push('}');
    out
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    push_named_fields_ser(&mut body, fields, &|f| format!("&self.{f}"));
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> {VALUE} {{\n{body}}}\n\
         }}\n"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let ctor = named_fields_de(name, name, fields, "__v");
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &{VALUE}) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             if __v.as_map().is_none() {{\n\
               return ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected map for {name}, found {{}}\", __v.kind())));\n\
             }}\n\
             ::core::result::Result::Ok({ctor})\n\
           }}\n\
         }}\n"
    )
}

fn tuple_serialize(name: &str, n: usize) -> String {
    let body = if n == 1 {
        // Newtype structs are transparent, like upstream serde.
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> {VALUE} {{ {body} }}\n\
         }}\n"
    )
}

fn tuple_deserialize(name: &str, n: usize) -> String {
    let body = if n == 1 {
        format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
            .collect();
        format!(
            "let __items = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
               \"expected sequence for {name}\"))?;\n\
             if __items.len() != {n} {{\n\
               return ::core::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple length for {name}\"));\n\
             }}\n\
             ::core::result::Result::Ok({name}({items}))",
            items = items.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &{VALUE}) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n"
    )
}

fn unit_serialize(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> {VALUE} {{ {VALUE}::Null }}\n\
         }}\n"
    )
}

fn unit_deserialize(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(_v: &{VALUE}) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             ::core::result::Result::Ok({name})\n\
           }}\n\
         }}\n"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => {VALUE}::Str(\"{vname}\".to_string()),\n"
                ));
            }
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => {VALUE}::Map(::std::vec![(\
                       \"{vname}\".to_string(), {inner})]),\n",
                    binds = binders.join(", "),
                ));
            }
            VariantShape::Struct(fields) => {
                let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut inner = String::new();
                push_named_fields_ser(&mut inner, fields, &|f| f.to_string());
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {VALUE}::Map(::std::vec![(\
                       \"{vname}\".to_string(), {{ {inner} }})]),\n",
                    binds = binders.join(", "),
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> {VALUE} {{\n\
             match self {{\n{arms}}}\n\
           }}\n\
         }}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut map_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                str_arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantShape::Tuple(n) => {
                let body = if *n == 1 {
                    format!(
                        "::core::result::Result::Ok({name}::{vname}(\
                           ::serde::Deserialize::from_value(__inner)?))"
                    )
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __items = __inner.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?;\n\
                           if __items.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                               \"wrong tuple length for {name}::{vname}\"));\n\
                           }}\n\
                           ::core::result::Result::Ok({name}::{vname}({items})) }}",
                        items = items.join(", ")
                    )
                };
                map_arms.push_str(&format!("\"{vname}\" => {body},\n"));
            }
            VariantShape::Struct(fields) => {
                let ctor = named_fields_de(
                    &format!("{name}::{vname}"),
                    &format!("{name}::{vname}"),
                    fields,
                    "__inner",
                );
                map_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                       if __inner.as_map().is_none() {{\n\
                         return ::core::result::Result::Err(::serde::Error::custom(\
                           \"expected map for {name}::{vname}\"));\n\
                       }}\n\
                       ::core::result::Result::Ok({ctor})\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &{VALUE}) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             match __v {{\n\
               {VALUE}::Str(__s) => match __s.as_str() {{\n\
                 {str_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                   ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
               }},\n\
               {VALUE}::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
                 match __tag.as_str() {{\n\
                   {map_arms}\
                   __other => ::core::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
               }},\n\
               __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected variant of {name}, found {{}}\", __other.kind()))),\n\
             }}\n\
           }}\n\
         }}\n"
    )
}
