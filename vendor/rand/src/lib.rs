//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The container building this workspace has no access to crates.io, so the
//! workspace vendors the *subset* of the rand 0.8 API its sources actually
//! use: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — fully
//! deterministic for a given seed, which is what every test and experiment
//! in this repository relies on. It is *not* the same stream as upstream
//! rand's `StdRng`, but no code here depends on the exact stream, only on
//! determinism and statistical quality.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw u32/u64/bytes output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges `Rng::gen_range` accepts, mirroring rand 0.8's `SampleRange`.
pub trait SampleRange<T> {
    /// Draw a value from `rng` uniformly within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        // 2^-64 resolution makes the closed/open distinction immaterial.
        let u = rng.next_u64() as f64 * (1.0 / u64::MAX as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        self.start + f32::standard_sample(rng) * (self.end - self.start)
    }
}

/// Unbiased integer draw in `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty integer range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (full integer range, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (SplitMix64-expanded, like upstream rand).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; avoid it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    /// How many u64 outputs [`BlockRng`] draws from the inner generator
    /// at a time.
    pub const BLOCK_RNG_WORDS: usize = 64;

    /// Block-buffered adapter over any [`RngCore`].
    ///
    /// Refills a fixed-size buffer of raw u64 outputs in one tight loop and
    /// serves draws from it, so hot loops that interleave a few RNG draws
    /// with other work pay the generator's state-update dependency chain in
    /// bursts instead of one stall per draw. The emitted stream is
    /// *identical* to calling the inner generator directly: `next_u64`
    /// returns the same sequence, and `next_u32` derives from a buffered
    /// u64 exactly as the inner generator does (high 32 bits — see
    /// [`StdRng::next_u32`]).
    #[derive(Debug, Clone)]
    pub struct BlockRng<R: RngCore> {
        inner: R,
        buf: [u64; BLOCK_RNG_WORDS],
        /// Next unread index into `buf`; `BLOCK_RNG_WORDS` means empty.
        pos: usize,
    }

    impl<R: RngCore> BlockRng<R> {
        /// Wrap `inner`, starting with an empty buffer.
        pub fn new(inner: R) -> Self {
            Self {
                inner,
                buf: [0; BLOCK_RNG_WORDS],
                pos: BLOCK_RNG_WORDS,
            }
        }

        /// The wrapped generator. Note its state runs ahead of the draws
        /// already handed out: buffered words are drawn but not yet served.
        pub fn inner(&self) -> &R {
            &self.inner
        }

        #[inline]
        fn take(&mut self) -> u64 {
            if self.pos == BLOCK_RNG_WORDS {
                for w in self.buf.iter_mut() {
                    *w = self.inner.next_u64();
                }
                self.pos = 0;
            }
            let v = self.buf[self.pos];
            self.pos += 1;
            v
        }
    }

    impl<R: RngCore> RngCore for BlockRng<R> {
        fn next_u32(&mut self) -> u32 {
            // Mirrors StdRng::next_u32: one u64 consumed, high half kept.
            (self.take() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.take()
        }
    }

    impl<R: RngCore + SeedableRng> SeedableRng for BlockRng<R> {
        type Seed = R::Seed;

        fn from_seed(seed: Self::Seed) -> Self {
            Self::new(R::from_seed(seed))
        }
    }
}

pub mod seq {
    //! Slice extension methods (`shuffle`, `choose`).

    use super::{Rng, SampleRange};

    /// The used subset of rand 0.8's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }
    }
}

/// `rand::prelude` — the commonly used re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::StandardSample;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(0usize..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| f64::standard_sample(&mut rng)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }

    #[test]
    fn block_rng_stream_matches_inner_generator() {
        let mut direct = StdRng::seed_from_u64(42);
        let mut blocked = super::rngs::BlockRng::new(StdRng::seed_from_u64(42));
        // Interleave every draw kind across several refills.
        for i in 0..1_000 {
            match i % 4 {
                0 => assert_eq!(direct.next_u64(), blocked.next_u64()),
                1 => assert_eq!(direct.next_u32(), blocked.next_u32()),
                2 => assert_eq!(direct.gen::<f64>(), blocked.gen::<f64>()),
                _ => assert_eq!(
                    direct.gen_range(0u64..1_000_003),
                    blocked.gen_range(0u64..1_000_003)
                ),
            }
        }
    }

    #[test]
    fn block_rng_seed_from_u64_matches_wrapping() {
        let mut a = super::rngs::BlockRng::<StdRng>::seed_from_u64(7);
        let mut b = super::rngs::BlockRng::new(StdRng::seed_from_u64(7));
        for _ in 0..super::rngs::BLOCK_RNG_WORDS * 2 + 3 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
        let y = dynrng.gen_range(0usize..10);
        assert!(y < 10);
    }
}
