//! Offline, dependency-free stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! - range strategies (`0.0f64..1.0`, `0.0f64..=1.0`, `1usize..8`,
//!   `0u64..2000`, ...), tuple strategies, and
//!   [`collection::vec`];
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! No shrinking: a failing case panics immediately with the generated
//! inputs (`Debug`-printed) and the seed, which is enough to reproduce —
//! case seeds are derived deterministically from `PROPTEST_RNG_SEED`
//! (default 0) and the case index. The case count comes from
//! `ProptestConfig` or the `PROPTEST_CASES` environment variable
//! (default 64), so CI time stays bounded.

use rand::rngs::StdRng;

// The macros need a path to `rand` that resolves from any consuming crate,
// whether or not it depends on rand itself.
#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    //! Runner configuration and failure plumbing used by the macros.

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion inside the case body failed.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from any message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`cases` is the only knob this stand-in uses).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base RNG seed; case `i` uses `rng_seed` mixed with `i`.
        pub rng_seed: u64,
    }

    impl Config {
        /// A config running `cases` cases — unless `PROPTEST_CASES` is
        /// set, which overrides every suite's own default (CI pins a
        /// global cap; see README "Testing conventions").
        pub fn with_cases(cases: u32) -> Self {
            let env_cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok());
            Self {
                cases: env_cases.unwrap_or(cases),
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            let rng_seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            Self { cases, rng_seed }
        }
    }
}

/// `ProptestConfig` under its upstream name.
pub type ProptestConfig = test_runner::Config;

pub mod strategy {
    //! Value-generation strategies.

    use super::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_tuple!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );

    /// Weighted choice among strategies producing the same value type —
    /// the engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total_weight: u32,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` pairs; weights must not all
        /// be zero.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| *w).sum();
            assert!(total_weight > 0, "prop_oneof: total weight must be > 0");
            Self {
                options,
                total_weight,
            }
        }
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .field("total_weight", &self.total_weight)
                .finish()
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strategy) in &self.options {
                if pick < *weight {
                    return strategy.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("pick is below the summed weight")
        }
    }

    /// Box a strategy for [`Union`] (used by the `prop_oneof!` macro).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive the RNG seed for one case: deterministic, well-mixed.
#[doc(hidden)]
pub fn case_seed(base: u64, case_index: u32) -> u64 {
    let mut z = base ^ (u64::from(case_index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted (or uniform) choice among strategies with one value type.
///
/// ```ignore
/// let t = prop_oneof![
///     4 => 0.0f64..2.0,      // weight 4
///     1 => Just(1.25f64),    // weight 1
/// ];
/// let u = prop_oneof![0u64..10, 100u64..110]; // uniform
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let __seed = $crate::case_seed(__config.rng_seed, __case);
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>
                        ::seed_from_u64(__seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy), &mut __rng,
                        );
                    )+
                    let __inputs = ::std::format!(
                        ::core::concat!($("\n  ", ::core::stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __result {
                        ::core::panic!(
                            "proptest case {}/{} failed (seed {}): {}\ninputs:{}",
                            __case + 1, __config.cases, __seed, __e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 0.25f64..0.75,
            n in 3usize..9,
            k in 0u64..=5,
        ) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(k <= 5);
        }

        #[test]
        fn vec_lengths_in_range(
            xs in collection::vec(-1.0f64..1.0, 2..17),
        ) {
            prop_assert!((2..17).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (-1.0..1.0).contains(v)));
        }

        #[test]
        fn tuples_generate(
            pair in (0.0f64..1.0, 10usize..20),
        ) {
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0i32..100) {
            prop_assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                #[allow(unused)]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("proptest case"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn case_seeds_are_spread() {
        let seeds: std::collections::HashSet<u64> =
            (0..100).map(|i| crate::case_seed(0, i)).collect();
        assert_eq!(seeds.len(), 100);
    }
}
