//! Offline, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly. A panic while holding the lock
//! simply clears the poison flag on the next acquisition, matching
//! parking_lot's "no poisoning" semantics closely enough for this
//! workspace (the A/B experiment engine's metric accumulators).

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poison errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
