//! Offline, dependency-free stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`serde::value::Value`] tree to JSON text
//! and parses it back. Only the two entry points this workspace uses are
//! provided: [`to_string`] and [`from_str`].
//!
//! Numbers use Rust's `Display` for `f64`, which is guaranteed to be the
//! shortest representation that round-trips exactly — so
//! serialize-then-deserialize preserves every finite float bit-for-bit
//! (the property the persistence tests in `lingxi_core` rely on).
//! Non-finite floats serialize as `null`, matching upstream serde_json.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn float_bits_roundtrip() {
        for x in [
            0.1f64,
            std::f64::consts::PI,
            1e-300,
            1e300,
            -2.5e-7,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![Some(1.25f64), None, Some(-3.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.25,null,-3]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn nested_seq_roundtrip() {
        let m = vec![vec![1.0f64, 2.0], vec![], vec![-0.5]];
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), m);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<bool>("truthy").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }
}
