//! Offline, dependency-free stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! reduced serde: [`Serialize`] lowers a value into a self-describing
//! [`value::Value`] tree and [`Deserialize`] lifts one back. The derive
//! macros ([`serde_derive`]) support named-field structs and enums with
//! unit / tuple / struct variants, plus the `#[serde(skip)]` and
//! `#[serde(default)]` field attributes — exactly the surface this
//! workspace uses. `serde_json` (also vendored) renders `Value` to JSON
//! text and parses it back.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

pub mod value {
    //! The self-describing data model every type serializes through.

    /// A serialized value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null` (also `Option::None`).
        Null,
        /// Boolean.
        Bool(bool),
        /// Unsigned integer.
        U64(u64),
        /// Signed (negative) integer.
        I64(i64),
        /// Floating point.
        F64(f64),
        /// String.
        Str(String),
        /// Sequence (`Vec`, arrays, tuples).
        Seq(Vec<Value>),
        /// Map with insertion-ordered string keys (structs).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Borrow as a map, if this is one.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// Borrow as a sequence, if this is one.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// Look up `key` in a map value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }

        /// A short name of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) => "integer",
                Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }
    }
}

use value::Value;

/// Serialization/deserialization error (a message, like `serde::de::Error`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lower into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Lift from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

// ---- primitives ----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => type_error("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-character string", other),
        }
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Seq(items) => items,
            other => return type_error("sequence", other),
        };
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        // len checked above, so the conversion cannot fail.
        Ok(parsed.try_into().unwrap())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = match v {
                    Value::Seq(items) => items,
                    other => return type_error("tuple sequence", other),
                };
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of length {LEN}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        let v = x.to_value();
        assert_eq!(T::from_value(&v).unwrap(), x);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(42u64);
        roundtrip(-17i64);
        roundtrip(3.25f64);
        roundtrip(7usize);
        roundtrip("hello".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1.0f64, 2.5, -3.0]);
        roundtrip(Some(9u64));
        roundtrip(Option::<f64>::None);
        roundtrip([1.0f64, 2.0, 3.0, 4.0]);
        roundtrip(("tag".to_string(), 0.5f64));
        roundtrip(vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)]);
    }

    #[test]
    fn integer_cross_width() {
        assert_eq!(u8::from_value(&Value::U64(200)).unwrap(), 200);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(i32::from_value(&Value::I64(-5)).unwrap(), -5);
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::F64(1.0)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(<[f64; 2]>::from_value(&Value::Seq(vec![Value::F64(1.0)])).is_err());
    }
}
