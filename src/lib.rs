//! # LingXi — user-level personalized QoE optimization for ABR streaming
//!
//! A full reproduction of *"Towards User-level QoE: Large-scale Practice in
//! Personalized Optimization of Adaptive Video Streaming"* (SIGCOMM 2025).
//!
//! LingXi sits on top of any adaptive-bitrate (ABR) algorithm and re-tunes
//! its optimization objective per user, online: it watches how each user
//! reacts to stalls, and when enough evidence accumulates it searches for
//! the QoE parameters minimizing that user's predicted exit rate via
//! online Bayesian optimization over Monte-Carlo virtual playback.
//!
//! This facade re-exports all workspace crates under stable names:
//!
//! | module | contents |
//! |---|---|
//! | [`stats`] | distributions, ECDFs, t-tests, DiD, correlations |
//! | [`nn`] | minimal NN library (dense/conv1d/softmax/Adam) |
//! | [`media`] | bitrate ladders, quality maps, VBR sizes, catalogs |
//! | [`net`] | bandwidth traces, generators, estimators, RTT, α-fair multi-hop topologies |
//! | [`player`] | the Eq. 3 playback simulator and session logs |
//! | [`abr`] | ThroughputRule, BBA, BOLA, HYB, RobustMPC, Pensieve |
//! | [`user`] | exit models, stall-sensitivity profiles, populations |
//! | [`exit`] | the Fig. 7 exit-rate predictor and hybrid model |
//! | [`bayes`] | GP regression, acquisition functions, online BO |
//! | [`core`] | the LingXi controller (Algorithms 1 & 2) |
//! | [`abtest`] | AA/AB difference-in-differences experimentation |
//! | [`workload`] | arrival processes and user/link heterogeneity classes |
//! | [`fleet`] | sharded multi-threaded fleet simulation (see ARCHITECTURE.md) |
//! | [`exp`] | per-figure experiment harness + the systems scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use lingxi::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A video catalog and a weak network.
//! let catalog = Catalog::generate(
//!     BitrateLadder::default_short_video(),
//!     &CatalogConfig { n_videos: 3, ..CatalogConfig::default() },
//!     &mut rng,
//! ).unwrap();
//! let trace = BandwidthTrace::constant(1200.0, 600, 1.0).unwrap();
//!
//! // An ABR under LingXi management, a stall-sensitive user.
//! let mut abr = Hyb::default_rule();
//! let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
//! let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.5).unwrap();
//! let mut predictor = ProfilePredictor { profile, base: 0.01 };
//! let mut user = QosExitModel::calibrated(profile);
//!
//! let outcome = run_managed_session(
//!     1, catalog.video_cyclic(0), catalog.ladder(), &trace,
//!     PlayerConfig::default(), &mut abr, &mut controller,
//!     &mut predictor, &mut user, &mut rng,
//! ).unwrap();
//! assert!(!outcome.log.segments.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use lingxi_abr as abr;
pub use lingxi_abtest as abtest;
pub use lingxi_bayes as bayes;
pub use lingxi_core as core;
pub use lingxi_exit as exit;
pub use lingxi_exp as exp;
pub use lingxi_fleet as fleet;
pub use lingxi_media as media;
pub use lingxi_net as net;
pub use lingxi_nn as nn;
pub use lingxi_player as player;
pub use lingxi_stats as stats;
pub use lingxi_user as user;
pub use lingxi_workload as workload;

/// The commonly used types, one import away.
pub mod prelude {
    pub use lingxi_abr::{
        Abr, AbrContext, Bba, Bola, Hyb, Pensieve, PensieveConfig, QoeLin, QoeParams, RobustMpc,
        ThroughputRule,
    };
    pub use lingxi_abtest::{AbSchedule, AbTest, ArmRunner};
    pub use lingxi_bayes::{ObOptimizer, ObserverConfig};
    pub use lingxi_core::{
        evaluate_parameters, run_managed_session, run_managed_session_in, CacheConfig,
        LingXiConfig, LingXiController, LongTermState, McConfig, ProfilePredictor, RolloutContext,
        RolloutPredictor, SearchStrategy, SessionBuffers, ShardedStateCache, StateStore,
    };
    pub use lingxi_exit::{
        DatasetFlavor, ExitDataset, ExitPredictor, HybridPredictor, PredictorConfig, StateMatrix,
        UserStateTracker,
    };
    pub use lingxi_fleet::{
        AbSplit, AbrMix, AbrPolicy, ContentionConfig, DispatchConfig, DispatchEpoch,
        DispatchPolicy, Dispatcher, FairnessConfig, FleetConfig, FleetEngine, FleetReport,
        FleetScenario, Lsq, PopulationDynamics, StaticHash,
    };
    pub use lingxi_media::{
        BitrateLadder, Catalog, CatalogConfig, QualityMap, QualityTier, SegmentSizes, VbrModel,
        Video,
    };
    pub use lingxi_net::{
        allocate, BandwidthEstimator, BandwidthProcess, BandwidthTrace, Download,
        FairnessObjective, FlowDemand, NetClass, ProductionMixture, RttModel, SharedBottleneck,
        TopoLink, Topology, UserNetProfile,
    };
    pub use lingxi_player::{
        run_session, BmaxPolicy, ExitDecision, PlayerConfig, PlayerEnv, SessionLog, SessionSetup,
        SessionStream,
    };
    pub use lingxi_stats::{QuantileSketch, StreamingMoments};
    pub use lingxi_user::{
        ExitModel, PopulationConfig, QosExitModel, RuleBasedExit, SegmentView, SensitivityKind,
        StallProfile, UserPopulation, UserRecord,
    };
    pub use lingxi_workload::{
        ArrivalKind, ArrivalProcess, ClassRegistry, Diurnal, FlashRamp, LinkClass, Poisson, Replay,
        UserClass,
    };
}
