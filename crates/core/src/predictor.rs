//! The rollout-predictor interface consumed by Monte-Carlo evaluation, and
//! two lightweight implementations besides the neural hybrid.

use lingxi_exit::{HybridPredictor, StateMatrix};
use lingxi_media::QualityTier;
use lingxi_user::StallProfile;

/// Short-term rollout state passed alongside the long-term state matrix —
/// Algorithm 2's `S_sim` combines "both short-term and long-term state",
/// and the per-candidate differential lives in the short-term part: a
/// candidate that avoids stalls keeps `session_stall` at zero.
#[derive(Debug, Clone, Copy)]
pub struct RolloutContext {
    /// Did the segment just played stall?
    pub stalled: bool,
    /// Quality tier of the segment.
    pub tier: QualityTier,
    /// Signed switch granularity vs the previous segment.
    pub switch_granularity: i64,
    /// Cumulative stall seconds in this rollout/session.
    pub session_stall: f64,
    /// Stall events in this rollout/session.
    pub session_stall_events: usize,
    /// Seconds of content played in this rollout/session.
    pub playback_time: f64,
}

/// Predicts the instantaneous (per-segment) exit probability during
/// virtual playback — `ExitPredictor.predict(S_sim)` of Algorithm 2.
pub trait RolloutPredictor: Send {
    /// Exit probability given long-term state (`state`) and the rollout's
    /// short-term context.
    fn predict(&mut self, state: &StateMatrix, ctx: &RolloutContext) -> f64;

    /// Whether [`RolloutPredictor::predict`] reads `state` at all.
    ///
    /// Building the state matrix costs a per-virtual-segment copy of the
    /// tracker's history rows; predictors that only consume the
    /// [`RolloutContext`] (the profile and constant baselines) override
    /// this to `false` and the Monte-Carlo loop hands them a zero matrix
    /// instead. Purely an implementation shortcut — results are identical
    /// either way.
    fn wants_state(&self) -> bool {
        true
    }
}

impl RolloutPredictor for HybridPredictor {
    fn predict(&mut self, state: &StateMatrix, ctx: &RolloutContext) -> f64 {
        HybridPredictor::predict(
            self,
            state,
            ctx.stalled || ctx.session_stall > 0.0,
            ctx.tier,
            ctx.switch_granularity,
        )
    }
}

/// A fixed-rate predictor (baseline / tests).
#[derive(Debug, Clone, Copy)]
pub struct ConstantPredictor {
    /// The constant exit probability.
    pub p: f64,
}

impl RolloutPredictor for ConstantPredictor {
    fn predict(&mut self, _: &StateMatrix, _: &RolloutContext) -> f64 {
        self.p.clamp(0.0, 1.0)
    }

    fn wants_state(&self) -> bool {
        false
    }
}

/// A predictor wrapping a ground-truth [`StallProfile`] — used in the
/// §5.2 simulation experiments where the "predictor" is the fitted user
/// model itself. Mirrors the generative `QosExitModel`: the response is
/// driven by the rollout's *session* stall exposure with the same compound
/// modifiers (engagement, Full-HD, repeated stalls).
#[derive(Debug, Clone, Copy)]
pub struct ProfilePredictor {
    /// The user's profile.
    pub profile: StallProfile,
    /// Content-driven base exit probability.
    pub base: f64,
}

impl RolloutPredictor for ProfilePredictor {
    fn predict(&mut self, _state: &StateMatrix, ctx: &RolloutContext) -> f64 {
        let mut p = self.base;
        // OS terms of Eq. 4 (population-level quality & smoothness rates,
        // same calibration as the generative QosExitModel): without them
        // the optimizer would see no benefit in raising quality for
        // stall-tolerant users.
        p += match ctx.tier {
            QualityTier::Ld => 6.0e-3,
            QualityTier::Sd => 2.7e-3,
            QualityTier::Hd => 0.7e-3,
            QualityTier::FullHd => 0.0,
        };
        if ctx.switch_granularity != 0 {
            let magnitude = ctx.switch_granularity.unsigned_abs() as f64;
            let direction = if ctx.switch_granularity < 0 {
                1.15
            } else {
                1.0
            };
            p += 1.2e-2 * direction * (0.8 + 0.2 * magnitude);
        }
        if ctx.session_stall > 0.0 {
            let mut r = self.profile.response(ctx.session_stall);
            if ctx.playback_time > 20.0 {
                r *= 0.55;
            }
            if ctx.tier == QualityTier::FullHd {
                r *= 1.4;
            }
            if ctx.session_stall_events >= 2 {
                r *= 1.5;
            }
            p += r;
        }
        p.clamp(0.0, 1.0)
    }

    fn wants_state(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_user::SensitivityKind;

    fn ctx(stalled: bool, session_stall: f64, events: usize) -> RolloutContext {
        RolloutContext {
            stalled,
            tier: QualityTier::Hd,
            switch_granularity: 0,
            session_stall,
            session_stall_events: events,
            playback_time: 10.0,
        }
    }

    #[test]
    fn constant_predictor_clamps() {
        let s = StateMatrix::zeros();
        let mut p = ConstantPredictor { p: 7.0 };
        assert_eq!(p.predict(&s, &ctx(true, 1.0, 1)), 1.0);
        let mut n = ConstantPredictor { p: -1.0 };
        assert_eq!(n.predict(&s, &ctx(false, 0.0, 0)), 0.0);
    }

    #[test]
    fn profile_predictor_uses_session_stall() {
        let profile = StallProfile::new(SensitivityKind::Sensitive, 4.0, 0.4).unwrap();
        let mut p = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let s = StateMatrix::zeros();
        // Quiet segment: base + the HD OS quality term only.
        let quiet = p.predict(&s, &ctx(false, 0.0, 0));
        assert!((quiet - (0.01 + 0.7e-3)).abs() < 1e-9, "{quiet}");
        let stalled = p.predict(&s, &ctx(true, 2.0, 1));
        assert!(
            (stalled - (0.01 + 0.7e-3 + 0.4 * 2.0 / 4.0)).abs() < 1e-9,
            "{stalled}"
        );
    }

    #[test]
    fn profile_predictor_monotone_in_stall() {
        let profile = StallProfile::new(SensitivityKind::Sensitive, 4.0, 0.4).unwrap();
        let mut p = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let s = StateMatrix::zeros();
        let mut prev = 0.0;
        for i in 0..10 {
            let v = p.predict(&s, &ctx(i > 0, i as f64 * 0.7, i.min(1)));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn compound_modifiers_applied() {
        let profile = StallProfile::new(SensitivityKind::Sensitive, 4.0, 0.4).unwrap();
        let mut p = ProfilePredictor { profile, base: 0.0 };
        let s = StateMatrix::zeros();
        let base = p.predict(&s, &ctx(true, 2.0, 1));
        // Repeated stalls compound.
        let repeated = p.predict(&s, &ctx(true, 2.0, 3));
        assert!(repeated > base);
        // Long engagement reduces the response.
        let mut engaged = ctx(true, 2.0, 1);
        engaged.playback_time = 40.0;
        assert!(p.predict(&s, &engaged) < base);
        // Full HD raises it.
        let mut fhd = ctx(true, 2.0, 1);
        fhd.tier = QualityTier::FullHd;
        assert!(p.predict(&s, &fhd) > base);
    }
}
