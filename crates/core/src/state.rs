//! Dual-layer state management (paper §4 "Seamless Integration").
//!
//! Long-term state (user stall history, engagement, best parameters) is
//! serialized when the app terminates and restored on startup; short-term
//! state is rebuilt per session. The paper uses HDF5 files on the client;
//! we substitute JSON via `serde_json` (see DESIGN.md) — the property under
//! test is the persistence *split*, not the container format.

use std::fs;
use std::path::{Path, PathBuf};

use lingxi_abr::QoeParams;
use lingxi_exit::UserStateTracker;
use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// Long-term (cross-session) state of one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LongTermState {
    /// Owner.
    pub user_id: u64,
    /// Stall/engagement history feeding the exit predictor.
    pub tracker: UserStateTracker,
    /// Last deployed parameters (warm start on restart).
    pub params: QoeParams,
    /// Lifetime optimization count.
    pub optimizations: usize,
}

impl LongTermState {
    /// Fresh state for a new user.
    pub fn new(user_id: u64) -> Self {
        Self {
            user_id,
            tracker: UserStateTracker::new(),
            params: QoeParams::default(),
            optimizations: 0,
        }
    }
}

/// Below this many states per writer thread, extra threads cost more in
/// spawn overhead than they recover in I/O overlap (used by the default
/// file-per-user [`StateBackend::save_batch`]).
const BATCH_CHUNK_MIN: usize = 64;

/// A durable layer for per-user [`LongTermState`].
///
/// Two implementations exist: the legacy file-per-user [`StateStore`]
/// (kept for single-session tooling and migration) and the sharded
/// append-only [`BinaryStateLog`] (the fleet-scale default). The cache
/// ([`ShardedStateCache`]) and the fleet engine are written against this
/// trait, so the two are interchangeable; the property tests in
/// `tests/cache_props.rs` assert they are observably equivalent.
///
/// Durability contract: `save`/`save_batch`/`delete` may buffer;
/// [`flush`] makes every prior write durable (crash-recoverable), and
/// [`checkpoint`] additionally compacts the on-disk representation.
///
/// [`BinaryStateLog`]: crate::binlog::BinaryStateLog
/// [`ShardedStateCache`]: crate::cache::ShardedStateCache
/// [`flush`]: StateBackend::flush
/// [`checkpoint`]: StateBackend::checkpoint
pub trait StateBackend: std::fmt::Debug + Send + Sync {
    /// Persist one user's long-term state (latest write wins).
    fn save(&self, state: &LongTermState) -> Result<()>;

    /// Persist a batch of states; returns how many were written. The
    /// batch is the fleet flush path — backends optimize it (sequential
    /// appends, parallel writers) where a per-user loop would not.
    fn save_batch(&self, batch: &[&LongTermState]) -> Result<usize> {
        for state in batch {
            self.save(state)?;
        }
        Ok(batch.len())
    }

    /// Load a user's state; `None` for first-time users.
    fn load(&self, user_id: u64) -> Result<Option<LongTermState>>;

    /// Delete a user's state (account removal / privacy request).
    /// Returns whether the user existed.
    fn delete(&self, user_id: u64) -> Result<bool>;

    /// Enumerate the backend: all persisted user ids (ascending) plus
    /// one warning per malformed / unrecoverable entry encountered.
    fn scan(&self) -> Result<StateScan>;

    /// User ids currently persisted, ascending (lossy: drops warnings).
    fn list(&self) -> Result<Vec<u64>> {
        Ok(self.scan()?.ids)
    }

    /// Make every prior write durable.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Flush and compact the on-disk representation so recovery cost is
    /// proportional to live users, not historical writes.
    fn checkpoint(&self) -> Result<()> {
        self.flush()
    }
}

/// A directory-backed store of per-user long-term state.
#[derive(Debug, Clone)]
pub struct StateStore {
    dir: PathBuf,
}

impl StateStore {
    /// Open (and create) a store rooted at `dir`.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| CoreError::Persistence(format!("create {dir:?}: {e}")))?;
        Ok(Self { dir })
    }

    fn path_for(&self, user_id: u64) -> PathBuf {
        self.dir.join(format!("user_{user_id}.json"))
    }

    /// Persist one user's long-term state (app-termination hook).
    pub fn save(&self, state: &LongTermState) -> Result<()> {
        let json = serde_json::to_string(state)
            .map_err(|e| CoreError::Persistence(format!("serialize: {e}")))?;
        let path = self.path_for(state.user_id);
        // Write-then-rename so a crash mid-write never corrupts state.
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, json).map_err(|e| CoreError::Persistence(format!("write {tmp:?}: {e}")))?;
        fs::rename(&tmp, &path)
            .map_err(|e| CoreError::Persistence(format!("rename to {path:?}: {e}")))?;
        Ok(())
    }

    /// Load a user's state; `None` for first-time users.
    pub fn load(&self, user_id: u64) -> Result<Option<LongTermState>> {
        let path = self.path_for(user_id);
        match fs::read_to_string(&path) {
            Ok(json) => {
                let state = serde_json::from_str(&json)
                    .map_err(|e| CoreError::Persistence(format!("parse {path:?}: {e}")))?;
                Ok(Some(state))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CoreError::Persistence(format!("read {path:?}: {e}"))),
        }
    }

    /// Delete a user's state (account removal / privacy request).
    pub fn delete(&self, user_id: u64) -> Result<bool> {
        let path = self.path_for(user_id);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(CoreError::Persistence(format!("delete {path:?}: {e}"))),
        }
    }

    /// User ids currently persisted. Lossy: entries that do not parse as
    /// `user_<id>.json` are dropped; use [`StateStore::scan`] when the
    /// caller must know about them (fleet startup does).
    pub fn list(&self) -> Result<Vec<u64>> {
        Ok(self.scan()?.ids)
    }

    /// Enumerate the store, reporting malformed entries instead of silently
    /// dropping them: a corrupt or foreign filename in the state directory
    /// means a user whose history would otherwise vanish without a trace.
    pub fn scan(&self) -> Result<StateScan> {
        let mut scan = StateScan::default();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| CoreError::Persistence(format!("list {:?}: {e}", self.dir)))?;
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                continue;
            }
            let raw = entry.file_name();
            let Some(name) = raw.to_str() else {
                scan.warnings.push("non-UTF-8 filename in state dir".into());
                continue;
            };
            if name.ends_with(".json.tmp") {
                // Write-then-rename leftovers from a crash mid-save: the
                // rename never landed, so the durable copy is still intact.
                scan.warnings.push(format!("stale temp file {name}"));
                continue;
            }
            match name
                .strip_prefix("user_")
                .and_then(|s| s.strip_suffix(".json"))
            {
                Some(stem) => match stem.parse() {
                    Ok(id) => scan.ids.push(id),
                    Err(_) => scan.warnings.push(format!("unparseable user id in {name}")),
                },
                None => scan.warnings.push(format!("foreign file {name}")),
            }
        }
        scan.ids.sort_unstable();
        scan.warnings.sort_unstable();
        Ok(scan)
    }
}

impl StateBackend for StateStore {
    fn save(&self, state: &LongTermState) -> Result<()> {
        StateStore::save(self, state)
    }

    /// The file-per-user layout makes saves to distinct users fully
    /// independent, so the batch is split across writer threads to
    /// overlap the per-file write+rename syscall pairs.
    fn save_batch(&self, batch: &[&LongTermState]) -> Result<usize> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(batch.len().div_ceil(BATCH_CHUNK_MIN).max(1));
        if threads <= 1 {
            for state in batch {
                StateStore::save(self, state)?;
            }
        } else {
            let chunk = batch.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            for state in part {
                                StateStore::save(self, state)?;
                            }
                            Ok::<(), CoreError>(())
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("batch writer panicked")?;
                }
                Ok::<(), CoreError>(())
            })?;
        }
        Ok(batch.len())
    }

    fn load(&self, user_id: u64) -> Result<Option<LongTermState>> {
        StateStore::load(self, user_id)
    }

    fn delete(&self, user_id: u64) -> Result<bool> {
        StateStore::delete(self, user_id)
    }

    fn scan(&self) -> Result<StateScan> {
        StateStore::scan(self)
    }

    fn list(&self) -> Result<Vec<u64>> {
        StateStore::list(self)
    }

    // `flush`/`checkpoint` are the defaults: every write-then-rename save
    // is already durable on its own, and there is nothing to compact.
}

/// Result of [`StateStore::scan`]: the parseable user ids plus one warning
/// per entry that could not be attributed to a user.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateScan {
    /// User ids persisted under well-formed names, ascending.
    pub ids: Vec<u64>,
    /// Human-readable descriptions of malformed entries, sorted.
    pub warnings: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lingxi_state_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let store = StateStore::open(&dir).unwrap();
        let mut state = LongTermState::new(7);
        state.tracker.push_segment(800.0, 1500.0, 2.0);
        state.tracker.push_stall(2.5);
        state.params.beta = 0.55;
        state.optimizations = 3;
        store.save(&state).unwrap();
        let restored = store.load(7).unwrap().unwrap();
        assert_eq!(restored, state);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_user_is_none() {
        let dir = temp_dir("missing");
        let store = StateStore::open(&dir).unwrap();
        assert!(store.load(999).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_and_delete() {
        let dir = temp_dir("list");
        let store = StateStore::open(&dir).unwrap();
        for id in [3u64, 1, 2] {
            store.save(&LongTermState::new(id)).unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![1, 2, 3]);
        assert!(store.delete(2).unwrap());
        assert!(!store.delete(2).unwrap());
        assert_eq!(store.list().unwrap(), vec![1, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_reports_malformed_entries() {
        let dir = temp_dir("scan");
        let store = StateStore::open(&dir).unwrap();
        for id in [4u64, 9] {
            store.save(&LongTermState::new(id)).unwrap();
        }
        fs::write(dir.join("user_notanumber.json"), "{}").unwrap();
        fs::write(dir.join("README.txt"), "hello").unwrap();
        fs::write(dir.join("user_3.json.tmp"), "{").unwrap();
        let scan = store.scan().unwrap();
        assert_eq!(scan.ids, vec![4, 9]);
        assert_eq!(scan.warnings.len(), 3, "warnings: {:?}", scan.warnings);
        assert!(scan.warnings.iter().any(|w| w.contains("user_notanumber")));
        assert!(scan.warnings.iter().any(|w| w.contains("README.txt")));
        assert!(scan.warnings.iter().any(|w| w.contains("user_3.json.tmp")));
        // `list` stays lossy but consistent with the scan.
        assert_eq!(store.list().unwrap(), scan.ids);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_updates_state() {
        let dir = temp_dir("overwrite");
        let store = StateStore::open(&dir).unwrap();
        let mut state = LongTermState::new(5);
        store.save(&state).unwrap();
        state.optimizations = 10;
        store.save(&state).unwrap();
        assert_eq!(store.load(5).unwrap().unwrap().optimizations, 10);
        let _ = fs::remove_dir_all(&dir);
    }
}
