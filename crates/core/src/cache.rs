//! Sharded, write-behind cache over a durable [`StateBackend`].
//!
//! The durable layer (paper §4: long-term state survives app termination)
//! is the right place for persistence, but a fleet simulation that
//! touches tens of thousands of users per epoch cannot afford a durable
//! round-trip per session. [`ShardedStateCache`] interposes an in-memory
//! layer: user ids hash onto lock shards (interior mutability via
//! `parking_lot::Mutex`, so workers share one `&ShardedStateCache`), each
//! shard holds an LRU-bounded map of [`LongTermState`], and writes are
//! *write-behind* — they dirty the cached entry and only reach the
//! backend in batches ([`ShardedStateCache::flush`], called at fleet
//! epoch barriers) or when an LRU eviction forces a single entry out.
//!
//! The flush batch goes through [`StateBackend::save_batch`], so the
//! backend picks its own strategy: the legacy file-per-user
//! [`StateStore`] splits the batch across writer threads, while the
//! [`BinaryStateLog`](crate::binlog::BinaryStateLog) turns it into a
//! handful of sequential buffered appends.
//!
//! The observable contract is that the cache is transparent: any
//! interleaving of `save`/`load`/`evict`/`flush` leaves the durable layer
//! in the same state as calling the backend directly once a final
//! `flush` lands (property-tested in `tests/cache_props.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::state::{LongTermState, StateBackend, StateStore};
use crate::{CoreError, Result};

/// Cache sizing and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of lock shards. More shards, less contention; user ids hash
    /// onto shards, so any count works functionally.
    pub shards: usize,
    /// Maximum resident entries per shard; the least-recently-used entry
    /// is evicted (flushing it if dirty) when a shard would exceed this.
    pub capacity_per_shard: usize,
    /// `true` pushes every save straight to the store (no batching);
    /// `false` (the default) is write-behind.
    pub write_through: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            capacity_per_shard: 4096,
            write_through: false,
        }
    }
}

impl CacheConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig(
                "cache needs at least one shard".into(),
            ));
        }
        if self.capacity_per_shard == 0 {
            return Err(CoreError::InvalidConfig(
                "cache shard capacity must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Running counters of cache behaviour (aggregated over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads answered from memory.
    pub hits: u64,
    /// Loads that fell through to the store.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Entries written to the store (flushes, evictions, write-through).
    pub writes: u64,
}

#[derive(Debug)]
struct Entry {
    state: LongTermState,
    dirty: bool,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheShard {
    /// Resident entries, keyed by user id. A `BTreeMap` rather than a
    /// hash map so iteration (the flush snapshot below) is in ascending
    /// user-id order by construction — write-behind flush order must
    /// never depend on a process-seeded hash (detlint rule D1).
    map: BTreeMap<u64, Entry>,
    /// LRU index: `(last_used, user_id)` kept in lockstep with `map`, so
    /// the eviction victim is `O(log n)` instead of a full map scan.
    lru: std::collections::BTreeSet<(u64, u64)>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    stats: CacheStats,
}

impl CacheShard {
    /// Insert or overwrite an entry, keeping the LRU index in lockstep.
    fn upsert(&mut self, user_id: u64, state: LongTermState, dirty: bool) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.map.insert(
            user_id,
            Entry {
                state,
                dirty,
                last_used: tick,
            },
        ) {
            self.lru.remove(&(old.last_used, user_id));
        }
        self.lru.insert((tick, user_id));
    }

    /// Remove an entry, keeping the LRU index in lockstep.
    fn remove(&mut self, user_id: u64) -> Option<Entry> {
        let entry = self.map.remove(&user_id)?;
        self.lru.remove(&(entry.last_used, user_id));
        Some(entry)
    }

    /// Evict least-recently-used entries until `capacity` holds, writing
    /// dirty victims through to `backend`.
    fn enforce_capacity(&mut self, capacity: usize, backend: &dyn StateBackend) -> Result<()> {
        while self.map.len() > capacity {
            let (_, victim) = *self.lru.first().expect("lru in lockstep with map");
            let entry = self.remove(victim).expect("victim present");
            self.stats.evictions += 1;
            if entry.dirty {
                backend.save(&entry.state)?;
                self.stats.writes += 1;
            }
        }
        Ok(())
    }
}

/// A sharded in-memory cache in front of a durable [`StateBackend`].
///
/// All methods take `&self`; the per-shard `parking_lot` mutexes make the
/// cache shareable across worker threads without an outer lock.
#[derive(Debug)]
pub struct ShardedStateCache {
    backend: Arc<dyn StateBackend>,
    shards: Vec<Mutex<CacheShard>>,
    capacity_per_shard: usize,
    write_through: bool,
}

impl ShardedStateCache {
    /// Wrap the legacy file-per-user `store` with a cache configured by
    /// `config` (convenience for [`ShardedStateCache::with_backend`]).
    pub fn new(store: StateStore, config: CacheConfig) -> Result<Self> {
        Self::with_backend(Arc::new(store), config)
    }

    /// Wrap any [`StateBackend`] with a cache configured by `config`.
    pub fn with_backend(backend: Arc<dyn StateBackend>, config: CacheConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            backend,
            shards: (0..config.shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            capacity_per_shard: config.capacity_per_shard,
            write_through: config.write_through,
        })
    }

    /// The durable layer underneath.
    pub fn backend(&self) -> &dyn StateBackend {
        self.backend.as_ref()
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, user_id: u64) -> &Mutex<CacheShard> {
        // Fibonacci hashing spreads sequential ids across shards.
        let h = user_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Load a user's state; `None` for users never saved. Misses fall
    /// through to the store and populate the cache.
    pub fn load(&self, user_id: u64) -> Result<Option<LongTermState>> {
        let mut shard = self.shard_for(user_id).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard.map.get_mut(&user_id) {
            let prev = std::mem::replace(&mut e.last_used, tick);
            let state = e.state.clone();
            shard.lru.remove(&(prev, user_id));
            shard.lru.insert((tick, user_id));
            shard.stats.hits += 1;
            return Ok(Some(state));
        }
        shard.stats.misses += 1;
        match self.backend.load(user_id)? {
            Some(state) => {
                shard.upsert(user_id, state.clone(), false);
                shard.enforce_capacity(self.capacity_per_shard, self.backend.as_ref())?;
                Ok(Some(state))
            }
            None => Ok(None),
        }
    }

    /// Load a user's state, creating a fresh [`LongTermState`] for
    /// first-time users (not yet persisted — a later `save`/`flush` does
    /// that, exactly like the direct-store path).
    pub fn load_or_new(&self, user_id: u64) -> Result<LongTermState> {
        Ok(self
            .load(user_id)?
            .unwrap_or_else(|| LongTermState::new(user_id)))
    }

    /// Save a user's state. Write-behind: the entry is dirtied in memory
    /// and reaches the store on the next `flush`/eviction. Write-through
    /// configurations persist immediately.
    pub fn save(&self, state: &LongTermState) -> Result<()> {
        let mut shard = self.shard_for(state.user_id).lock();
        if self.write_through {
            // Persist while holding the shard lock: two racing saves of
            // the same user must leave cache and store agreeing on one of
            // the two values, never one each.
            self.backend.save(state)?;
            shard.stats.writes += 1;
        }
        shard.upsert(state.user_id, state.clone(), !self.write_through);
        shard.enforce_capacity(self.capacity_per_shard, self.backend.as_ref())
    }

    /// Drop a user from the cache, persisting the entry first when dirty.
    /// Returns whether the user was resident.
    pub fn evict(&self, user_id: u64) -> Result<bool> {
        let mut shard = self.shard_for(user_id).lock();
        match shard.remove(user_id) {
            Some(entry) => {
                shard.stats.evictions += 1;
                if entry.dirty {
                    self.backend.save(&entry.state)?;
                    shard.stats.writes += 1;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Write every dirty entry to the backend (durably — the backend is
    /// flushed too) and mark the cache clean. Returns how many entries
    /// were written.
    ///
    /// Dirty entries are snapshotted under the shard locks in ascending
    /// `(shard, user_id)` order, handed to [`StateBackend::save_batch`]
    /// in one call without holding any lock (the file-per-user backend
    /// splits it across writer threads; the binary log turns it into
    /// sequential appends), then marked clean — but only when the cached
    /// state still equals the snapshot that was written, so a save racing
    /// the flush keeps its entry dirty for the next flush instead of
    /// being lost.
    pub fn flush(&self) -> Result<usize> {
        // Phase 1: snapshot dirty entries under the shard locks.
        let mut batch: Vec<(usize, LongTermState)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock();
            // BTreeMap::values is ascending user-id order, so the batch
            // is already sorted per shard — no post-hoc sort needed.
            batch.extend(
                shard
                    .map
                    .values()
                    .filter(|e| e.dirty)
                    .map(|e| (si, e.state.clone())),
            );
        }
        let written = batch.len();

        // Phase 2: persist without holding any lock, then make the
        // backend durable (drains any append buffers).
        let refs: Vec<&LongTermState> = batch.iter().map(|(_, s)| s).collect();
        self.backend.save_batch(&refs)?;
        drop(refs);
        self.backend.flush()?;

        // Phase 3: mark clean unless the entry moved on meanwhile.
        for (si, state) in &batch {
            let mut shard = self.shards[*si].lock();
            // detlint::allow(unordered_float_merge, reason = "u64 write counter; addition is associative and order-free")
            shard.stats.writes += 1;
            if let Some(entry) = shard.map.get_mut(&state.user_id) {
                if entry.dirty && entry.state == *state {
                    entry.dirty = false;
                }
            }
        }
        Ok(written)
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate behaviour counters.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.writes += s.writes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (PathBuf, StateStore) {
        let dir =
            std::env::temp_dir().join(format!("lingxi_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = StateStore::open(&dir).unwrap();
        (dir, store)
    }

    fn state(user_id: u64, optimizations: usize) -> LongTermState {
        LongTermState {
            optimizations,
            ..LongTermState::new(user_id)
        }
    }

    #[test]
    fn write_behind_defers_until_flush() {
        let (dir, store) = temp_store("behind");
        let cache = ShardedStateCache::new(store.clone(), CacheConfig::default()).unwrap();
        cache.save(&state(1, 3)).unwrap();
        // Not yet durable...
        assert!(store.load(1).unwrap().is_none());
        // ...but visible through the cache.
        assert_eq!(cache.load(1).unwrap().unwrap().optimizations, 3);
        assert_eq!(cache.flush().unwrap(), 1);
        assert_eq!(store.load(1).unwrap().unwrap().optimizations, 3);
        // Second flush is a no-op: nothing dirty.
        assert_eq!(cache.flush().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_through_persists_immediately() {
        let (dir, store) = temp_store("through");
        let cfg = CacheConfig {
            write_through: true,
            ..CacheConfig::default()
        };
        let cache = ShardedStateCache::new(store.clone(), cfg).unwrap();
        cache.save(&state(2, 5)).unwrap();
        assert_eq!(store.load(2).unwrap().unwrap().optimizations, 5);
        assert_eq!(cache.flush().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_flushes_dirty_victims() {
        let (dir, store) = temp_store("lru");
        let cfg = CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
            write_through: false,
        };
        let cache = ShardedStateCache::new(store.clone(), cfg).unwrap();
        cache.save(&state(1, 1)).unwrap();
        cache.save(&state(2, 2)).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        cache.load(1).unwrap();
        cache.save(&state(3, 3)).unwrap();
        assert_eq!(cache.len(), 2);
        // The evicted dirty entry landed in the store.
        assert_eq!(store.load(2).unwrap().unwrap().optimizations, 2);
        assert!(store.load(1).unwrap().is_none(), "1 still write-behind");
        assert!(cache.stats().evictions >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_and_reload_round_trips() {
        let (dir, store) = temp_store("evict");
        let cache = ShardedStateCache::new(store, CacheConfig::default()).unwrap();
        cache.save(&state(7, 9)).unwrap();
        assert!(cache.evict(7).unwrap());
        assert!(!cache.evict(7).unwrap());
        // Reload falls through to the store copy the eviction wrote.
        assert_eq!(cache.load(7).unwrap().unwrap().optimizations, 9);
        assert_eq!(cache.load_or_new(99).unwrap().optimizations, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_from_many_threads() {
        let (dir, store) = temp_store("threads");
        let cache = ShardedStateCache::new(store.clone(), CacheConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let id = t * 1000 + i;
                        cache.save(&state(id, id as usize)).unwrap();
                        assert_eq!(cache.load(id).unwrap().unwrap().user_id, id);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        assert_eq!(cache.flush().unwrap(), 400);
        assert_eq!(store.list().unwrap().len(), 400);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation() {
        let (dir, store) = temp_store("cfg");
        assert!(ShardedStateCache::new(
            store.clone(),
            CacheConfig {
                shards: 0,
                ..CacheConfig::default()
            }
        )
        .is_err());
        assert!(ShardedStateCache::new(
            store,
            CacheConfig {
                capacity_per_shard: 0,
                ..CacheConfig::default()
            }
        )
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
