//! LingXi — the paper's primary contribution: user-level personalized QoE
//! optimization layered over any ABR algorithm.
//!
//! The control loop (paper Fig. 6):
//!
//! 1. the live player streams segments; LingXi tracks user state (stall
//!    history, engagement, bitrate/throughput windows);
//! 2. when accumulated stalls cross the trigger threshold η (§4 chooses
//!    η = 2), the **online Bayesian optimizer** (§3.1, [`lingxi_bayes`])
//!    proposes candidate QoE parameters;
//! 3. each candidate is evaluated by **Monte-Carlo virtual playback**
//!    (§3.2, [`montecarlo`]): rollouts from the current player state under
//!    bandwidth `~ N(μ_Cpast, σ²_Cpast)`, with the **exit-rate predictor**
//!    (§3.3, [`lingxi_exit`]) deciding random exits;
//! 4. the parameters with the lowest simulated exit rate are deployed to
//!    the underlying ABR (`ABR.update(x*)`).
//!
//! Deployment machinery (§4) is here too: dual-layer state management with
//! JSON persistence (HDF5 substitution documented in DESIGN.md), the
//! trigger, and both pruning stages (virtual-playback early termination and
//! the pre-playback `μ − 3σ > Q_max` skip).

pub mod controller;
pub mod montecarlo;
pub mod predictor;
pub mod session;
pub mod state;

pub use controller::{LingXiConfig, LingXiController, OptimizeOutcome, ParamDim, SearchStrategy};
pub use montecarlo::{evaluate_parameters, McConfig, McEvaluation};
pub use predictor::{ConstantPredictor, ProfilePredictor, RolloutContext, RolloutPredictor};
pub use session::{run_managed_session, ManagedOutcome};
pub use state::{LongTermState, StateStore};

/// Errors from the LingXi control loop.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// An underlying subsystem failed.
    Subsystem(String),
    /// State persistence failed.
    Persistence(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            CoreError::Subsystem(m) => write!(f, "subsystem failure: {m}"),
            CoreError::Persistence(m) => write!(f, "persistence failure: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
