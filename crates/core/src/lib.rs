//! LingXi — the paper's primary contribution: user-level personalized QoE
//! optimization layered over any ABR algorithm.
//!
//! The control loop (paper Fig. 6):
//!
//! 1. the live player streams segments; LingXi tracks user state (stall
//!    history, engagement, bitrate/throughput windows);
//! 2. when accumulated stalls cross the trigger threshold η (§4 chooses
//!    η = 2), the **online Bayesian optimizer** (§3.1, [`lingxi_bayes`])
//!    proposes candidate QoE parameters;
//! 3. each candidate is evaluated by **Monte-Carlo virtual playback**
//!    (§3.2, [`montecarlo`]): rollouts from the current player state under
//!    bandwidth `~ N(μ_Cpast, σ²_Cpast)`, with the **exit-rate predictor**
//!    (§3.3, [`lingxi_exit`]) deciding random exits;
//! 4. the parameters with the lowest simulated exit rate are deployed to
//!    the underlying ABR (`ABR.update(x*)`).
//!
//! Deployment machinery (§4) is here too: dual-layer state management with
//! JSON persistence (HDF5 substitution documented in DESIGN.md), the
//! trigger, and both pruning stages (virtual-playback early termination and
//! the pre-playback `μ − 3σ > Q_max` skip). For fleet-scale workloads the
//! [`cache`] module layers a sharded, write-behind [`ShardedStateCache`]
//! over a durable [`StateBackend`] — either the legacy file-per-user
//! [`StateStore`] or the sharded append-only [`BinaryStateLog`] (see
//! ARCHITECTURE.md, "Persistence layer").
//!
//! ```
//! use lingxi_core::{LingXiConfig, LingXiController};
//!
//! // The §5.3 deployment configuration: trigger after η = 2 stalls,
//! // searching HYB's β only.
//! let controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
//! assert_eq!(controller.optimizations(), 0);
//! assert!(!controller.triggered());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binlog;
pub mod cache;
pub mod controller;
pub mod montecarlo;
pub mod predictor;
pub mod session;
pub mod state;

pub use binlog::{
    migrate_file_store, BinLogConfig, BinaryStateLog, MigrationReport, BINLOG_FORMAT_VERSION,
};
pub use cache::{CacheConfig, CacheStats, ShardedStateCache};
pub use controller::{LingXiConfig, LingXiController, OptimizeOutcome, ParamDim, SearchStrategy};
pub use montecarlo::{
    evaluate_parameters, evaluate_parameters_in, McConfig, McEvaluation, McScratch,
};
pub use predictor::{ConstantPredictor, ProfilePredictor, RolloutContext, RolloutPredictor};
pub use session::{
    run_managed_session, run_managed_session_in, ManagedHooks, ManagedOutcome, ManagedSession,
    SessionBuffers,
};
pub use state::{LongTermState, StateBackend, StateScan, StateStore};

/// Errors from the LingXi control loop.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// An underlying subsystem failed.
    Subsystem(String),
    /// State persistence failed.
    Persistence(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            CoreError::Subsystem(m) => write!(f, "subsystem failure: {m}"),
            CoreError::Persistence(m) => write!(f, "persistence failure: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
