//! Managed sessions: live playback with LingXi interposed between the
//! player, the ABR and the (real or simulated) user.
//!
//! This is the integration path of §4: the ABR runs normally; LingXi
//! observes segments, and when its trigger fires it re-optimizes the ABR's
//! parameters *between segments* (the paper runs this on a low-priority
//! background thread; in the simulator it is interleaved, which preserves
//! the control flow under test).

use lingxi_abr::{Abr, AbrContext, QoeParams};
use lingxi_media::{BitrateLadder, Video};
use lingxi_net::{BandwidthProcess, Download};
use lingxi_player::{PlayerConfig, PlayerEnv, SegmentRequest, SessionEnd, SessionLog};
use lingxi_user::{ExitModel, SegmentView};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::controller::LingXiController;
use crate::montecarlo::McScratch;
use crate::predictor::RolloutPredictor;
use crate::{CoreError, Result};

/// Everything produced by one managed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedOutcome {
    /// The playback log.
    pub log: SessionLog,
    /// Parameter values deployed during the session (one entry per
    /// optimization pass that fired).
    pub deployments: Vec<lingxi_abr::QoeParams>,
}

/// Reusable buffers for driving many managed sessions from one worker.
///
/// A managed session's hot-path allocations are the per-segment log and
/// the Monte-Carlo rollout scratch; a worker that owns one `SessionBuffers`
/// and calls [`run_managed_session_in`] amortizes both across every session
/// it runs. The fleet engine keeps one per shard worker.
#[derive(Debug)]
pub struct SessionBuffers {
    log: SessionLog,
    deployments: Vec<QoeParams>,
    mc: McScratch,
}

impl Default for SessionBuffers {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuffers {
    /// Fresh buffers; capacity grows on first use and is retained after.
    pub fn new() -> Self {
        Self {
            log: SessionLog {
                user_id: 0,
                video_id: 0,
                video_duration: 0.0,
                segments: Vec::new(),
                watch_time: 0.0,
                end: SessionEnd::Completed,
                exit_segment: None,
            },
            deployments: Vec::new(),
            mc: McScratch::new(),
        }
    }

    /// The last session's playback log (borrowed; cleared by the next run).
    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// Parameters deployed during the last session.
    pub fn deployments(&self) -> &[QoeParams] {
        &self.deployments
    }
}

/// The mutable collaborators a [`ManagedSession`] needs at every step.
///
/// The stepper itself holds only the per-session state machine; callers
/// (the linear driver here, the fleet contention kernel) own the ABR,
/// controller, predictor, user model, buffers and RNG, and lend them per
/// call — which is what lets one kernel interleave many sessions without
/// self-referential borrows.
pub struct ManagedHooks<'h, R: Rng> {
    /// The ABR whose parameters LingXi manages.
    pub abr: &'h mut dyn Abr,
    /// The per-user controller (long-term state across sessions).
    pub controller: &'h mut LingXiController,
    /// The rollout exit-rate predictor.
    pub predictor: &'h mut dyn RolloutPredictor,
    /// The user's exit model.
    pub user: &'h mut dyn ExitModel,
    /// Log / deployment / Monte-Carlo scratch buffers.
    pub buffers: &'h mut SessionBuffers,
    /// The user's RNG stream.
    pub rng: &'h mut R,
}

/// A managed session as a resumable per-segment state machine — the
/// managed-path twin of [`lingxi_player::SessionStream`].
///
/// Alternate [`ManagedSession::next_request`] with
/// [`ManagedSession::complete`], then [`ManagedSession::finalize`] writes
/// the log tail into the buffers. [`run_managed_session_in`] is exactly
/// this loop against one [`BandwidthProcess`].
///
/// This deliberately does not wrap `SessionStream`: segments must land in
/// the caller's reusable [`SessionBuffers`] (the fleet hot path amortizes
/// that allocation across sessions), while the stream owns a per-session
/// vector. The watch-time arithmetic is shared
/// ([`lingxi_player::content_watch_time`]); the per-segment protocols are
/// cross-checked by `buffered_variant_matches_allocating_variant` below
/// and pinned by `tests/golden_regression.rs`.
#[derive(Debug)]
pub struct ManagedSession<'a> {
    user_id: u64,
    video: &'a Video,
    ladder: &'a BitrateLadder,
    env: PlayerEnv,
    pending: Option<(usize, f64)>,
    end: SessionEnd,
    exit_segment: Option<usize>,
    finished: bool,
}

impl<'a> ManagedSession<'a> {
    /// Start a managed session: resets the user model, applies the
    /// controller's current best parameters to the ABR (restored long-term
    /// state warm-starts it) and clears the log buffers.
    pub fn begin<R: Rng>(
        user_id: u64,
        video: &'a Video,
        ladder: &'a BitrateLadder,
        player_config: PlayerConfig,
        hooks: &mut ManagedHooks<'_, R>,
    ) -> Result<Self> {
        let env = PlayerEnv::new(player_config).map_err(|e| CoreError::Subsystem(e.to_string()))?;
        hooks.buffers.log.segments.clear();
        hooks.buffers.log.segments.reserve(video.n_segments());
        hooks.buffers.deployments.clear();
        hooks.user.reset_session();
        hooks.abr.set_params(hooks.controller.params());
        Ok(Self {
            user_id,
            video,
            ladder,
            env,
            pending: None,
            end: SessionEnd::Completed,
            exit_segment: None,
            finished: false,
        })
    }

    /// The live player state.
    pub fn env(&self) -> &PlayerEnv {
        &self.env
    }

    /// Run the ABR for the next segment and return its download request;
    /// `None` once the video is fully downloaded or the user exited.
    pub fn next_request<R: Rng>(
        &mut self,
        hooks: &mut ManagedHooks<'_, R>,
    ) -> Result<Option<SegmentRequest>> {
        if self.finished || self.env.segment_index() >= self.video.n_segments() {
            self.finished = true;
            return Ok(None);
        }
        let k = self.env.segment_index();
        let seg_duration = self.video.sizes.segment_duration();
        let ctx = AbrContext {
            ladder: self.ladder,
            sizes: &self.video.sizes,
            next_segment: k,
            segment_duration: seg_duration,
        };
        let level = hooks
            .abr
            .select(&self.env, &ctx)
            .min(self.ladder.top_level());
        let size = self
            .video
            .sizes
            .size_kbits(k, level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        self.pending = Some((level, size));
        Ok(Some(SegmentRequest {
            at: self.env.wall_time(),
            size_kbits: size,
            level,
        }))
    }

    /// Apply a completed download: advance the player, let LingXi observe
    /// (and possibly re-optimize between segments), then consult the user.
    /// Returns `false` once the session is over.
    pub fn complete<R: Rng>(
        &mut self,
        download: Download,
        hooks: &mut ManagedHooks<'_, R>,
    ) -> Result<bool> {
        let (level, size) = self
            .pending
            .take()
            .ok_or_else(|| CoreError::Subsystem("complete() without a pending request".into()))?;
        let seg_duration = self.video.sizes.segment_duration();
        let k = self.env.segment_index();
        let bandwidth = download.kbps;
        let switched_from = self.env.last_level();
        let outcome = self
            .env
            .step(size, level, bandwidth, seg_duration, hooks.rng)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let bitrate = self
            .ladder
            .bitrate(level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let record = self
            .env
            .record(&outcome, level, bitrate, size, switched_from);
        hooks.buffers.log.segments.push(record);

        // LingXi observes the segment and may re-optimize.
        hooks.controller.observe_segment(&record, seg_duration);
        if let Some(out) = hooks.controller.maybe_optimize_in(
            hooks.abr,
            &self.env,
            self.ladder,
            hooks.predictor,
            &mut hooks.buffers.mc,
            hooks.rng,
        )? {
            hooks.buffers.deployments.push(out.params);
        }

        // User decision.
        let view = SegmentView {
            env: &self.env,
            record: &record,
            ladder: self.ladder,
        };
        if hooks.user.decide(&view, hooks.rng) {
            hooks.controller.observe_exit(record.stall_time > 0.0);
            self.end = SessionEnd::Exited;
            self.exit_segment = Some(k);
            self.finished = true;
            return Ok(false);
        }
        Ok(true)
    }

    /// Write the session's log tail (identity, watch time, end state) into
    /// the buffers whose `segments` the steps filled.
    pub fn finalize(&self, buffers: &mut SessionBuffers) {
        let video_duration = self.video.duration();
        let seg_duration = self.video.sizes.segment_duration();
        let watch_time = lingxi_player::content_watch_time(
            self.end,
            self.exit_segment,
            seg_duration,
            video_duration,
            self.env.playback_time(),
        );
        buffers.log.user_id = self.user_id;
        buffers.log.video_id = self.video.id;
        buffers.log.video_duration = video_duration;
        buffers.log.watch_time = watch_time;
        buffers.log.end = self.end;
        buffers.log.exit_segment = self.exit_segment;
    }
}

/// Run one session with LingXi managing `abr`'s parameters.
///
/// Convenience wrapper over [`run_managed_session_in`] that allocates
/// fresh buffers and returns an owned [`ManagedOutcome`].
#[allow(clippy::too_many_arguments)]
pub fn run_managed_session<R: Rng>(
    user_id: u64,
    video: &Video,
    ladder: &BitrateLadder,
    process: &dyn BandwidthProcess,
    player_config: PlayerConfig,
    abr: &mut dyn Abr,
    controller: &mut LingXiController,
    predictor: &mut dyn RolloutPredictor,
    user: &mut dyn ExitModel,
    rng: &mut R,
) -> Result<ManagedOutcome> {
    let mut buffers = SessionBuffers::new();
    run_managed_session_in(
        user_id,
        video,
        ladder,
        process,
        player_config,
        abr,
        controller,
        predictor,
        user,
        &mut buffers,
        rng,
    )?;
    Ok(ManagedOutcome {
        log: buffers.log,
        deployments: buffers.deployments,
    })
}

/// Run one managed session into caller-owned buffers (the fleet hot path).
///
/// The playback log lands in `buffers` — read it via
/// [`SessionBuffers::log`] before the next call overwrites it. Results are
/// bit-identical to [`run_managed_session`] under the same RNG stream.
#[allow(clippy::too_many_arguments)]
pub fn run_managed_session_in<R: Rng>(
    user_id: u64,
    video: &Video,
    ladder: &BitrateLadder,
    process: &dyn BandwidthProcess,
    player_config: PlayerConfig,
    abr: &mut dyn Abr,
    controller: &mut LingXiController,
    predictor: &mut dyn RolloutPredictor,
    user: &mut dyn ExitModel,
    buffers: &mut SessionBuffers,
    rng: &mut R,
) -> Result<()> {
    let mut hooks = ManagedHooks {
        abr,
        controller,
        predictor,
        user,
        buffers,
        rng,
    };
    let mut session = ManagedSession::begin(user_id, video, ladder, player_config, &mut hooks)?;
    while let Some(req) = session.next_request(&mut hooks)? {
        let download = process.download(req.at, req.size_kbits);
        if !session.complete(download, &mut hooks)? {
            break;
        }
    }
    session.finalize(hooks.buffers);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::LingXiConfig;
    use crate::predictor::ProfilePredictor;
    use lingxi_abr::Hyb;
    use lingxi_media::{BitrateLadder, Catalog, CatalogConfig, VbrModel};
    use lingxi_net::BandwidthTrace;
    use lingxi_user::{QosExitModel, SensitivityKind, StallProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig {
                n_videos: 4,
                mean_duration: 60.0,
                vbr: VbrModel::cbr(),
                ..CatalogConfig::default()
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn managed_session_runs_cleanly_on_good_link() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(20_000.0, 200, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.35).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let mut user = QosExitModel::calibrated(profile);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_managed_session(
            1,
            cat.video_cyclic(0),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(!out.log.segments.is_empty());
        // Rich link: no optimization should fire (startup stall at most).
        assert!(out.deployments.len() <= 1);
    }

    #[test]
    fn weak_link_triggers_optimization() {
        let cat = catalog();
        // Below the ladder floor: every segment stalls.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Insensitive, 10.0, 0.05).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.002,
        };
        // Insensitive user so the session survives long enough to trigger.
        let mut user = QosExitModel::calibrated(profile);
        user.base_exit = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_managed_session(
            2,
            cat.video_cyclic(1),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(out.log.total_stall() > 0.0);
        assert!(
            controller.optimizations() > 0,
            "stall-heavy session must trigger OBO"
        );
        assert!(!out.deployments.is_empty());
    }

    #[test]
    fn buffered_variant_matches_allocating_variant() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(900.0, 2000, 1.0).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.3).unwrap();
        let run_fresh = |s: usize| {
            let mut abr = Hyb::default_rule();
            let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            run_managed_session(
                9,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut rng,
            )
            .unwrap()
        };
        // One reused buffer across sessions must reproduce each fresh run.
        let mut buffers = SessionBuffers::new();
        for s in 0..3 {
            let mut abr = Hyb::default_rule();
            let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            run_managed_session_in(
                9,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut buffers,
                &mut rng,
            )
            .unwrap();
            let fresh = run_fresh(s);
            assert_eq!(buffers.log(), &fresh.log, "session {s} log diverged");
            assert_eq!(buffers.deployments(), &fresh.deployments[..]);
        }
    }

    #[test]
    fn controller_state_carries_across_sessions() {
        let cat = catalog();
        // Below the 350 kbps ladder floor: every segment rebuffers.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 1.5, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for s in 0..3 {
            let mut abr = Hyb::default_rule();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let _ = run_managed_session(
                3,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut rng,
            )
            .unwrap();
        }
        // Long-term tracker accumulated history across the sessions.
        assert!(controller.tracker().recent_stall_count() > 0);
    }
}
