//! Managed sessions: live playback with LingXi interposed between the
//! player, the ABR and the (real or simulated) user.
//!
//! This is the integration path of §4: the ABR runs normally; LingXi
//! observes segments, and when its trigger fires it re-optimizes the ABR's
//! parameters *between segments* (the paper runs this on a low-priority
//! background thread; in the simulator it is interleaved, which preserves
//! the control flow under test).

use lingxi_abr::{Abr, AbrContext, QoeParams};
use lingxi_media::{BitrateLadder, Video};
use lingxi_net::BandwidthTrace;
use lingxi_player::{PlayerConfig, PlayerEnv, SessionEnd, SessionLog};
use lingxi_user::{ExitModel, SegmentView};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::controller::LingXiController;
use crate::montecarlo::McScratch;
use crate::predictor::RolloutPredictor;
use crate::{CoreError, Result};

/// Everything produced by one managed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedOutcome {
    /// The playback log.
    pub log: SessionLog,
    /// Parameter values deployed during the session (one entry per
    /// optimization pass that fired).
    pub deployments: Vec<lingxi_abr::QoeParams>,
}

/// Reusable buffers for driving many managed sessions from one worker.
///
/// A managed session's hot-path allocations are the per-segment log and
/// the Monte-Carlo rollout scratch; a worker that owns one `SessionBuffers`
/// and calls [`run_managed_session_in`] amortizes both across every session
/// it runs. The fleet engine keeps one per shard worker.
#[derive(Debug)]
pub struct SessionBuffers {
    log: SessionLog,
    deployments: Vec<QoeParams>,
    mc: McScratch,
}

impl Default for SessionBuffers {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuffers {
    /// Fresh buffers; capacity grows on first use and is retained after.
    pub fn new() -> Self {
        Self {
            log: SessionLog {
                user_id: 0,
                video_id: 0,
                video_duration: 0.0,
                segments: Vec::new(),
                watch_time: 0.0,
                end: SessionEnd::Completed,
                exit_segment: None,
            },
            deployments: Vec::new(),
            mc: McScratch::new(),
        }
    }

    /// The last session's playback log (borrowed; cleared by the next run).
    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// Parameters deployed during the last session.
    pub fn deployments(&self) -> &[QoeParams] {
        &self.deployments
    }
}

/// Run one session with LingXi managing `abr`'s parameters.
///
/// Convenience wrapper over [`run_managed_session_in`] that allocates
/// fresh buffers and returns an owned [`ManagedOutcome`].
#[allow(clippy::too_many_arguments)]
pub fn run_managed_session<R: Rng>(
    user_id: u64,
    video: &Video,
    ladder: &BitrateLadder,
    trace: &BandwidthTrace,
    player_config: PlayerConfig,
    abr: &mut dyn Abr,
    controller: &mut LingXiController,
    predictor: &mut dyn RolloutPredictor,
    user: &mut dyn ExitModel,
    rng: &mut R,
) -> Result<ManagedOutcome> {
    let mut buffers = SessionBuffers::new();
    run_managed_session_in(
        user_id,
        video,
        ladder,
        trace,
        player_config,
        abr,
        controller,
        predictor,
        user,
        &mut buffers,
        rng,
    )?;
    Ok(ManagedOutcome {
        log: buffers.log,
        deployments: buffers.deployments,
    })
}

/// Run one managed session into caller-owned buffers (the fleet hot path).
///
/// The playback log lands in `buffers` — read it via
/// [`SessionBuffers::log`] before the next call overwrites it. Results are
/// bit-identical to [`run_managed_session`] under the same RNG stream.
#[allow(clippy::too_many_arguments)]
pub fn run_managed_session_in<R: Rng>(
    user_id: u64,
    video: &Video,
    ladder: &BitrateLadder,
    trace: &BandwidthTrace,
    player_config: PlayerConfig,
    abr: &mut dyn Abr,
    controller: &mut LingXiController,
    predictor: &mut dyn RolloutPredictor,
    user: &mut dyn ExitModel,
    buffers: &mut SessionBuffers,
    rng: &mut R,
) -> Result<()> {
    let mut env = PlayerEnv::new(player_config).map_err(|e| CoreError::Subsystem(e.to_string()))?;
    let seg_duration = video.sizes.segment_duration();
    let n_segments = video.n_segments();
    buffers.log.segments.clear();
    buffers.log.segments.reserve(n_segments);
    buffers.deployments.clear();
    let mut end = SessionEnd::Completed;
    let mut exit_segment = None;
    user.reset_session();

    // Apply the controller's current best parameters before playback
    // (restored long-term state warm-starts the ABR).
    abr.set_params(controller.params());

    for k in 0..n_segments {
        let ctx = AbrContext {
            ladder,
            sizes: &video.sizes,
            next_segment: k,
            segment_duration: seg_duration,
        };
        let level = abr.select(&env, &ctx).min(ladder.top_level());
        let size = video
            .sizes
            .size_kbits(k, level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let dl = trace.download_time(env.wall_time(), size);
        let bandwidth = if dl > 0.0 {
            size / dl
        } else {
            trace.at(env.wall_time())
        };
        let switched_from = env.last_level();
        let outcome = env
            .step(size, level, bandwidth, seg_duration, rng)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let bitrate = ladder
            .bitrate(level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let record = env.record(&outcome, level, bitrate, size, switched_from);
        buffers.log.segments.push(record);

        // LingXi observes the segment and may re-optimize.
        controller.observe_segment(&record, seg_duration);
        if let Some(out) =
            controller.maybe_optimize_in(abr, &env, ladder, predictor, &mut buffers.mc, rng)?
        {
            buffers.deployments.push(out.params);
        }

        // User decision.
        let view = SegmentView {
            env: &env,
            record: &record,
            ladder,
        };
        if user.decide(&view, rng) {
            controller.observe_exit(record.stall_time > 0.0);
            end = SessionEnd::Exited;
            exit_segment = Some(k);
            break;
        }
    }

    let video_duration = video.duration();
    // Content-based watch time (see `lingxi_player::run_session`): the user
    // watched up to and including the segment at which they exited.
    let watch_time = match (end, exit_segment) {
        (SessionEnd::Completed, _) => video_duration,
        (_, Some(k)) => ((k + 1) as f64 * seg_duration).min(video_duration),
        (_, None) => env.playback_time().min(video_duration),
    };

    buffers.log.user_id = user_id;
    buffers.log.video_id = video.id;
    buffers.log.video_duration = video_duration;
    buffers.log.watch_time = watch_time;
    buffers.log.end = end;
    buffers.log.exit_segment = exit_segment;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::LingXiConfig;
    use crate::predictor::ProfilePredictor;
    use lingxi_abr::Hyb;
    use lingxi_media::{BitrateLadder, Catalog, CatalogConfig, VbrModel};
    use lingxi_user::{QosExitModel, SensitivityKind, StallProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig {
                n_videos: 4,
                mean_duration: 60.0,
                vbr: VbrModel::cbr(),
                ..CatalogConfig::default()
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn managed_session_runs_cleanly_on_good_link() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(20_000.0, 200, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.35).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let mut user = QosExitModel::calibrated(profile);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_managed_session(
            1,
            cat.video_cyclic(0),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(!out.log.segments.is_empty());
        // Rich link: no optimization should fire (startup stall at most).
        assert!(out.deployments.len() <= 1);
    }

    #[test]
    fn weak_link_triggers_optimization() {
        let cat = catalog();
        // Below the ladder floor: every segment stalls.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Insensitive, 10.0, 0.05).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.002,
        };
        // Insensitive user so the session survives long enough to trigger.
        let mut user = QosExitModel::calibrated(profile);
        user.base_exit = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_managed_session(
            2,
            cat.video_cyclic(1),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(out.log.total_stall() > 0.0);
        assert!(
            controller.optimizations() > 0,
            "stall-heavy session must trigger OBO"
        );
        assert!(!out.deployments.is_empty());
    }

    #[test]
    fn buffered_variant_matches_allocating_variant() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(900.0, 2000, 1.0).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.3).unwrap();
        let run_fresh = |s: usize| {
            let mut abr = Hyb::default_rule();
            let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            run_managed_session(
                9,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut rng,
            )
            .unwrap()
        };
        // One reused buffer across sessions must reproduce each fresh run.
        let mut buffers = SessionBuffers::new();
        for s in 0..3 {
            let mut abr = Hyb::default_rule();
            let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            run_managed_session_in(
                9,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut buffers,
                &mut rng,
            )
            .unwrap();
            let fresh = run_fresh(s);
            assert_eq!(buffers.log(), &fresh.log, "session {s} log diverged");
            assert_eq!(buffers.deployments(), &fresh.deployments[..]);
        }
    }

    #[test]
    fn controller_state_carries_across_sessions() {
        let cat = catalog();
        // Below the 350 kbps ladder floor: every segment rebuffers.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 1.5, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for s in 0..3 {
            let mut abr = Hyb::default_rule();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let _ = run_managed_session(
                3,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut rng,
            )
            .unwrap();
        }
        // Long-term tracker accumulated history across the sessions.
        assert!(controller.tracker().recent_stall_count() > 0);
    }
}
