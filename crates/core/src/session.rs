//! Managed sessions: live playback with LingXi interposed between the
//! player, the ABR and the (real or simulated) user.
//!
//! This is the integration path of §4: the ABR runs normally; LingXi
//! observes segments, and when its trigger fires it re-optimizes the ABR's
//! parameters *between segments* (the paper runs this on a low-priority
//! background thread; in the simulator it is interleaved, which preserves
//! the control flow under test).

use lingxi_abr::{Abr, AbrContext};
use lingxi_media::{BitrateLadder, Video};
use lingxi_net::BandwidthTrace;
use lingxi_player::{PlayerConfig, PlayerEnv, SessionEnd, SessionLog};
use lingxi_user::{ExitModel, SegmentView};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::controller::LingXiController;
use crate::predictor::RolloutPredictor;
use crate::{CoreError, Result};

/// Everything produced by one managed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedOutcome {
    /// The playback log.
    pub log: SessionLog,
    /// Parameter values deployed during the session (one entry per
    /// optimization pass that fired).
    pub deployments: Vec<lingxi_abr::QoeParams>,
}

/// Run one session with LingXi managing `abr`'s parameters.
#[allow(clippy::too_many_arguments)]
pub fn run_managed_session<R: Rng>(
    user_id: u64,
    video: &Video,
    ladder: &BitrateLadder,
    trace: &BandwidthTrace,
    player_config: PlayerConfig,
    abr: &mut dyn Abr,
    controller: &mut LingXiController,
    predictor: &mut dyn RolloutPredictor,
    user: &mut dyn ExitModel,
    rng: &mut R,
) -> Result<ManagedOutcome> {
    let mut env = PlayerEnv::new(player_config).map_err(|e| CoreError::Subsystem(e.to_string()))?;
    let seg_duration = video.sizes.segment_duration();
    let n_segments = video.n_segments();
    let mut segments = Vec::with_capacity(n_segments);
    let mut deployments = Vec::new();
    let mut end = SessionEnd::Completed;
    let mut exit_segment = None;
    user.reset_session();

    // Apply the controller's current best parameters before playback
    // (restored long-term state warm-starts the ABR).
    abr.set_params(controller.params());

    for k in 0..n_segments {
        let ctx = AbrContext {
            ladder,
            sizes: &video.sizes,
            next_segment: k,
            segment_duration: seg_duration,
        };
        let level = abr.select(&env, &ctx).min(ladder.top_level());
        let size = video
            .sizes
            .size_kbits(k, level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let dl = trace.download_time(env.wall_time(), size);
        let bandwidth = if dl > 0.0 {
            size / dl
        } else {
            trace.at(env.wall_time())
        };
        let switched_from = env.last_level();
        let outcome = env
            .step(size, level, bandwidth, seg_duration, rng)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let bitrate = ladder
            .bitrate(level)
            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
        let record = env.record(&outcome, level, bitrate, size, switched_from);
        segments.push(record);

        // LingXi observes the segment and may re-optimize.
        controller.observe_segment(&record, seg_duration);
        if let Some(out) = controller.maybe_optimize(abr, &env, ladder, predictor, rng)? {
            deployments.push(out.params);
        }

        // User decision.
        let view = SegmentView {
            env: &env,
            record: &record,
            ladder,
        };
        if user.decide(&view, rng) {
            controller.observe_exit(record.stall_time > 0.0);
            end = SessionEnd::Exited;
            exit_segment = Some(k);
            break;
        }
    }

    let video_duration = video.duration();
    // Content-based watch time (see `lingxi_player::run_session`): the user
    // watched up to and including the segment at which they exited.
    let watch_time = match (end, exit_segment) {
        (SessionEnd::Completed, _) => video_duration,
        (_, Some(k)) => ((k + 1) as f64 * seg_duration).min(video_duration),
        (_, None) => env.playback_time().min(video_duration),
    };

    Ok(ManagedOutcome {
        log: SessionLog {
            user_id,
            video_id: video.id,
            video_duration,
            segments,
            watch_time,
            end,
            exit_segment,
        },
        deployments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::LingXiConfig;
    use crate::predictor::ProfilePredictor;
    use lingxi_abr::Hyb;
    use lingxi_media::{BitrateLadder, Catalog, CatalogConfig, VbrModel};
    use lingxi_user::{QosExitModel, SensitivityKind, StallProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig {
                n_videos: 4,
                mean_duration: 60.0,
                vbr: VbrModel::cbr(),
                ..CatalogConfig::default()
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn managed_session_runs_cleanly_on_good_link() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(20_000.0, 200, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.35).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let mut user = QosExitModel::calibrated(profile);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_managed_session(
            1,
            cat.video_cyclic(0),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(!out.log.segments.is_empty());
        // Rich link: no optimization should fire (startup stall at most).
        assert!(out.deployments.len() <= 1);
    }

    #[test]
    fn weak_link_triggers_optimization() {
        let cat = catalog();
        // Below the ladder floor: every segment stalls.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut abr = Hyb::default_rule();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Insensitive, 10.0, 0.05).unwrap();
        let mut predictor = ProfilePredictor {
            profile,
            base: 0.002,
        };
        // Insensitive user so the session survives long enough to trigger.
        let mut user = QosExitModel::calibrated(profile);
        user.base_exit = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_managed_session(
            2,
            cat.video_cyclic(1),
            cat.ladder(),
            &trace,
            PlayerConfig::deterministic(10.0, 0.0),
            &mut abr,
            &mut controller,
            &mut predictor,
            &mut user,
            &mut rng,
        )
        .unwrap();
        assert!(out.log.total_stall() > 0.0);
        assert!(
            controller.optimizations() > 0,
            "stall-heavy session must trigger OBO"
        );
        assert!(!out.deployments.is_empty());
    }

    #[test]
    fn controller_state_carries_across_sessions() {
        let cat = catalog();
        // Below the 350 kbps ladder floor: every segment rebuffers.
        let trace = BandwidthTrace::constant(300.0, 2000, 1.0).unwrap();
        let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 1.5, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for s in 0..3 {
            let mut abr = Hyb::default_rule();
            let mut predictor = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut user = QosExitModel::calibrated(profile);
            let _ = run_managed_session(
                3,
                cat.video_cyclic(s),
                cat.ladder(),
                &trace,
                PlayerConfig::deterministic(10.0, 0.0),
                &mut abr,
                &mut controller,
                &mut predictor,
                &mut user,
                &mut rng,
            )
            .unwrap();
        }
        // Long-term tracker accumulated history across the sessions.
        assert!(controller.tracker().recent_stall_count() > 0);
    }
}
