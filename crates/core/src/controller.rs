//! The LingXi controller — Algorithm 1.
//!
//! Tracks stall events during live playback; when the trigger threshold η
//! is crossed (and the pre-playback prune does not fire), runs the OBO ×
//! Monte-Carlo loop to find the parameters minimising the predicted exit
//! rate, and hands them to the ABR.

use lingxi_abr::{Abr, QoeParams};
use lingxi_bayes::{ObOptimizer, ObserverConfig};
use lingxi_exit::UserStateTracker;
use lingxi_media::BitrateLadder;
use lingxi_player::{PlayerEnv, SegmentRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::montecarlo::{evaluate_parameters_in, McConfig, McScratch};
use crate::predictor::RolloutPredictor;
use crate::{CoreError, Result};

/// Which QoE parameters the optimizer searches over. HYB deployments tune
/// β only; explicit-objective ABRs tune stall/switch weights (§5.2–5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamDim {
    /// Stall penalty weight μ.
    Stall,
    /// Switch penalty weight.
    Switch,
    /// HYB aggressiveness β.
    Beta,
}

impl ParamDim {
    fn get_unit(&self, p: &QoeParams) -> f64 {
        let u = p.to_unit();
        match self {
            ParamDim::Stall => u[0],
            ParamDim::Switch => u[1],
            ParamDim::Beta => u[2],
        }
    }

    fn set_unit(&self, p: &mut QoeParams, v: f64) {
        let mut u = p.to_unit();
        match self {
            ParamDim::Stall => u[0] = v,
            ParamDim::Switch => u[1] = v,
            ParamDim::Beta => u[2] = v,
        }
        *p = QoeParams::from_unit(u);
    }
}

/// How candidate parameters are proposed — §5.2 compares LingXi with a
/// fixed candidate set (`L(F)`) against full Bayesian optimization
/// (`L(B)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SearchStrategy {
    /// Online Bayesian optimization over the active dimensions.
    #[default]
    Bayesian,
    /// Evaluate a fixed candidate list and pick the best.
    FixedCandidates(Vec<QoeParams>),
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LingXiConfig {
    /// Trigger threshold η: optimize once this many stalls accumulate
    /// since the last optimization (paper picks 2 — Fig. 8b).
    pub trigger_stalls: usize,
    /// Maximum OBO iterations per optimization (`T_s`).
    pub max_trials: usize,
    /// Monte-Carlo settings.
    pub mc: McConfig,
    /// Pre-playback prune: skip optimization when
    /// `μ − 3σ > Q_max` (§4).
    pub prune_sigma: f64,
    /// A challenger must beat the incumbent's evaluated exit rate by this
    /// absolute margin to be adopted. Guards against Monte-Carlo noise
    /// walking the parameters away from a perfectly good incumbent when
    /// the objective is flat (e.g. stall-tolerant users).
    pub adoption_margin: f64,
    /// Dimensions to search.
    pub dims: [Option<ParamDim>; 3],
    /// Candidate proposal strategy.
    pub strategy: SearchStrategy,
}

impl LingXiConfig {
    /// HYB deployment: tune β only (the §5.3 configuration).
    pub fn for_hyb() -> Self {
        Self {
            trigger_stalls: 2,
            max_trials: 8,
            mc: McConfig::default(),
            prune_sigma: 3.0,
            adoption_margin: 0.004,
            dims: [Some(ParamDim::Beta), None, None],
            strategy: SearchStrategy::Bayesian,
        }
    }

    /// Explicit-objective ABRs (RobustMPC / Pensieve): tune stall + switch
    /// weights (the §5.2 configuration).
    pub fn for_qoe_abr() -> Self {
        Self {
            trigger_stalls: 2,
            max_trials: 8,
            mc: McConfig::default(),
            prune_sigma: 3.0,
            adoption_margin: 0.004,
            dims: [Some(ParamDim::Stall), Some(ParamDim::Switch), None],
            strategy: SearchStrategy::Bayesian,
        }
    }

    /// Active search dimensions.
    pub fn active_dims(&self) -> Vec<ParamDim> {
        self.dims.iter().flatten().copied().collect()
    }

    /// Validate configuration.
    pub fn validate(&self) -> Result<()> {
        if self.trigger_stalls == 0 {
            return Err(CoreError::InvalidConfig(
                "trigger threshold must be positive".into(),
            ));
        }
        if self.max_trials == 0 {
            return Err(CoreError::InvalidConfig("need at least one trial".into()));
        }
        match &self.strategy {
            SearchStrategy::Bayesian => {
                if self.active_dims().is_empty() {
                    return Err(CoreError::InvalidConfig(
                        "need at least one search dimension".into(),
                    ));
                }
            }
            SearchStrategy::FixedCandidates(cands) => {
                if cands.is_empty() {
                    return Err(CoreError::InvalidConfig(
                        "fixed candidate list must not be empty".into(),
                    ));
                }
            }
        }
        self.mc.validate()?;
        Ok(())
    }
}

/// Result of one optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizeOutcome {
    /// The parameters deployed.
    pub params: QoeParams,
    /// Predicted exit rate at those parameters.
    pub predicted_exit_rate: f64,
    /// Trials actually evaluated.
    pub trials: usize,
    /// Trials cut short by the early-termination prune.
    pub pruned_trials: usize,
}

/// The per-user LingXi controller.
pub struct LingXiController {
    config: LingXiConfig,
    /// Long-term user state (persisted across sessions).
    tracker: UserStateTracker,
    /// Best known parameters (warm start for the next trigger).
    best_params: QoeParams,
    /// Stalls since the last optimization.
    stalls_since_opt: usize,
    /// Total optimizations run (diagnostics).
    optimizations: usize,
    /// Total optimizations skipped by the pre-playback prune.
    prunes: usize,
}

impl LingXiController {
    /// New controller starting from default parameters.
    pub fn new(config: LingXiConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tracker: UserStateTracker::new(),
            best_params: QoeParams::default(),
            stalls_since_opt: 0,
            optimizations: 0,
            prunes: 0,
        })
    }

    /// Restore a controller from persisted long-term state.
    pub fn with_state(
        config: LingXiConfig,
        tracker: UserStateTracker,
        params: QoeParams,
    ) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tracker,
            best_params: params,
            stalls_since_opt: 0,
            optimizations: 0,
            prunes: 0,
        })
    }

    /// Current best parameters.
    pub fn params(&self) -> QoeParams {
        self.best_params
    }

    /// The long-term user-state tracker (for persistence).
    pub fn tracker(&self) -> &UserStateTracker {
        &self.tracker
    }

    /// Count of optimizations run so far.
    pub fn optimizations(&self) -> usize {
        self.optimizations
    }

    /// Count of pre-playback prunes.
    pub fn prunes(&self) -> usize {
        self.prunes
    }

    /// Stalls accumulated toward the trigger.
    pub fn pending_stalls(&self) -> usize {
        self.stalls_since_opt
    }

    /// Feed one live segment (Algorithm 1 line 5: state updates).
    pub fn observe_segment(&mut self, record: &SegmentRecord, segment_duration: f64) {
        self.tracker.push_segment(
            record.bitrate_kbps,
            record.throughput_kbps,
            segment_duration,
        );
        if record.stall_time > 0.0 {
            self.tracker.push_stall(record.stall_time);
            self.stalls_since_opt += 1;
        }
    }

    /// Feed a user exit (updates the stall→exit engagement dimension).
    pub fn observe_exit(&mut self, after_stall: bool) {
        if after_stall {
            self.tracker.push_stall_exit();
        }
    }

    /// Whether the trigger condition holds (`stall_count > η`).
    pub fn triggered(&self) -> bool {
        self.stalls_since_opt >= self.config.trigger_stalls
    }

    /// The pre-playback prune (§4): skip optimization when the bandwidth
    /// lower envelope clears the top bitrate — stalls are then negligible
    /// and personalization has nothing to gain.
    pub fn prunable(&self, env: &PlayerEnv, ladder: &BitrateLadder) -> bool {
        match env.bandwidth_model() {
            Some(model) => model.lower_envelope(self.config.prune_sigma) > ladder.max_bitrate(),
            None => false,
        }
    }

    /// Run one full optimization pass (Algorithm 1 lines 7–20) and deploy
    /// the winner to `abr`. Returns `None` when the trigger hasn't fired
    /// or the pre-playback prune removed the work.
    pub fn maybe_optimize<R: Rng + ?Sized>(
        &mut self,
        abr: &mut dyn Abr,
        env: &PlayerEnv,
        ladder: &BitrateLadder,
        predictor: &mut dyn RolloutPredictor,
        rng: &mut R,
    ) -> Result<Option<OptimizeOutcome>> {
        self.maybe_optimize_in(abr, env, ladder, predictor, &mut McScratch::new(), rng)
    }

    /// [`LingXiController::maybe_optimize`] with caller-owned Monte-Carlo
    /// scratch, so fleet workers amortize rollout allocations across every
    /// session they run. A fresh scratch reproduces `maybe_optimize`
    /// exactly.
    pub fn maybe_optimize_in<R: Rng + ?Sized>(
        &mut self,
        abr: &mut dyn Abr,
        env: &PlayerEnv,
        ladder: &BitrateLadder,
        predictor: &mut dyn RolloutPredictor,
        scratch: &mut McScratch,
        rng: &mut R,
    ) -> Result<Option<OptimizeOutcome>> {
        if !self.triggered() {
            return Ok(None);
        }
        if self.prunable(env, ladder) {
            self.prunes += 1;
            self.stalls_since_opt = 0;
            return Ok(None);
        }
        let bandwidth = match env.bandwidth_model() {
            Some(b) if b.mu > 0.0 => b,
            // No observations yet: nothing to simulate against.
            _ => return Ok(None),
        };

        // Evaluate the incumbent first: challengers must beat it by the
        // adoption margin, so flat objectives keep the current parameters.
        let incumbent_eval = evaluate_parameters_in(
            abr,
            self.best_params,
            bandwidth,
            &self.tracker,
            env,
            ladder,
            predictor,
            &self.config.mc,
            None,
            scratch,
            rng,
        )?;
        let incumbent_rate = incumbent_eval.exit_rate;
        let mut best_rate = incumbent_rate;
        let mut best_params = self.best_params;
        let mut pruned_trials = 0usize;
        let mut trials = 1usize;
        let margin = self.config.adoption_margin;
        match self.config.strategy.clone() {
            SearchStrategy::Bayesian => {
                let dims = self.config.active_dims();
                let mut optimizer = ObOptimizer::new(ObserverConfig::for_dim(dims.len()))
                    .map_err(|e| CoreError::Subsystem(e.to_string()))?;
                // Warm start from the current best (OBO.init(x*, ...)).
                let warm: Vec<f64> = dims.iter().map(|d| d.get_unit(&self.best_params)).collect();
                optimizer
                    .init_with(&warm)
                    .map_err(|e| CoreError::Subsystem(e.to_string()))?;
                for _ in 0..self.config.max_trials {
                    let xu = optimizer.next_candidate(rng);
                    let mut candidate = self.best_params;
                    for (d, &v) in dims.iter().zip(&xu) {
                        d.set_unit(&mut candidate, v);
                    }
                    let prune = best_rate.is_finite().then_some(best_rate);
                    let eval = evaluate_parameters_in(
                        abr,
                        candidate,
                        bandwidth,
                        &self.tracker,
                        env,
                        ladder,
                        predictor,
                        &self.config.mc,
                        prune,
                        scratch,
                        rng,
                    )?;
                    trials += 1;
                    if eval.pruned {
                        pruned_trials += 1;
                    } else {
                        optimizer
                            .update(xu, eval.exit_rate)
                            .map_err(|e| CoreError::Subsystem(e.to_string()))?;
                    }
                    if eval.exit_rate < best_rate - margin {
                        best_rate = eval.exit_rate;
                        best_params = candidate;
                    }
                }
            }
            SearchStrategy::FixedCandidates(candidates) => {
                // L(F): score every fixed candidate, capped by max_trials.
                for candidate in candidates.into_iter().take(self.config.max_trials) {
                    let prune = best_rate.is_finite().then_some(best_rate);
                    let eval = evaluate_parameters_in(
                        abr,
                        candidate,
                        bandwidth,
                        &self.tracker,
                        env,
                        ladder,
                        predictor,
                        &self.config.mc,
                        prune,
                        scratch,
                        rng,
                    )?;
                    trials += 1;
                    if eval.pruned {
                        pruned_trials += 1;
                    }
                    if eval.exit_rate < best_rate - margin {
                        best_rate = eval.exit_rate;
                        best_params = candidate;
                    }
                }
            }
        }

        // Deploy (ABR.update(x*)) and reset the trigger accumulator.
        self.best_params = best_params;
        abr.set_params(best_params);
        self.stalls_since_opt = 0;
        self.optimizations += 1;
        Ok(Some(OptimizeOutcome {
            params: best_params,
            predicted_exit_rate: best_rate,
            trials,
            pruned_trials,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{ConstantPredictor, ProfilePredictor};
    use lingxi_abr::Hyb;
    use lingxi_player::PlayerConfig;
    use lingxi_user::{SensitivityKind, StallProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stalled_record(stall: f64) -> SegmentRecord {
        SegmentRecord {
            index: 0,
            level: 1,
            bitrate_kbps: 800.0,
            size_kbits: 1600.0,
            throughput_kbps: 700.0,
            download_time: 2.3,
            stall_time: stall,
            buffer_after: 2.0,
            switched_from: Some(1),
        }
    }

    fn env_with_bandwidth(kbps: f64, n: usize) -> PlayerEnv {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..n {
            env.step(kbps * 0.1, 0, kbps, 2.0, &mut rng).unwrap();
        }
        env
    }

    #[test]
    fn trigger_counts_stalls() {
        let mut c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        assert!(!c.triggered());
        c.observe_segment(&stalled_record(1.0), 2.0);
        assert!(!c.triggered());
        c.observe_segment(&stalled_record(0.5), 2.0);
        assert!(c.triggered());
        assert_eq!(c.pending_stalls(), 2);
        // Stall-free segments don't move the trigger.
        let mut c2 = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        c2.observe_segment(&stalled_record(0.0), 2.0);
        assert_eq!(c2.pending_stalls(), 0);
    }

    #[test]
    fn no_optimization_without_trigger() {
        let mut c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let mut abr = Hyb::default_rule();
        let env = env_with_bandwidth(3000.0, 8);
        let ladder = BitrateLadder::default_short_video();
        let mut pred = ConstantPredictor { p: 0.05 };
        let mut rng = StdRng::seed_from_u64(1);
        let out = c
            .maybe_optimize(&mut abr, &env, &ladder, &mut pred, &mut rng)
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn optimization_runs_and_deploys() {
        let mut c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let mut abr = Hyb::default_rule();
        let env = env_with_bandwidth(1200.0, 8);
        let ladder = BitrateLadder::default_short_video();
        let profile = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.35).unwrap();
        let mut pred = ProfilePredictor {
            profile,
            base: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(2);
        c.observe_segment(&stalled_record(1.5), 2.0);
        c.observe_segment(&stalled_record(2.0), 2.0);
        let out = c
            .maybe_optimize(&mut abr, &env, &ladder, &mut pred, &mut rng)
            .unwrap()
            .expect("trigger fired");
        assert!(out.trials > 0);
        assert!(out.predicted_exit_rate.is_finite());
        assert_eq!(c.params(), out.params);
        assert_eq!(lingxi_abr::Abr::params(&abr), out.params);
        assert_eq!(c.pending_stalls(), 0);
        assert_eq!(c.optimizations(), 1);
    }

    #[test]
    fn sensitive_user_on_weak_link_gets_lower_beta() {
        // A stall-sensitive user on a weak link should end with a β no
        // higher than an insensitive user's on the same link (Fig. 14's
        // negative correlation, in expectation).
        let ladder = BitrateLadder::default_short_video();
        let env = env_with_bandwidth(900.0, 8);
        let run = |profile: StallProfile, seed: u64| {
            let mut c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
            let mut abr = Hyb::default_rule();
            let mut pred = ProfilePredictor {
                profile,
                base: 0.01,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            c.observe_segment(&stalled_record(2.0), 2.0);
            c.observe_segment(&stalled_record(2.0), 2.0);
            c.maybe_optimize(&mut abr, &env, &ladder, &mut pred, &mut rng)
                .unwrap()
                .unwrap()
                .params
                .beta
        };
        let sensitive = StallProfile::new(SensitivityKind::Sensitive, 1.0, 0.4).unwrap();
        let tolerant = StallProfile::new(SensitivityKind::Insensitive, 8.0, 0.1).unwrap();
        let mut sens_total = 0.0;
        let mut tol_total = 0.0;
        for seed in 0..6 {
            sens_total += run(sensitive, seed);
            tol_total += run(tolerant, seed + 50);
        }
        assert!(
            sens_total <= tol_total + 0.3,
            "sensitive {sens_total} vs tolerant {tol_total}"
        );
    }

    #[test]
    fn preplayback_prune_skips_rich_links() {
        let mut c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let ladder = BitrateLadder::default_short_video();
        // 40 Mbps stable: μ − 3σ ≫ 4300 kbps.
        let env = env_with_bandwidth(40_000.0, 8);
        assert!(c.prunable(&env, &ladder));
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: 0.05 };
        let mut rng = StdRng::seed_from_u64(3);
        c.observe_segment(&stalled_record(1.0), 2.0);
        c.observe_segment(&stalled_record(1.0), 2.0);
        let out = c
            .maybe_optimize(&mut abr, &env, &ladder, &mut pred, &mut rng)
            .unwrap();
        assert!(out.is_none());
        assert_eq!(c.prunes(), 1);
        assert_eq!(c.pending_stalls(), 0, "prune still clears the trigger");
    }

    #[test]
    fn weak_links_not_prunable() {
        let c = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
        let ladder = BitrateLadder::default_short_video();
        let env = env_with_bandwidth(1500.0, 8);
        assert!(!c.prunable(&env, &ladder));
        // Cold start (no bandwidth model) is never prunable.
        let cold = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        assert!(!c.prunable(&cold, &ladder));
    }

    #[test]
    fn config_validation() {
        let mut cfg = LingXiConfig::for_hyb();
        cfg.trigger_stalls = 0;
        assert!(LingXiController::new(cfg).is_err());
        let mut cfg2 = LingXiConfig::for_hyb();
        cfg2.dims = [None, None, None];
        assert!(LingXiController::new(cfg2).is_err());
        assert_eq!(LingXiConfig::for_qoe_abr().active_dims().len(), 2);
    }

    #[test]
    fn state_restoration_preserves_params() {
        let cfg = LingXiConfig::for_hyb();
        let mut tracker = UserStateTracker::new();
        tracker.push_segment(800.0, 1000.0, 2.0);
        let params = QoeParams {
            beta: 0.5,
            ..QoeParams::default()
        };
        let c = LingXiController::with_state(cfg, tracker, params).unwrap();
        assert_eq!(c.params().beta, 0.5);
        assert_eq!(c.tracker().recent_stall_count(), 0);
    }
}
