//! Monte-Carlo parameter evaluation — Algorithm 2 (`EvaluateParameters`).
//!
//! Each of `M` rollouts forks the live player environment and user state,
//! applies the candidate parameters to the ABR, draws per-segment
//! bandwidth from the client's normal model `N(μ_Cpast, σ²_Cpast)` and asks
//! the exit-rate predictor for a per-segment exit probability; a random
//! draw against it ends the rollout. The estimate is
//! `R_exit = exited_count / watched_count` over all samples.
//!
//! The first pruning stage of §4 lives here: when a `prune_threshold`
//! (the minimum exit rate observed across sibling candidates) is given,
//! evaluation terminates early as soon as even the most optimistic
//! completion (every remaining segment watched without exit) could not
//! beat it.

use std::cell::RefCell;

use lingxi_abr::{Abr, AbrContext, QoeParams};
use lingxi_exit::{StateMatrix, UserStateTracker};
use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
use lingxi_net::{BandwidthProcess, ModelProcess};
use lingxi_player::PlayerEnv;
use lingxi_stats::NormalDist;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::predictor::{RolloutContext, RolloutPredictor};
use crate::{CoreError, Result};

/// Floor (kbps) for rollout bandwidth draws: the truncation keeps the
/// normal model's left tail from producing zero or negative rates.
const MIN_ROLLOUT_KBPS: f64 = 50.0;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// Number of rollouts `M`.
    pub samples: usize,
    /// Per-rollout horizon `T_sample` in seconds (§3.2 sets it to the mean
    /// online video length).
    pub t_sample: f64,
    /// Segment duration `L` of the virtual video.
    pub segment_duration: f64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 8,
            t_sample: 48.0,
            segment_duration: 2.0,
        }
    }
}

impl McConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.samples == 0 {
            return Err(CoreError::InvalidConfig("samples must be positive".into()));
        }
        if !(self.t_sample > 0.0) || !(self.segment_duration > 0.0) {
            return Err(CoreError::InvalidConfig(
                "durations must be positive".into(),
            ));
        }
        if self.segment_duration > self.t_sample {
            return Err(CoreError::InvalidConfig(
                "segment duration exceeds rollout horizon".into(),
            ));
        }
        Ok(())
    }

    /// Segments per rollout.
    pub fn segments_per_sample(&self) -> usize {
        (self.t_sample / self.segment_duration).ceil() as usize
    }
}

/// Outcome of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McEvaluation {
    /// Estimated exit rate `exited / watched`.
    pub exit_rate: f64,
    /// Segments watched across all rollouts.
    pub watched: usize,
    /// Exits observed.
    pub exited: usize,
    /// Whether early termination fired.
    pub pruned: bool,
    /// Mean stall seconds per rollout (diagnostic).
    pub mean_stall: f64,
}

/// Reusable scratch space for Monte-Carlo evaluations.
///
/// Each evaluation builds a virtual video (a [`SegmentSizes`] table); a
/// scratch owned by the caller amortizes that allocation across the many
/// evaluations of an optimization pass — and, in the fleet engine, across
/// every session a shard worker runs. A fresh scratch behaves identically
/// to none at all, so results never depend on scratch reuse.
#[derive(Debug, Default)]
pub struct McScratch {
    sizes: Option<SegmentSizes>,
}

impl McScratch {
    /// An empty scratch; buffers are created on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Evaluate candidate `params` by virtual playback (Algorithm 2).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_parameters<R: Rng + ?Sized>(
    abr: &mut dyn Abr,
    params: QoeParams,
    bandwidth: NormalDist,
    user_state: &UserStateTracker,
    env: &PlayerEnv,
    ladder: &BitrateLadder,
    predictor: &mut dyn RolloutPredictor,
    config: &McConfig,
    prune_threshold: Option<f64>,
    rng: &mut R,
) -> Result<McEvaluation> {
    evaluate_parameters_in(
        abr,
        params,
        bandwidth,
        user_state,
        env,
        ladder,
        predictor,
        config,
        prune_threshold,
        &mut McScratch::new(),
        rng,
    )
}

/// [`evaluate_parameters`] with caller-owned scratch buffers — the
/// allocation-amortized variant the fleet hot path uses.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_parameters_in<R: Rng + ?Sized>(
    abr: &mut dyn Abr,
    params: QoeParams,
    bandwidth: NormalDist,
    user_state: &UserStateTracker,
    env: &PlayerEnv,
    ladder: &BitrateLadder,
    predictor: &mut dyn RolloutPredictor,
    config: &McConfig,
    prune_threshold: Option<f64>,
    scratch: &mut McScratch,
    rng: &mut R,
) -> Result<McEvaluation> {
    config.validate()?;
    if !(bandwidth.mu > 0.0) {
        return Err(CoreError::InvalidConfig(
            "bandwidth model mean must be positive".into(),
        ));
    }
    let n_segments = config.segments_per_sample();
    // Virtual video: CBR segments at the ladder's nominal rates. CBR draws
    // nothing from `rng`, so refilling a reused table and generating a
    // fresh one are indistinguishable.
    let sizes: &SegmentSizes = match &mut scratch.sizes {
        Some(sizes) => {
            sizes
                .refill(
                    ladder,
                    n_segments,
                    config.segment_duration,
                    &VbrModel::cbr(),
                    rng,
                )
                .map_err(|e| CoreError::Subsystem(e.to_string()))?;
            sizes
        }
        slot @ None => slot.insert(
            SegmentSizes::generate(
                ladder,
                n_segments,
                config.segment_duration,
                &VbrModel::cbr(),
                rng,
            )
            .map_err(|e| CoreError::Subsystem(e.to_string()))?,
        ),
    };

    abr.set_params(params);
    let mut watched = 0usize;
    let mut exited = 0usize;
    let mut total_stall = 0.0;
    let mut pruned = false;

    // The client-side bandwidth model as a bandwidth process: rollouts
    // stream over the same `BandwidthProcess` trait as live sessions, so
    // the simulator cannot drift from the player's download semantics. The
    // process borrows this evaluation's RNG, keeping every draw (bandwidth,
    // RTT, exit) in one deterministic stream.
    let rng = RefCell::new(rng);
    let process = ModelProcess::new(bandwidth, MIN_ROLLOUT_KBPS, &rng);
    // Predictors that only read the short-term context get a zero matrix;
    // building the real one is a per-segment copy of the tracker rows. The
    // tracker fork itself is dead weight in that case too — it is only
    // ever read back through `matrix()` and is dropped when the rollout
    // ends — so the fork and its per-segment pushes are skipped as well.
    let wants_state = predictor.wants_state();
    let zero_matrix = StateMatrix::zeros();

    // One scratch fork, re-seeded per rollout (`clone_from` keeps the
    // history buffers' allocations alive across rollouts).
    let mut env_sim = env.clone();
    'samples: for m in 0..config.samples {
        // Fork the live state (S_sim ← S, E_sim ← E_player).
        if m > 0 {
            env_sim.clone_from(env);
        }
        let mut tracker = wants_state.then(|| user_state.clone());
        abr.reset();
        let mut t_sim = 0.0;
        let mut k = 0usize;
        let mut session_stall = 0.0;
        let mut session_events = 0usize;
        while t_sim < config.t_sample {
            let ctx = AbrContext {
                ladder,
                sizes,
                next_segment: k.min(n_segments - 1),
                segment_duration: config.segment_duration,
            };
            let level = abr.select(&env_sim, &ctx).min(ladder.top_level());
            let size = sizes
                .size_kbits(k.min(n_segments - 1), level)
                .map_err(|e| CoreError::Subsystem(e.to_string()))?;
            let c_k = process.download(t_sim, size).kbps;
            let prev = env_sim.last_level();
            let outcome = env_sim
                .step(
                    size,
                    level,
                    c_k,
                    config.segment_duration,
                    &mut **rng.borrow_mut(),
                )
                .map_err(|e| CoreError::Subsystem(e.to_string()))?;
            total_stall += outcome.stall_time;

            let stalled = outcome.stall_time > 0.0;
            if stalled {
                session_stall += outcome.stall_time;
                session_events += 1;
            }
            // Update the user-state matrix (skipped entirely when the
            // predictor never reads it).
            if let Some(tracker) = tracker.as_mut() {
                let bitrate = ladder
                    .bitrate(level)
                    .map_err(|e| CoreError::Subsystem(e.to_string()))?;
                tracker.push_segment(bitrate, outcome.throughput_kbps, config.segment_duration);
                if stalled {
                    tracker.push_stall(outcome.stall_time);
                }
            }
            let tier = ladder
                .tier(level)
                .map_err(|e| CoreError::Subsystem(e.to_string()))?;
            let gran = match prev {
                Some(p) => level as i64 - p as i64,
                None => 0,
            };
            let rollout_ctx = RolloutContext {
                stalled,
                tier,
                switch_granularity: gran,
                session_stall,
                session_stall_events: session_events,
                playback_time: t_sim,
            };
            let matrix = match tracker.as_ref() {
                Some(tracker) => tracker.matrix(),
                None => zero_matrix,
            };
            let p_exit = predictor.predict(&matrix, &rollout_ctx).clamp(0.0, 1.0);
            watched += 1;
            t_sim += config.segment_duration;
            k += 1;
            if rng.borrow_mut().gen::<f64>() < p_exit {
                exited += 1;
                if let Some(tracker) = tracker.as_mut().filter(|_| stalled) {
                    tracker.push_stall_exit();
                }
                break;
            }
        }

        // Early-termination pruning (§4): optimistic bound on the final
        // exit rate assuming every remaining rollout watches its full
        // horizon without a single exit.
        if let Some(threshold) = prune_threshold {
            let remaining = (config.samples - m - 1) * n_segments;
            let optimistic = exited as f64 / (watched + remaining).max(1) as f64;
            if optimistic >= threshold {
                pruned = true;
                break 'samples;
            }
        }
    }

    Ok(McEvaluation {
        exit_rate: if watched == 0 {
            1.0
        } else {
            exited as f64 / watched as f64
        },
        watched,
        exited,
        pruned,
        mean_stall: total_stall / config.samples as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ConstantPredictor;
    use lingxi_abr::Hyb;
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, PlayerEnv, UserStateTracker) {
        (
            BitrateLadder::default_short_video(),
            PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap(),
            UserStateTracker::new(),
        )
    }

    #[test]
    fn zero_exit_predictor_watches_everything() {
        let (ladder, env, tracker) = fixture();
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = McConfig::default();
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(8000.0, 1000.0).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(eval.exit_rate, 0.0);
        assert_eq!(eval.exited, 0);
        assert_eq!(eval.watched, cfg.samples * cfg.segments_per_sample());
        assert!(!eval.pruned);
    }

    #[test]
    fn certain_exit_predictor_exits_immediately() {
        let (ladder, env, tracker) = fixture();
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: 1.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = McConfig::default();
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(8000.0, 1000.0).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(eval.exit_rate, 1.0);
        assert_eq!(eval.watched, cfg.samples); // one segment per rollout
    }

    #[test]
    fn estimate_tracks_constant_probability() {
        let (ladder, env, tracker) = fixture();
        let mut abr = Hyb::default_rule();
        let p = 0.08;
        let mut pred = ConstantPredictor { p };
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = McConfig {
            samples: 200,
            ..McConfig::default()
        };
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(8000.0, 1000.0).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            None,
            &mut rng,
        )
        .unwrap();
        // Per-segment exit probability p → exit rate ≈ p.
        assert!((eval.exit_rate - p).abs() < 0.03, "rate {}", eval.exit_rate);
    }

    #[test]
    fn pruning_short_circuits_hopeless_candidates() {
        let (ladder, env, tracker) = fixture();
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: 0.5 };
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = McConfig {
            samples: 64,
            ..McConfig::default()
        };
        // Sibling candidate achieved 0.01: this one can't win.
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(8000.0, 1000.0).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            Some(0.01),
            &mut rng,
        )
        .unwrap();
        assert!(eval.pruned);
        assert!(eval.watched < cfg.samples * cfg.segments_per_sample() / 2);
    }

    #[test]
    fn low_bandwidth_rollouts_stall() {
        let (ladder, env, tracker) = fixture();
        let mut abr = Hyb::default_rule();
        let mut pred = ConstantPredictor { p: 0.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = McConfig::default();
        let eval = evaluate_parameters(
            &mut abr,
            QoeParams::default(),
            NormalDist::new(300.0, 50.0).unwrap(),
            &tracker,
            &env,
            &ladder,
            &mut pred,
            &cfg,
            None,
            &mut rng,
        )
        .unwrap();
        assert!(
            eval.mean_stall > 0.0,
            "300 kbps below the ladder floor must stall"
        );
    }

    #[test]
    fn config_validation() {
        let bad = McConfig {
            samples: 0,
            ..McConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad2 = McConfig {
            segment_duration: 100.0,
            t_sample: 10.0,
            samples: 4,
        };
        assert!(bad2.validate().is_err());
        assert_eq!(McConfig::default().segments_per_sample(), 24);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let (ladder, env, tracker) = fixture();
        let eval_with = |scratch: &mut McScratch| {
            let mut abr = Hyb::default_rule();
            let mut pred = ConstantPredictor { p: 0.05 };
            let mut rng = StdRng::seed_from_u64(11);
            evaluate_parameters_in(
                &mut abr,
                QoeParams::default(),
                NormalDist::new(4000.0, 1500.0).unwrap(),
                &tracker,
                &env,
                &ladder,
                &mut pred,
                &McConfig::default(),
                None,
                scratch,
                &mut rng,
            )
            .unwrap()
        };
        let mut scratch = McScratch::new();
        let first = eval_with(&mut scratch);
        // Reusing the warm scratch must not change anything.
        let second = eval_with(&mut scratch);
        assert_eq!(first, second);
    }

    #[test]
    fn deterministic_given_seed() {
        let (ladder, env, tracker) = fixture();
        let run = |seed: u64| {
            let mut abr = Hyb::default_rule();
            let mut pred = ConstantPredictor { p: 0.05 };
            let mut rng = StdRng::seed_from_u64(seed);
            evaluate_parameters(
                &mut abr,
                QoeParams::default(),
                NormalDist::new(5000.0, 2000.0).unwrap(),
                &tracker,
                &env,
                &ladder,
                &mut pred,
                &McConfig::default(),
                None,
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
