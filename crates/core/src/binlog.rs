//! Sharded append-only binary state log with compacting snapshots — the
//! fleet-scale persistence backend that retires file-per-user JSON.
//!
//! The legacy [`StateStore`] writes one `user_<id>.json` per churning
//! user, so a fleet flush costs O(users) file creations plus a JSON serde
//! round-trip each. [`BinaryStateLog`] replaces that with per-shard
//! append-only log files and a compact hand-rolled binary record encoding
//! (length-prefixed, CRC-32-checksummed, schema-versioned): a flush is a
//! handful of sequential buffered writes however many users churned.
//!
//! On-disk layout of a log directory:
//!
//! ```text
//! dir/
//!   manifest.json   # { schema, shards } — written once at creation
//!   shard_<k>.log   # header + records appended since the last snapshot
//!   shard_<k>.snap  # header + records (ascending user id) + index + footer
//! ```
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! payload: u8 op (1 = put, 2 = delete) | u64 user_id | [state if put]
//! ```
//!
//! The snapshot's sorted `(user_id, offset, len)` index block is binary
//! searched *on disk*, so point loads of cold users cost O(log n) reads
//! and the resident footprint stays O(tail) — only users written since
//! the last snapshot hold an in-memory index entry.
//!
//! **Recovery invariant:** the store's contents are a pure function of
//! (snapshot, log tail). Snapshots are written to a temp file and
//! renamed, so a crash never exposes a partial snapshot; a crash between
//! the snapshot rename and the log truncation merely replays records the
//! snapshot already contains (replay applies records in order, so it
//! converges to the same latest-value-per-user state); and a torn or
//! truncated final log record fails its length/CRC check, is reported as
//! a recovery warning, and the log is truncated back to the last whole
//! record. Appends are acknowledged durable only by [`flush`]
//! ([`StateBackend::flush`]) — dropping the log loses buffered appends,
//! which is exactly the crash model the property tests exercise.
//!
//! [`flush`]: StateBackend::flush

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::state::{LongTermState, StateBackend, StateScan, StateStore};
use crate::{CoreError, Result};
use lingxi_exit::{TrackerParts, UserStateTracker};

/// Version of the record encoding and file layout (`u16` in file headers).
pub const BINLOG_FORMAT_VERSION: u16 = 1;

/// Version of the `manifest.json` schema.
pub const BINLOG_MANIFEST_SCHEMA: u32 = 1;

const MAGIC: &[u8; 4] = b"LXSL";
const INDEX_MAGIC: &[u8; 4] = b"LXIX";
const KIND_LOG: u16 = 1;
const KIND_SNAP: u16 = 2;
const HEADER_LEN: u64 = 16;
const FRAME_OVERHEAD: usize = 8; // u32 len + u32 crc
const FOOTER_LEN: u64 = 24; // u64 index_off + u64 count + u32 crc + magic
const INDEX_ENTRY_LEN: usize = 20; // u64 user_id + u64 offset + u32 len
const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Sizing and policy of a [`BinaryStateLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinLogConfig {
    /// Number of log shards (files). User ids hash onto shards; any count
    /// works functionally, more shards mean smaller per-file compactions.
    pub shards: usize,
    /// Appends gather in a per-shard memory buffer of this many bytes
    /// before being written to the file (a [`StateBackend::flush`] always
    /// drains it).
    pub buffer_bytes: usize,
    /// When a shard's log file exceeds this many bytes at flush time, the
    /// shard is compacted into its snapshot automatically; `0` compacts
    /// only on explicit [`StateBackend::checkpoint`] calls.
    pub auto_compact_bytes: u64,
}

impl Default for BinLogConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            buffer_bytes: 256 * 1024,
            auto_compact_bytes: 0,
        }
    }
}

impl BinLogConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 || self.shards > u32::MAX as usize {
            return Err(CoreError::InvalidConfig(
                "binary log needs 1..=u32::MAX shards".into(),
            ));
        }
        if self.buffer_bytes == 0 {
            return Err(CoreError::InvalidConfig(
                "binary log buffer must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// `manifest.json`: the layout facts recovery must not guess.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Manifest {
    schema: u32,
    format: u16,
    shards: usize,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, hand-rolled — no vendored dep carries
// one and the determinism contract forbids reaching for ambient hashers.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) -> Result<()> {
    let n = u8::try_from(v.len()).map_err(|_| {
        CoreError::Persistence(format!("tracker window of {} exceeds u8 length", v.len()))
    })?;
    out.push(n);
    for &x in v {
        put_f64(out, x);
    }
    Ok(())
}

/// A bounds-checked little-endian reader over one record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CoreError::Persistence("record payload truncated".into()));
        };
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.u8()? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn done(&self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(CoreError::Persistence(format!(
                "record payload has {} trailing bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Encode one state as a put-record payload (op + user id + state).
fn encode_put_payload(state: &LongTermState, out: &mut Vec<u8>) -> Result<()> {
    out.push(OP_PUT);
    put_u64(out, state.user_id);
    let t = state.tracker.to_parts();
    put_f64_vec(out, &t.bitrates)?;
    put_f64_vec(out, &t.throughputs)?;
    put_f64_vec(out, &t.stall_times)?;
    put_f64_vec(out, &t.stall_intervals)?;
    put_f64_vec(out, &t.stall_exit_intervals)?;
    match t.last_stall_at {
        Some(at) => {
            out.push(1);
            put_f64(out, at);
        }
        None => out.push(0),
    }
    put_f64(out, t.clock);
    put_f64(out, state.params.stall_weight);
    put_f64(out, state.params.switch_weight);
    put_f64(out, state.params.beta);
    put_u64(out, state.optimizations as u64);
    Ok(())
}

/// Decode a put-record payload back into the state it encoded,
/// bit-exactly (every `f64` round-trips through its raw bits).
fn decode_put_payload(payload: &[u8]) -> Result<LongTermState> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    if op != OP_PUT {
        return Err(CoreError::Persistence(format!(
            "expected put record, found op {op}"
        )));
    }
    let user_id = c.u64()?;
    let parts = TrackerParts {
        bitrates: c.f64_vec()?,
        throughputs: c.f64_vec()?,
        stall_times: c.f64_vec()?,
        stall_intervals: c.f64_vec()?,
        stall_exit_intervals: c.f64_vec()?,
        last_stall_at: match c.u8()? {
            0 => None,
            1 => Some(c.f64()?),
            t => {
                return Err(CoreError::Persistence(format!(
                    "bad option tag {t} in record"
                )))
            }
        },
        clock: c.f64()?,
    };
    let mut state = LongTermState::new(user_id);
    state.tracker = UserStateTracker::from_parts(parts);
    state.params.stall_weight = c.f64()?;
    state.params.switch_weight = c.f64()?;
    state.params.beta = c.f64()?;
    state.optimizations = c.u64()? as usize;
    c.done()?;
    Ok(state)
}

/// Frame a payload (length prefix + CRC) onto `out`; returns frame length.
fn append_frame(out: &mut Vec<u8>, payload: &[u8]) -> u32 {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
    (payload.len() + FRAME_OVERHEAD) as u32
}

fn file_header(kind: u16, shard: u32, shard_count: u32) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(MAGIC);
    h[4..6].copy_from_slice(&BINLOG_FORMAT_VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&kind.to_le_bytes());
    h[8..12].copy_from_slice(&shard.to_le_bytes());
    h[12..16].copy_from_slice(&shard_count.to_le_bytes());
    h
}

fn check_header(h: &[u8], kind: u16, path: &Path) -> Result<()> {
    let fail = |why: &str| {
        Err(CoreError::Persistence(format!(
            "{path:?}: not a valid state-log file ({why})"
        )))
    };
    if h.len() < HEADER_LEN as usize || &h[0..4] != MAGIC {
        return fail("bad magic");
    }
    let version = u16::from_le_bytes(h[4..6].try_into().expect("2"));
    if version > BINLOG_FORMAT_VERSION {
        return fail(&format!("format v{version} is newer than supported"));
    }
    if u16::from_le_bytes(h[6..8].try_into().expect("2")) != kind {
        return fail("wrong file kind");
    }
    Ok(())
}

fn perr(path: &Path, what: &str, e: std::io::Error) -> CoreError {
    CoreError::Persistence(format!("{what} {path:?}: {e}"))
}

// ---------------------------------------------------------------------------
// Shard state
// ---------------------------------------------------------------------------

/// Where a shard's live value for a user is, in log-file coordinates
/// (offsets may point into the not-yet-written append buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailLoc {
    Put { off: u64, len: u32 },
    Tombstone,
}

#[derive(Debug)]
struct Snap {
    file: File,
    index_off: u64,
    count: u64,
}

#[derive(Debug)]
struct Shard {
    log_path: PathBuf,
    snap_path: PathBuf,
    /// Append handle, positioned at the end of the durable log.
    log_write: File,
    /// Seeking read handle over the same file.
    log_read: File,
    /// Bytes of log durable on disk (including the header).
    committed: u64,
    /// Pending appends; log coordinates `committed..committed+buf.len()`.
    buf: Vec<u8>,
    /// Users written since the last snapshot → latest record location.
    tail: BTreeMap<u64, TailLoc>,
    snap: Option<Snap>,
}

impl Shard {
    /// Drain the append buffer to the file.
    fn write_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.log_write
            .write_all(&self.buf)
            .map_err(|e| perr(&self.log_path, "append to", e))?;
        self.committed += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Read one whole frame (header + payload) at log offset `off`.
    fn read_frame(&mut self, off: u64, len: u32) -> Result<Vec<u8>> {
        let len = len as usize;
        if off >= self.committed {
            let start = (off - self.committed) as usize;
            let end = start.checked_add(len).filter(|&e| e <= self.buf.len());
            let Some(end) = end else {
                return Err(CoreError::Persistence(
                    "buffered record out of range".into(),
                ));
            };
            return Ok(self.buf[start..end].to_vec());
        }
        let mut bytes = vec![0u8; len];
        self.log_read
            .seek(SeekFrom::Start(off))
            .and_then(|_| self.log_read.read_exact(&mut bytes))
            .map_err(|e| perr(&self.log_path, "read record from", e))?;
        Ok(bytes)
    }

    /// Decode the payload of a frame previously located by the tail index.
    fn decode_frame(frame: &[u8]) -> Result<LongTermState> {
        if frame.len() < FRAME_OVERHEAD {
            return Err(CoreError::Persistence("frame shorter than header".into()));
        }
        let payload = &frame[FRAME_OVERHEAD..];
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4"));
        if crc32(payload) != crc {
            return Err(CoreError::Persistence(
                "record checksum mismatch (corrupt log)".into(),
            ));
        }
        decode_put_payload(payload)
    }

    /// Binary-search the on-disk snapshot index for `user_id`.
    fn snap_lookup(&mut self, user_id: u64) -> Result<Option<LongTermState>> {
        let Some(snap) = &mut self.snap else {
            return Ok(None);
        };
        let (mut lo, mut hi) = (0u64, snap.count);
        let mut entry = [0u8; INDEX_ENTRY_LEN];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            snap.file
                .seek(SeekFrom::Start(
                    snap.index_off + mid * INDEX_ENTRY_LEN as u64,
                ))
                .and_then(|_| snap.file.read_exact(&mut entry))
                .map_err(|e| perr(&self.snap_path, "read index of", e))?;
            let id = u64::from_le_bytes(entry[0..8].try_into().expect("8"));
            match id.cmp(&user_id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let off = u64::from_le_bytes(entry[8..16].try_into().expect("8"));
                    let len = u32::from_le_bytes(entry[16..20].try_into().expect("4"));
                    let mut frame = vec![0u8; len as usize];
                    snap.file
                        .seek(SeekFrom::Start(off))
                        .and_then(|_| snap.file.read_exact(&mut frame))
                        .map_err(|e| perr(&self.snap_path, "read record of", e))?;
                    return Shard::decode_frame(&frame).map(Some);
                }
            }
        }
        Ok(None)
    }

    /// All user ids in the snapshot, ascending (reads the index block).
    fn snap_ids(&mut self) -> Result<Vec<(u64, u64, u32)>> {
        let Some(snap) = &mut self.snap else {
            return Ok(Vec::new());
        };
        let mut raw = vec![0u8; snap.count as usize * INDEX_ENTRY_LEN];
        snap.file
            .seek(SeekFrom::Start(snap.index_off))
            .and_then(|_| snap.file.read_exact(&mut raw))
            .map_err(|e| perr(&self.snap_path, "read index of", e))?;
        Ok(raw
            .chunks_exact(INDEX_ENTRY_LEN)
            .map(|e| {
                (
                    u64::from_le_bytes(e[0..8].try_into().expect("8")),
                    u64::from_le_bytes(e[8..16].try_into().expect("8")),
                    u32::from_le_bytes(e[16..20].try_into().expect("4")),
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// Sharded append-only binary state log with compacting snapshots.
///
/// Implements [`StateBackend`]; see the module docs for the on-disk
/// format and the recovery invariant. All methods take `&self` (per-shard
/// `parking_lot` mutexes), so one log is shared by all fleet workers.
#[derive(Debug)]
pub struct BinaryStateLog {
    dir: PathBuf,
    config: BinLogConfig,
    shards: Vec<Mutex<Shard>>,
    /// Warnings produced by crash recovery at open (torn/truncated tail
    /// records), surfaced through [`StateBackend::scan`].
    recovery_warnings: Vec<String>,
}

impl BinaryStateLog {
    /// Open (creating if absent) a log rooted at `dir`.
    ///
    /// Reopening an existing directory recovers its contents: each
    /// shard's snapshot is validated and its log tail replayed; a torn or
    /// truncated final record is truncated away with a warning (see
    /// [`StateBackend::scan`]). The shard count is fixed at creation by
    /// `manifest.json` — reopening with a different `config.shards`
    /// adopts the manifest's count.
    pub fn open<P: AsRef<Path>>(dir: P, config: BinLogConfig) -> Result<Self> {
        config.validate()?;
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| perr(&dir, "create", e))?;

        // The manifest pins the shard layout; recovery must not guess it.
        let manifest_path = dir.join("manifest.json");
        let mut config = config;
        match std::fs::read_to_string(&manifest_path) {
            Ok(raw) => {
                let m: Manifest = serde_json::from_str(&raw)
                    .map_err(|e| CoreError::Persistence(format!("parse {manifest_path:?}: {e}")))?;
                if m.schema != BINLOG_MANIFEST_SCHEMA || m.format > BINLOG_FORMAT_VERSION {
                    return Err(CoreError::Persistence(format!(
                        "{manifest_path:?}: schema v{}/format v{} newer than supported",
                        m.schema, m.format
                    )));
                }
                config.shards = m.shards;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let m = Manifest {
                    schema: BINLOG_MANIFEST_SCHEMA,
                    format: BINLOG_FORMAT_VERSION,
                    shards: config.shards,
                };
                let json = serde_json::to_string(&m)
                    .map_err(|e| CoreError::Persistence(format!("serialize manifest: {e}")))?;
                let tmp = dir.join("manifest.json.tmp");
                std::fs::write(&tmp, json).map_err(|e| perr(&tmp, "write", e))?;
                std::fs::rename(&tmp, &manifest_path)
                    .map_err(|e| perr(&manifest_path, "rename to", e))?;
            }
            Err(e) => return Err(perr(&manifest_path, "read", e)),
        }

        let mut shards = Vec::with_capacity(config.shards);
        let mut recovery_warnings = Vec::new();
        for k in 0..config.shards {
            let shard = Self::open_shard(&dir, k, config.shards, &mut recovery_warnings)?;
            shards.push(Mutex::new(shard));
        }
        recovery_warnings.sort_unstable();
        Ok(Self {
            dir,
            config,
            shards,
            recovery_warnings,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The effective configuration (shard count may come from the
    /// on-disk manifest rather than the one passed to [`open`]).
    ///
    /// [`open`]: BinaryStateLog::open
    pub fn config(&self) -> &BinLogConfig {
        &self.config
    }

    /// Warnings produced by crash recovery at open time.
    pub fn recovery_warnings(&self) -> &[String] {
        &self.recovery_warnings
    }

    fn open_shard(
        dir: &Path,
        k: usize,
        shard_count: usize,
        warnings: &mut Vec<String>,
    ) -> Result<Shard> {
        let log_path = dir.join(format!("shard_{k}.log"));
        let snap_path = dir.join(format!("shard_{k}.snap"));

        let mut log_write = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&log_path)
            .map_err(|e| perr(&log_path, "open", e))?;
        let log_read = File::open(&log_path).map_err(|e| perr(&log_path, "open", e))?;
        let log_len = log_write
            .metadata()
            .map_err(|e| perr(&log_path, "stat", e))?
            .len();
        if log_len == 0 {
            log_write
                .write_all(&file_header(KIND_LOG, k as u32, shard_count as u32))
                .map_err(|e| perr(&log_path, "write header of", e))?;
        } else {
            let mut h = [0u8; HEADER_LEN as usize];
            log_write
                .seek(SeekFrom::Start(0))
                .and_then(|_| log_write.read_exact(&mut h))
                .map_err(|e| perr(&log_path, "read header of", e))?;
            check_header(&h, KIND_LOG, &log_path)?;
        }

        let snap = match File::open(&snap_path) {
            Ok(file) => Some(Self::open_snapshot(file, &snap_path)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(perr(&snap_path, "open", e)),
        };

        let mut shard = Shard {
            log_path,
            snap_path,
            log_write,
            log_read,
            committed: HEADER_LEN,
            buf: Vec::new(),
            tail: BTreeMap::new(),
            snap,
        };
        Self::replay_log(&mut shard, log_len.max(HEADER_LEN), warnings)?;
        Ok(shard)
    }

    /// Validate a snapshot's footer and index checksum.
    fn open_snapshot(mut file: File, path: &Path) -> Result<Snap> {
        let len = file.metadata().map_err(|e| perr(path, "stat", e))?.len();
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(CoreError::Persistence(format!(
                "{path:?}: snapshot shorter than header + footer"
            )));
        }
        let mut h = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut h)
            .map_err(|e| perr(path, "read header of", e))?;
        check_header(&h, KIND_SNAP, path)?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(len - FOOTER_LEN))
            .and_then(|_| file.read_exact(&mut footer))
            .map_err(|e| perr(path, "read footer of", e))?;
        if &footer[20..24] != INDEX_MAGIC {
            return Err(CoreError::Persistence(format!(
                "{path:?}: snapshot footer magic missing"
            )));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().expect("8"));
        let count = u64::from_le_bytes(footer[8..16].try_into().expect("8"));
        let crc = u32::from_le_bytes(footer[16..20].try_into().expect("4"));
        let index_len = count
            .checked_mul(INDEX_ENTRY_LEN as u64)
            .filter(|l| index_off >= HEADER_LEN && index_off + l == len - FOOTER_LEN);
        let Some(index_len) = index_len else {
            return Err(CoreError::Persistence(format!(
                "{path:?}: snapshot index geometry is inconsistent"
            )));
        };
        let mut index = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_off))
            .and_then(|_| file.read_exact(&mut index))
            .map_err(|e| perr(path, "read index of", e))?;
        if crc32(&index) != crc {
            return Err(CoreError::Persistence(format!(
                "{path:?}: snapshot index checksum mismatch"
            )));
        }
        Ok(Snap {
            file,
            index_off,
            count,
        })
    }

    /// Rebuild a shard's tail index by replaying its log; truncates a
    /// torn/truncated final record with a warning.
    fn replay_log(shard: &mut Shard, log_len: u64, warnings: &mut Vec<String>) -> Result<()> {
        let mut off = HEADER_LEN;
        let mut frame_head = [0u8; FRAME_OVERHEAD];
        let mut payload = Vec::new();
        while off < log_len {
            let whole = off + FRAME_OVERHEAD as u64 <= log_len;
            let mut good = false;
            if whole {
                shard
                    .log_read
                    .seek(SeekFrom::Start(off))
                    .and_then(|_| shard.log_read.read_exact(&mut frame_head))
                    .map_err(|e| perr(&shard.log_path, "replay", e))?;
                let len = u32::from_le_bytes(frame_head[0..4].try_into().expect("4")) as u64;
                let crc = u32::from_le_bytes(frame_head[4..8].try_into().expect("4"));
                if off + FRAME_OVERHEAD as u64 + len <= log_len {
                    payload.resize(len as usize, 0);
                    shard
                        .log_read
                        .read_exact(&mut payload)
                        .map_err(|e| perr(&shard.log_path, "replay", e))?;
                    if crc32(&payload) == crc {
                        let mut c = Cursor::new(&payload);
                        let op = c.u8()?;
                        let user_id = c.u64()?;
                        let frame_len = (len + FRAME_OVERHEAD as u64) as u32;
                        match op {
                            OP_PUT => {
                                shard.tail.insert(
                                    user_id,
                                    TailLoc::Put {
                                        off,
                                        len: frame_len,
                                    },
                                );
                            }
                            OP_DELETE => {
                                shard.tail.insert(user_id, TailLoc::Tombstone);
                            }
                            other => {
                                return Err(CoreError::Persistence(format!(
                                    "{:?}: unknown record op {other} at offset {off}",
                                    shard.log_path
                                )))
                            }
                        }
                        off += frame_len as u64;
                        good = true;
                    }
                }
            }
            if !good {
                warnings.push(format!(
                    "{:?}: torn or truncated record at offset {off} ({} byte tail dropped)",
                    shard.log_path,
                    log_len - off
                ));
                shard
                    .log_write
                    .set_len(off)
                    .map_err(|e| perr(&shard.log_path, "truncate", e))?;
                break;
            }
        }
        shard.committed = off.min(log_len);
        shard
            .log_write
            .seek(SeekFrom::Start(shard.committed))
            .map_err(|e| perr(&shard.log_path, "seek", e))?;
        Ok(())
    }

    fn shard_of(&self, user_id: u64) -> &Mutex<Shard> {
        // Fibonacci hashing, as in the state cache: spreads sequential ids.
        let h = user_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Append one framed record to a shard, updating its tail index.
    fn append(&self, shard: &mut Shard, user_id: u64, loc_for: u8, payload: &[u8]) -> Result<()> {
        let off = shard.committed + shard.buf.len() as u64;
        let len = append_frame(&mut shard.buf, payload);
        let loc = if loc_for == OP_PUT {
            TailLoc::Put { off, len }
        } else {
            TailLoc::Tombstone
        };
        shard.tail.insert(user_id, loc);
        if shard.buf.len() >= self.config.buffer_bytes {
            shard.write_buf()?;
        }
        Ok(())
    }

    /// Compact one shard: merge (snapshot, tail) into a fresh snapshot,
    /// then truncate the log. No-op when the tail is empty.
    fn compact_shard(&self, shard: &mut Shard, k: usize) -> Result<()> {
        shard.write_buf()?;
        if shard.tail.is_empty() {
            return Ok(());
        }

        // Stream-merge snapshot records (ascending user id) with the tail
        // (a BTreeMap, also ascending) into the new snapshot.
        let snap_entries = shard.snap_ids()?;
        let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
        out.extend_from_slice(&file_header(KIND_SNAP, k as u32, self.shards.len() as u32));
        let mut index: Vec<(u64, u64, u32)> = Vec::new();

        let mut write_frame = |frame: Vec<u8>, user_id: u64, out: &mut Vec<u8>| {
            index.push((user_id, out.len() as u64, frame.len() as u32));
            out.extend_from_slice(&frame);
        };

        let tail = std::mem::take(&mut shard.tail);
        let mut tail_iter = tail.iter().peekable();
        for (id, off, len) in snap_entries {
            // Tail users at or below this snapshot id go first / instead.
            while let Some((&tid, &loc)) = tail_iter.peek() {
                if tid >= id {
                    break;
                }
                tail_iter.next();
                if let TailLoc::Put { off, len } = loc {
                    let frame = shard.read_frame(off, len)?;
                    write_frame(frame, tid, &mut out);
                }
            }
            match tail_iter.peek() {
                Some((&tid, &loc)) if tid == id => {
                    tail_iter.next();
                    if let TailLoc::Put { off, len } = loc {
                        let frame = shard.read_frame(off, len)?;
                        write_frame(frame, tid, &mut out);
                    }
                    // Tombstone: the snapshot copy is dropped too.
                }
                _ => {
                    let snap = shard.snap.as_mut().expect("entries imply snapshot");
                    let mut frame = vec![0u8; len as usize];
                    snap.file
                        .seek(SeekFrom::Start(off))
                        .and_then(|_| snap.file.read_exact(&mut frame))
                        .map_err(|e| perr(&shard.snap_path, "compact read of", e))?;
                    write_frame(frame, id, &mut out);
                }
            }
        }
        for (&tid, &loc) in tail_iter {
            if let TailLoc::Put { off, len } = loc {
                let frame = shard.read_frame(off, len)?;
                write_frame(frame, tid, &mut out);
            }
        }

        // Index block + footer.
        let index_off = out.len() as u64;
        let index_start = out.len();
        for (id, off, len) in &index {
            put_u64(&mut out, *id);
            put_u64(&mut out, *off);
            put_u32(&mut out, *len);
        }
        let crc = crc32(&out[index_start..]);
        put_u64(&mut out, index_off);
        put_u64(&mut out, index.len() as u64);
        put_u32(&mut out, crc);
        out.extend_from_slice(INDEX_MAGIC);

        // Atomic install: temp + rename, then truncate the log. A crash
        // in between merely leaves log records the snapshot already
        // holds; replay re-converges to the same state.
        let tmp = shard.snap_path.with_extension("snap.tmp");
        std::fs::write(&tmp, &out).map_err(|e| perr(&tmp, "write", e))?;
        std::fs::rename(&tmp, &shard.snap_path)
            .map_err(|e| perr(&shard.snap_path, "rename to", e))?;
        shard
            .log_write
            .set_len(HEADER_LEN)
            .and_then(|_| shard.log_write.seek(SeekFrom::Start(HEADER_LEN)))
            .map_err(|e| perr(&shard.log_path, "truncate", e))?;
        shard.committed = HEADER_LEN;

        let file = File::open(&shard.snap_path).map_err(|e| perr(&shard.snap_path, "open", e))?;
        shard.snap = Some(Snap {
            file,
            index_off,
            count: index.len() as u64,
        });
        Ok(())
    }
}

impl StateBackend for BinaryStateLog {
    fn save(&self, state: &LongTermState) -> Result<()> {
        let mut payload = Vec::with_capacity(256);
        encode_put_payload(state, &mut payload)?;
        let mut shard = self.shard_of(state.user_id).lock();
        self.append(&mut shard, state.user_id, OP_PUT, &payload)
    }

    fn save_batch(&self, batch: &[&LongTermState]) -> Result<usize> {
        let mut payload = Vec::with_capacity(256);
        for state in batch {
            payload.clear();
            encode_put_payload(state, &mut payload)?;
            let mut shard = self.shard_of(state.user_id).lock();
            self.append(&mut shard, state.user_id, OP_PUT, &payload)?;
        }
        Ok(batch.len())
    }

    fn load(&self, user_id: u64) -> Result<Option<LongTermState>> {
        let mut shard = self.shard_of(user_id).lock();
        match shard.tail.get(&user_id).copied() {
            Some(TailLoc::Put { off, len }) => {
                let frame = shard.read_frame(off, len)?;
                Shard::decode_frame(&frame).map(Some)
            }
            Some(TailLoc::Tombstone) => Ok(None),
            None => shard.snap_lookup(user_id),
        }
    }

    fn delete(&self, user_id: u64) -> Result<bool> {
        let mut shard = self.shard_of(user_id).lock();
        let existed = match shard.tail.get(&user_id).copied() {
            Some(TailLoc::Put { .. }) => true,
            Some(TailLoc::Tombstone) => false,
            None => shard.snap_lookup(user_id)?.is_some(),
        };
        if existed {
            let mut payload = Vec::with_capacity(16);
            payload.push(OP_DELETE);
            put_u64(&mut payload, user_id);
            self.append(&mut shard, user_id, OP_DELETE, &payload)?;
        }
        Ok(existed)
    }

    fn scan(&self) -> Result<StateScan> {
        let mut scan = StateScan {
            ids: Vec::new(),
            warnings: self.recovery_warnings.clone(),
        };
        for shard in &self.shards {
            let mut shard = shard.lock();
            let snap_entries = shard.snap_ids()?;
            for (id, _, _) in snap_entries {
                if !shard.tail.contains_key(&id) {
                    scan.ids.push(id);
                }
            }
            scan.ids.extend(
                shard
                    .tail
                    .iter()
                    .filter(|(_, loc)| matches!(loc, TailLoc::Put { .. }))
                    .map(|(&id, _)| id),
            );
        }
        scan.ids.sort_unstable();
        Ok(scan)
    }

    fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            shard.lock().write_buf()?;
        }
        if self.config.auto_compact_bytes > 0 {
            for (k, shard) in self.shards.iter().enumerate() {
                let mut shard = shard.lock();
                if shard.committed > self.config.auto_compact_bytes {
                    self.compact_shard(&mut shard, k)?;
                }
            }
        }
        Ok(())
    }

    fn checkpoint(&self) -> Result<()> {
        for (k, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock();
            self.compact_shard(&mut shard, k)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Migration from the legacy file-per-user store
// ---------------------------------------------------------------------------

/// Outcome of [`migrate_file_store`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Users copied into the log.
    pub migrated: usize,
    /// Warnings from [`StateStore::scan`]: malformed filenames in the
    /// source directory that could not be attributed to a user. Surfaced
    /// instead of silently skipped — each is a user whose history would
    /// otherwise vanish without a trace.
    pub warnings: Vec<String>,
}

/// Convert a legacy file-per-user [`StateStore`] directory into a
/// [`BinaryStateLog`], checkpointing at the end so the result is a single
/// compact snapshot per shard. Returns how many users were migrated plus
/// the source scan's malformed-filename warnings.
pub fn migrate_file_store(store: &StateStore, log: &BinaryStateLog) -> Result<MigrationReport> {
    let scan = store.scan()?;
    for &id in &scan.ids {
        let state = store.load(id)?.ok_or_else(|| {
            CoreError::Persistence(format!(
                "user {id} vanished from source store mid-migration"
            ))
        })?;
        log.save(&state)?;
    }
    log.checkpoint()?;
    Ok(MigrationReport {
        migrated: scan.ids.len(),
        warnings: scan.warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateBackend;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lingxi_binlog_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn state(user_id: u64, stamp: u64) -> LongTermState {
        let mut s = LongTermState::new(user_id);
        s.optimizations = stamp as usize;
        s.params.beta = 0.3 + (stamp % 64) as f64 / 128.0;
        s.tracker.push_segment(800.0 + stamp as f64, 1500.0, 2.0);
        s.tracker.push_stall(0.25 * (1 + stamp % 4) as f64);
        s
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let mut s = state(7, 3);
        s.params.stall_weight = -0.0; // signed zero must survive
        s.params.switch_weight = f64::MIN_POSITIVE / 2.0; // subnormal
        s.tracker.push_segment(f64::MAX, 1e-300, 2.0);
        let mut payload = Vec::new();
        encode_put_payload(&s, &mut payload).unwrap();
        let back = decode_put_payload(&payload).unwrap();
        assert_eq!(back, s);
        assert!(back.params.stall_weight.is_sign_negative());
    }

    #[test]
    fn save_load_delete_roundtrip() {
        let dir = temp_dir("roundtrip");
        let log = BinaryStateLog::open(&dir, BinLogConfig::default()).unwrap();
        assert!(log.load(1).unwrap().is_none());
        for id in [3u64, 1, 2] {
            log.save(&state(id, id * 10)).unwrap();
        }
        assert_eq!(log.load(2).unwrap().unwrap(), state(2, 20));
        // Overwrite wins.
        log.save(&state(2, 99)).unwrap();
        assert_eq!(log.load(2).unwrap().unwrap(), state(2, 99));
        assert_eq!(log.list().unwrap(), vec![1, 2, 3]);
        assert!(log.delete(2).unwrap());
        assert!(!log.delete(2).unwrap());
        assert!(log.load(2).unwrap().is_none());
        assert_eq!(log.list().unwrap(), vec![1, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_flushed_state_and_drops_buffered() {
        let dir = temp_dir("reopen");
        {
            let log = BinaryStateLog::open(&dir, BinLogConfig::default()).unwrap();
            log.save(&state(1, 1)).unwrap();
            log.save(&state(2, 2)).unwrap();
            log.flush().unwrap();
            // Acknowledged by flush; this one is lost with the buffer.
            log.save(&state(3, 3)).unwrap();
        }
        let log = BinaryStateLog::open(&dir, BinLogConfig::default()).unwrap();
        assert!(log.recovery_warnings().is_empty());
        assert_eq!(log.list().unwrap(), vec![1, 2]);
        assert_eq!(log.load(1).unwrap().unwrap(), state(1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        let cfg = BinLogConfig {
            shards: 2,
            ..BinLogConfig::default()
        };
        {
            let log = BinaryStateLog::open(&dir, cfg).unwrap();
            for id in 0..50u64 {
                log.save(&state(id, id)).unwrap();
            }
            for id in 0..50u64 {
                // Overwrites: compaction must keep only the latest.
                log.save(&state(id, id + 1000)).unwrap();
            }
            log.delete(7).unwrap();
            log.checkpoint().unwrap();
            // Logs are truncated back to their headers.
            for k in 0..2 {
                let len = std::fs::metadata(dir.join(format!("shard_{k}.log")))
                    .unwrap()
                    .len();
                assert_eq!(len, HEADER_LEN);
            }
        }
        let log = BinaryStateLog::open(&dir, cfg).unwrap();
        let ids = log.list().unwrap();
        assert_eq!(ids.len(), 49);
        assert!(!ids.contains(&7));
        for &id in &ids {
            assert_eq!(log.load(id).unwrap().unwrap(), state(id, id + 1000));
        }
        // Post-checkpoint writes land in the (empty) tail and win again.
        log.save(&state(3, 7777)).unwrap();
        assert_eq!(log.load(3).unwrap().unwrap(), state(3, 7777));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_record_is_dropped_with_warning() {
        let dir = temp_dir("trunc");
        let cfg = BinLogConfig {
            shards: 1,
            ..BinLogConfig::default()
        };
        {
            let log = BinaryStateLog::open(&dir, cfg).unwrap();
            log.save(&state(1, 1)).unwrap();
            log.save(&state(2, 2)).unwrap();
            log.flush().unwrap();
        }
        // Crash mid-append: the final record loses its last 5 bytes.
        let path = dir.join("shard_0.log");
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let log = BinaryStateLog::open(&dir, cfg).unwrap();
        assert_eq!(log.recovery_warnings().len(), 1);
        assert!(log.recovery_warnings()[0].contains("torn or truncated"));
        assert_eq!(log.list().unwrap(), vec![1]);
        // The truncated file is writable again and appends cleanly.
        log.save(&state(9, 9)).unwrap();
        log.flush().unwrap();
        let log2 = BinaryStateLog::open(&dir, cfg).unwrap();
        assert!(log2.recovery_warnings().is_empty());
        assert_eq!(log2.list().unwrap(), vec![1, 9]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fails_checksum_and_is_dropped() {
        let dir = temp_dir("torn");
        let cfg = BinLogConfig {
            shards: 1,
            ..BinLogConfig::default()
        };
        {
            let log = BinaryStateLog::open(&dir, cfg).unwrap();
            log.save(&state(1, 1)).unwrap();
            log.save(&state(2, 2)).unwrap();
            log.flush().unwrap();
        }
        // Torn write: the final record's bytes are garbage of the right
        // length — only the CRC can catch it.
        let path = dir.join("shard_0.log");
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        f.seek(SeekFrom::Start(len - 12)).unwrap();
        f.write_all(&[0xAB; 12]).unwrap();
        drop(f);
        let log = BinaryStateLog::open(&dir, cfg).unwrap();
        assert_eq!(log.recovery_warnings().len(), 1);
        assert_eq!(log.list().unwrap(), vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_pins_shard_count() {
        let dir = temp_dir("manifest");
        {
            let log = BinaryStateLog::open(
                &dir,
                BinLogConfig {
                    shards: 4,
                    ..BinLogConfig::default()
                },
            )
            .unwrap();
            for id in 0..32u64 {
                log.save(&state(id, id)).unwrap();
            }
            log.flush().unwrap();
        }
        // Reopening with a different shard count adopts the manifest's.
        let log = BinaryStateLog::open(
            &dir,
            BinLogConfig {
                shards: 16,
                ..BinLogConfig::default()
            },
        )
        .unwrap();
        assert_eq!(log.config().shards, 4);
        assert_eq!(log.list().unwrap().len(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_triggers_on_flush() {
        let dir = temp_dir("auto");
        let cfg = BinLogConfig {
            shards: 1,
            buffer_bytes: 64,
            auto_compact_bytes: 512,
        };
        let log = BinaryStateLog::open(&dir, cfg).unwrap();
        for id in 0..64u64 {
            log.save(&state(id, id)).unwrap();
        }
        log.flush().unwrap();
        let log_len = std::fs::metadata(dir.join("shard_0.log")).unwrap().len();
        assert_eq!(log_len, HEADER_LEN, "flush compacted the oversized log");
        assert!(dir.join("shard_0.snap").exists());
        assert_eq!(log.list().unwrap().len(), 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_copies_store_and_surfaces_warnings() {
        let src = temp_dir("mig_src");
        let dst = temp_dir("mig_dst");
        let store = StateStore::open(&src).unwrap();
        for id in [5u64, 1, 9] {
            store.save(&state(id, id * 3)).unwrap();
        }
        std::fs::write(src.join("user_oops.json"), "{").unwrap();
        std::fs::write(src.join("README.txt"), "hi").unwrap();
        let log = BinaryStateLog::open(&dst, BinLogConfig::default()).unwrap();
        let report = migrate_file_store(&store, &log).unwrap();
        assert_eq!(report.migrated, 3);
        assert_eq!(report.warnings.len(), 2);
        assert_eq!(log.list().unwrap(), vec![1, 5, 9]);
        for id in [1u64, 5, 9] {
            assert_eq!(
                log.load(id).unwrap().unwrap(),
                store.load(id).unwrap().unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
    }
}
