//! Property-based equivalence of the sharded write-behind cache and the
//! direct [`StateStore`] path — for both durable backends.
//!
//! The contract under test (see `lingxi_core::cache`): for ANY interleaving
//! of save/load/evict/flush — across any shard count and any LRU capacity,
//! including capacities small enough to force evictions mid-sequence —
//! every `load` observes exactly what the direct store path would, and
//! after a final `flush` the durable layer holds exactly the same
//! [`LongTermState`] per user as a store written directly.
//!
//! The binary-log battery additionally interleaves *crash points*: the log
//! is dropped and reopened mid-sequence (recovery replays snapshot + tail),
//! optionally with its tail corrupted first — a truncated final record or a
//! torn (checksum-failing) final write. Recovery must shed exactly the
//! corrupt bytes, warn, and still agree with the direct file-per-user
//! store, byte for byte of state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lingxi_core::{
    BinLogConfig, BinaryStateLog, CacheConfig, LongTermState, ShardedStateCache, StateBackend,
    StateStore,
};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lingxi_cache_props_{tag}_{}_{n}",
        std::process::id()
    ))
}

/// A distinguishable state: `stamp` lands in fields the serializer carries,
/// so stale or lost writes are caught by equality.
fn state_for(user: u64, stamp: u8) -> LongTermState {
    let mut s = LongTermState::new(user);
    s.optimizations = stamp as usize + 1;
    s.params.beta = 0.1 + stamp as f64 / 512.0;
    s.tracker.push_segment(800.0, 700.0 + stamp as f64, 2.0);
    s
}

/// Durable layers agree: same users, same state per user — and reads
/// through the cache match a direct-store read for every user probed.
fn assert_backends_agree(
    cache: &ShardedStateCache,
    direct: &StateStore,
    users: std::ops::Range<u64>,
) -> std::result::Result<(), TestCaseError> {
    let behind = cache.backend().list().unwrap();
    prop_assert_eq!(&behind, &StateBackend::list(direct).unwrap());
    for id in behind {
        prop_assert_eq!(
            cache.backend().load(id).unwrap(),
            StateBackend::load(direct, id).unwrap()
        );
    }
    for user in users {
        prop_assert_eq!(
            cache.load(user).unwrap(),
            StateBackend::load(direct, user).unwrap()
        );
    }
    Ok(())
}

proptest! {
    // Filesystem-heavy: keep the default case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_roundtrips_like_direct_store(
        // (op, user, stamp): 0 = save, 1 = load, 2 = evict, 3 = flush.
        ops in proptest::collection::vec((0u8..4, 0u64..12, 0u8..=254), 1..60),
        shards in 1usize..5,
        capacity in 1usize..6,
    ) {
        let cache_dir = fresh_dir("cache");
        let direct_dir = fresh_dir("direct");
        let cache = ShardedStateCache::new(
            StateStore::open(&cache_dir).unwrap(),
            CacheConfig {
                shards,
                capacity_per_shard: capacity,
                write_through: false,
            },
        )
        .unwrap();
        let direct = StateStore::open(&direct_dir).unwrap();

        for (op, user, stamp) in &ops {
            match op {
                0 => {
                    let s = state_for(*user, *stamp);
                    cache.save(&s).unwrap();
                    direct.save(&s).unwrap();
                }
                1 => {
                    // Cached read must observe exactly the direct value.
                    prop_assert_eq!(cache.load(*user).unwrap(), direct.load(*user).unwrap());
                }
                2 => {
                    // Eviction is invisible to the API contract.
                    cache.evict(*user).unwrap();
                }
                _ => {
                    cache.flush().unwrap();
                }
            }
        }
        cache.flush().unwrap();
        assert_backends_agree(&cache, &direct, 0..12)?;

        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_dir_all(&direct_dir);
    }

    /// The binary log behind the cache is observably the file-per-user
    /// store — through any interleaving of save/load/evict/flush plus
    /// compactions and crash-reopen points with tail corruption.
    #[test]
    fn binlog_recovery_matches_direct_store(
        // (op, user, stamp):
        //   0 = save, 1 = load, 2 = evict, 3 = flush, 4 = checkpoint,
        //   5 = crash + clean reopen,
        //   6 = crash + truncated tail record, 7 = crash + torn final write.
        ops in proptest::collection::vec((0u8..8, 0u64..12, 0u8..=254), 1..50),
        log_shards in 1usize..4,
        cache_shards in 1usize..4,
        capacity in 1usize..6,
    ) {
        let log_dir = fresh_dir("binlog");
        let direct_dir = fresh_dir("binlog_direct");
        let cache_cfg = CacheConfig {
            shards: cache_shards,
            capacity_per_shard: capacity,
            write_through: false,
        };
        let log_cfg = BinLogConfig { shards: log_shards, ..BinLogConfig::default() };
        let open_cache = || -> ShardedStateCache {
            let log = BinaryStateLog::open(&log_dir, log_cfg).unwrap();
            ShardedStateCache::with_backend(Arc::new(log), cache_cfg).unwrap()
        };
        let mut cache = open_cache();
        let direct = StateStore::open(&direct_dir).unwrap();
        let mut corruptions = 0usize;

        for (op, user, stamp) in &ops {
            match op {
                0 => {
                    let s = state_for(*user, *stamp);
                    cache.save(&s).unwrap();
                    direct.save(&s).unwrap();
                }
                1 => {
                    prop_assert_eq!(
                        cache.load(*user).unwrap(),
                        StateBackend::load(&direct, *user).unwrap()
                    );
                }
                2 => {
                    cache.evict(*user).unwrap();
                }
                3 => {
                    cache.flush().unwrap();
                }
                4 => {
                    // Compaction must not change observable contents.
                    cache.flush().unwrap();
                    cache.backend().checkpoint().unwrap();
                }
                crash => {
                    // Crash point. Flush first so the direct store and the
                    // log agree on what is durable, then drop everything
                    // mid-flight and (maybe) corrupt the tail of one shard
                    // log before recovery reopens it.
                    cache.flush().unwrap();
                    drop(cache);
                    let shard_log =
                        log_dir.join(format!("shard_{}.log", *user as usize % log_shards));
                    let tail_garbage: &[u8] = match crash {
                        // Truncated tail: a record whose bytes stop short
                        // of its own length prefix.
                        6 => &[24, 0, 0, 0, 0xAA, 0xBB],
                        // Torn write: a full-length frame whose payload
                        // never matches its checksum.
                        7 => &[4, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4],
                        _ => &[],
                    };
                    if !tail_garbage.is_empty() {
                        use std::io::Write;
                        let mut f = std::fs::OpenOptions::new()
                            .append(true)
                            .open(&shard_log)
                            .unwrap();
                        f.write_all(tail_garbage).unwrap();
                        corruptions += 1;
                    }
                    cache = open_cache();
                    if !tail_garbage.is_empty() {
                        let scan = cache.backend().scan().unwrap();
                        prop_assert!(
                            scan.warnings.iter().any(|w| w.contains("torn or truncated")),
                            "corruption must surface a recovery warning, got {:?}",
                            scan.warnings
                        );
                    }
                    // Recovery ≡ the direct file-per-user store.
                    assert_backends_agree(&cache, &direct, 0..12)?;
                }
            }
        }
        cache.flush().unwrap();
        assert_backends_agree(&cache, &direct, 0..12)?;
        // Corruption never breaks a later checkpoint + reopen.
        if corruptions > 0 {
            cache.backend().checkpoint().unwrap();
            drop(cache);
            let cache = open_cache();
            prop_assert!(cache.backend().scan().unwrap().warnings.is_empty());
            assert_backends_agree(&cache, &direct, 0..12)?;
        }

        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&direct_dir);
    }

    #[test]
    fn write_through_and_write_behind_agree(
        ops in proptest::collection::vec((0u8..2, 0u64..8, 0u8..=254), 1..40),
    ) {
        let wb_dir = fresh_dir("wb");
        let wt_dir = fresh_dir("wt");
        let wb = ShardedStateCache::new(
            StateStore::open(&wb_dir).unwrap(),
            CacheConfig { shards: 3, capacity_per_shard: 2, write_through: false },
        )
        .unwrap();
        let wt = ShardedStateCache::new(
            StateStore::open(&wt_dir).unwrap(),
            CacheConfig { shards: 1, capacity_per_shard: 64, write_through: true },
        )
        .unwrap();
        for (op, user, stamp) in &ops {
            match op {
                0 => {
                    let s = state_for(*user, *stamp);
                    wb.save(&s).unwrap();
                    wt.save(&s).unwrap();
                }
                _ => {
                    prop_assert_eq!(wb.load(*user).unwrap(), wt.load(*user).unwrap());
                }
            }
        }
        wb.flush().unwrap();
        wt.flush().unwrap();
        prop_assert_eq!(
            wb.backend().list().unwrap(),
            wt.backend().list().unwrap()
        );
        let _ = std::fs::remove_dir_all(&wb_dir);
        let _ = std::fs::remove_dir_all(&wt_dir);
    }
}
