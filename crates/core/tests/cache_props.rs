//! Property-based equivalence of the sharded write-behind cache and the
//! direct [`StateStore`] path.
//!
//! The contract under test (see `lingxi_core::cache`): for ANY interleaving
//! of save/load/evict/flush — across any shard count and any LRU capacity,
//! including capacities small enough to force evictions mid-sequence —
//! every `load` observes exactly what the direct store path would, and
//! after a final `flush` the durable layer holds exactly the same
//! [`LongTermState`] per user as a store written directly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use lingxi_core::{CacheConfig, LongTermState, ShardedStateCache, StateStore};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lingxi_cache_props_{tag}_{}_{n}",
        std::process::id()
    ))
}

/// A distinguishable state: `stamp` lands in fields the serializer carries,
/// so stale or lost writes are caught by equality.
fn state_for(user: u64, stamp: u8) -> LongTermState {
    let mut s = LongTermState::new(user);
    s.optimizations = stamp as usize + 1;
    s.params.beta = 0.1 + stamp as f64 / 512.0;
    s.tracker.push_segment(800.0, 700.0 + stamp as f64, 2.0);
    s
}

proptest! {
    // Filesystem-heavy: keep the default case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_roundtrips_like_direct_store(
        // (op, user, stamp): 0 = save, 1 = load, 2 = evict, 3 = flush.
        ops in proptest::collection::vec((0u8..4, 0u64..12, 0u8..=254), 1..60),
        shards in 1usize..5,
        capacity in 1usize..6,
    ) {
        let cache_dir = fresh_dir("cache");
        let direct_dir = fresh_dir("direct");
        let cache = ShardedStateCache::new(
            StateStore::open(&cache_dir).unwrap(),
            CacheConfig {
                shards,
                capacity_per_shard: capacity,
                write_through: false,
            },
        )
        .unwrap();
        let direct = StateStore::open(&direct_dir).unwrap();

        for (op, user, stamp) in &ops {
            match op {
                0 => {
                    let s = state_for(*user, *stamp);
                    cache.save(&s).unwrap();
                    direct.save(&s).unwrap();
                }
                1 => {
                    // Cached read must observe exactly the direct value.
                    prop_assert_eq!(cache.load(*user).unwrap(), direct.load(*user).unwrap());
                }
                2 => {
                    // Eviction is invisible to the API contract.
                    cache.evict(*user).unwrap();
                }
                _ => {
                    cache.flush().unwrap();
                }
            }
        }
        cache.flush().unwrap();

        // Durable layers now agree: same users, same state per user.
        let behind = cache.store().list().unwrap();
        prop_assert_eq!(&behind, &direct.list().unwrap());
        for id in behind {
            prop_assert_eq!(
                cache.store().load(id).unwrap(),
                direct.load(id).unwrap()
            );
        }
        // And reads through the (now clean) cache still match.
        for user in 0u64..12 {
            prop_assert_eq!(cache.load(user).unwrap(), direct.load(user).unwrap());
        }

        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_dir_all(&direct_dir);
    }

    #[test]
    fn write_through_and_write_behind_agree(
        ops in proptest::collection::vec((0u8..2, 0u64..8, 0u8..=254), 1..40),
    ) {
        let wb_dir = fresh_dir("wb");
        let wt_dir = fresh_dir("wt");
        let wb = ShardedStateCache::new(
            StateStore::open(&wb_dir).unwrap(),
            CacheConfig { shards: 3, capacity_per_shard: 2, write_through: false },
        )
        .unwrap();
        let wt = ShardedStateCache::new(
            StateStore::open(&wt_dir).unwrap(),
            CacheConfig { shards: 1, capacity_per_shard: 64, write_through: true },
        )
        .unwrap();
        for (op, user, stamp) in &ops {
            match op {
                0 => {
                    let s = state_for(*user, *stamp);
                    wb.save(&s).unwrap();
                    wt.save(&s).unwrap();
                }
                _ => {
                    prop_assert_eq!(wb.load(*user).unwrap(), wt.load(*user).unwrap());
                }
            }
        }
        wb.flush().unwrap();
        wt.flush().unwrap();
        prop_assert_eq!(
            wb.store().list().unwrap(),
            wt.store().list().unwrap()
        );
        let _ = std::fs::remove_dir_all(&wb_dir);
        let _ = std::fs::remove_dir_all(&wt_dir);
    }
}
