//! Golden regression pins for the `BandwidthProcess` refactor.
//!
//! These exact values were captured from the pre-refactor implementation
//! (direct `BandwidthTrace` integration in `run_managed_session`, direct
//! `NormalDist` sampling in `evaluate_parameters`). The refactor onto
//! `&dyn BandwidthProcess` / `ModelProcess` must keep the same RNG stream
//! and float expressions, so every assertion here is *bit-exact*.
// The literals carry every digit of the captured doubles on purpose.
#![allow(clippy::excessive_precision)]

use lingxi_abr::{Hyb, QoeParams};
use lingxi_core::{
    evaluate_parameters, run_managed_session, ConstantPredictor, LingXiConfig, LingXiController,
    McConfig, ProfilePredictor,
};
use lingxi_exit::UserStateTracker;
use lingxi_media::{BitrateLadder, Catalog, CatalogConfig, VbrModel};
use lingxi_net::BandwidthTrace;
use lingxi_player::{PlayerConfig, PlayerEnv};
use lingxi_stats::NormalDist;
use lingxi_user::{QosExitModel, SensitivityKind, StallProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn managed_session_bit_identical_to_pre_refactor() {
    let mut rng = StdRng::seed_from_u64(1);
    let cat = Catalog::generate(
        BitrateLadder::default_short_video(),
        &CatalogConfig {
            n_videos: 4,
            mean_duration: 60.0,
            vbr: VbrModel::cbr(),
            ..CatalogConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    // Sub-ladder-floor bandwidth: stalls on every segment, so the session
    // exercises the optimizer path (12 deployments) and its RNG draws.
    let trace = BandwidthTrace::new(1.0, vec![300.0, 310.0, 290.0, 305.0]).unwrap();
    let profile = StallProfile::new(SensitivityKind::Insensitive, 10.0, 0.05).unwrap();
    let mut abr = Hyb::default_rule();
    let mut controller = LingXiController::new(LingXiConfig::for_hyb()).unwrap();
    let mut predictor = ProfilePredictor {
        profile,
        base: 0.002,
    };
    let mut user = QosExitModel::calibrated(profile);
    user.base_exit = 0.0;
    let mut srng = StdRng::seed_from_u64(424242);
    let out = run_managed_session(
        7,
        cat.video_cyclic(1),
        cat.ladder(),
        &trace,
        PlayerConfig::deterministic(10.0, 0.0),
        &mut abr,
        &mut controller,
        &mut predictor,
        &mut user,
        &mut srng,
    )
    .unwrap();

    assert_eq!(out.log.watch_time, 52.0);
    assert_eq!(out.log.segments.len(), 26);
    assert_eq!(out.log.total_stall(), 8.10632183908045967e0);
    assert_eq!(out.deployments.len(), 12);
    let tp_sum: f64 = out.log.segments.iter().map(|s| s.throughput_kbps).sum();
    assert_eq!(tp_sum, 7.83265522088428861e3);
    let dl_sum: f64 = out.log.segments.iter().map(|s| s.download_time).sum();
    assert_eq!(dl_sum, 6.04166666666666714e1);
}

#[test]
fn monte_carlo_rollouts_bit_identical_to_pre_refactor() {
    let ladder = BitrateLadder::default_short_video();
    let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
    let tracker = UserStateTracker::new();
    let mut abr = Hyb::default_rule();
    let mut pred = ConstantPredictor { p: 0.05 };
    let mut rng = StdRng::seed_from_u64(11);
    let eval = evaluate_parameters(
        &mut abr,
        QoeParams::default(),
        NormalDist::new(4000.0, 1500.0).unwrap(),
        &tracker,
        &env,
        &ladder,
        &mut pred,
        &McConfig::default(),
        None,
        &mut rng,
    )
    .unwrap();
    assert_eq!(eval.exit_rate, 7.14285714285714246e-2);
    assert_eq!(eval.watched, 112);
    assert_eq!(eval.exited, 8);
    assert_eq!(eval.mean_stall, 3.80031757197938180e0);
}
