//! Rate-based ABR (FESTIVE/PANDA family): pick the highest level whose
//! bitrate fits under a safety-discounted harmonic-mean throughput estimate.

use lingxi_net::{BandwidthEstimator, HarmonicMeanEstimator};
use lingxi_player::PlayerEnv;

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::{AbrError, Result};

/// Throughput-rule ABR.
#[derive(Debug, Clone)]
pub struct ThroughputRule {
    safety: f64,
    window: usize,
    estimator: HarmonicMeanEstimator,
    params: QoeParams,
}

impl ThroughputRule {
    /// `safety` in `(0, 1]` discounts the estimate (0.9 is customary).
    pub fn new(safety: f64, window: usize) -> Result<Self> {
        if !(safety > 0.0 && safety <= 1.0) {
            return Err(AbrError::InvalidConfig("safety must be in (0,1]".into()));
        }
        let estimator = HarmonicMeanEstimator::new(window.max(1))
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(Self {
            safety,
            window: window.max(1),
            estimator,
            params: QoeParams::default(),
        })
    }

    /// Customary configuration (0.9 safety over an 8-sample window).
    pub fn default_rule() -> Self {
        Self::new(0.9, 8).expect("static config valid")
    }
}

impl Abr for ThroughputRule {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        // Sync estimator with the player's observed history (idempotent:
        // feed only new samples).
        crate::abr::sync_estimator(&mut self.estimator, env);
        match self.estimator.estimate() {
            None => 0, // cold start: lowest level
            Some(est) => ctx.ladder.highest_level_at_most(self.safety * est),
        }
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {
        self.estimator = HarmonicMeanEstimator::new(self.window).expect("window validated");
    }

    fn name(&self) -> &'static str {
        "throughput"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 50, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    #[test]
    fn cold_start_picks_lowest() {
        let (ladder, sizes) = fixture();
        let mut abr = ThroughputRule::default_rule();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn high_throughput_picks_high_level() {
        let (ladder, sizes) = fixture();
        let mut abr = ThroughputRule::default_rule();
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            env.step(1000.0, 0, 20_000.0, 2.0, &mut rng).unwrap();
        }
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 6,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 3);
    }

    #[test]
    fn low_throughput_picks_low_level() {
        let (ladder, sizes) = fixture();
        let mut abr = ThroughputRule::default_rule();
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..6 {
            env.step(1000.0, 0, 600.0, 2.0, &mut rng).unwrap();
        }
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 6,
            segment_duration: 2.0,
        };
        // 0.9 * 600 = 540 < 800 → LD.
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn reset_clears_estimator() {
        let (ladder, sizes) = fixture();
        let mut abr = ThroughputRule::default_rule();
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4 {
            env.step(1000.0, 0, 20_000.0, 2.0, &mut rng).unwrap();
        }
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 4,
            segment_duration: 2.0,
        };
        assert!(abr.select(&env, &ctx) > 0);
        abr.reset();
        let fresh = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        assert_eq!(abr.select(&fresh, &ctx), 0);
    }

    #[test]
    fn constructor_validation() {
        assert!(ThroughputRule::new(0.0, 8).is_err());
        assert!(ThroughputRule::new(1.5, 8).is_err());
        assert!(ThroughputRule::new(0.9, 0).is_ok()); // window clamped to 1
    }
}
