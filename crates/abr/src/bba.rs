//! BBA — the buffer-based approach of Huang et al. (SIGCOMM'14).
//!
//! Maps the current buffer level linearly from a *reservoir* (below which
//! the lowest rate is used) through a *cushion* (above which the highest
//! rate is used) onto the rate ladder. No throughput estimate at all.

use lingxi_player::PlayerEnv;

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::{AbrError, Result};

/// Buffer-based ABR.
#[derive(Debug, Clone)]
pub struct Bba {
    /// Buffer level (s) below which the lowest level is always chosen.
    reservoir: f64,
    /// Buffer span (s) over which levels ramp to the top.
    cushion: f64,
    params: QoeParams,
}

impl Bba {
    /// Create with explicit reservoir/cushion (seconds).
    pub fn new(reservoir: f64, cushion: f64) -> Result<Self> {
        if !(reservoir >= 0.0) || !(cushion > 0.0) {
            return Err(AbrError::InvalidConfig(
                "reservoir >= 0 and cushion > 0 required".into(),
            ));
        }
        Ok(Self {
            reservoir,
            cushion,
            params: QoeParams::default(),
        })
    }

    /// The original paper's shape scaled to short-video buffers:
    /// 2 s reservoir, 6 s cushion.
    pub fn default_rule() -> Self {
        Self::new(2.0, 6.0).expect("static config valid")
    }
}

impl Abr for Bba {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        let top = ctx.ladder.top_level();
        let b = env.buffer();
        if b <= self.reservoir {
            0
        } else if b >= self.reservoir + self.cushion {
            top
        } else {
            let t = (b - self.reservoir) / self.cushion;
            ((t * top as f64).floor() as usize).min(top)
        }
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "bba"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 10, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    fn env_with_buffer(buffer: f64) -> PlayerEnv {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // Build up buffer by stepping tiny segments over a fat pipe.
        while env.buffer() < buffer {
            env.step(10.0, 0, 1_000_000.0, 2.0, &mut rng).unwrap();
        }
        env
    }

    #[test]
    fn reservoir_forces_lowest() {
        let (ladder, sizes) = ctx_fixture();
        let mut abr = Bba::default_rule();
        let env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn full_cushion_forces_top() {
        let (ladder, sizes) = ctx_fixture();
        let mut abr = Bba::default_rule();
        let env = env_with_buffer(9.0);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 3);
    }

    #[test]
    fn levels_monotone_in_buffer() {
        let (ladder, sizes) = ctx_fixture();
        let mut abr = Bba::default_rule();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let mut prev = 0;
        for b in [0.0, 2.5, 4.0, 5.5, 7.0, 8.5] {
            let env = env_with_buffer(b);
            let lvl = abr.select(&env, &ctx);
            assert!(lvl >= prev, "buffer {b} gave level {lvl} < {prev}");
            prev = lvl;
        }
    }

    #[test]
    fn constructor_validation() {
        assert!(Bba::new(-1.0, 5.0).is_err());
        assert!(Bba::new(2.0, 0.0).is_err());
        assert!(Bba::new(0.0, 1.0).is_ok());
    }
}
