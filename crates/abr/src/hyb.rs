//! HYB — the production throughput+buffer hybrid the paper deploys LingXi
//! over (§5.3).
//!
//! "The HYB algorithm ... select\[s\] maximum bitrates while maintaining
//! `d_k(Q_k)/C_k < β·B` to prevent stalls. Rather than explicit QoE
//! optimization, HYB employs the β parameter to tune algorithmic
//! aggressiveness": a big β trusts the bandwidth estimate (downloads may
//! take most of the buffer), a small β is conservative. LingXi tunes β
//! per user online (Fig. 13–15).

use lingxi_net::{BandwidthEstimator, EwmaEstimator};
use lingxi_player::PlayerEnv;

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::{AbrError, Result};

/// HYB ABR with the β aggressiveness knob.
#[derive(Debug, Clone)]
pub struct Hyb {
    estimator: EwmaEstimator,
    alpha: f64,
    params: QoeParams,
}

impl Hyb {
    /// Create with an EWMA smoothing factor for the bandwidth estimate.
    pub fn new(alpha: f64) -> Result<Self> {
        let estimator =
            EwmaEstimator::new(alpha).map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(Self {
            estimator,
            alpha,
            params: QoeParams::default(),
        })
    }

    /// Production-style configuration (α = 0.3, β from params).
    pub fn default_rule() -> Self {
        Self::new(0.3).expect("static config valid")
    }

    /// Current β.
    pub fn beta(&self) -> f64 {
        self.params.beta
    }
}

impl Abr for Hyb {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        crate::abr::sync_estimator(&mut self.estimator, env);
        let est = match self.estimator.estimate() {
            None => return 0,
            Some(e) => e,
        };
        let buffer = env.buffer().max(ctx.segment_duration * 0.25); // grace at startup
        let k = ctx
            .next_segment
            .min(ctx.sizes.n_segments().saturating_sub(1));
        // Highest level whose expected download time fits within β·B.
        let limit = self.params.beta * buffer;
        let mut choice = 0;
        for level in 0..=ctx.ladder.top_level() {
            let size = match ctx.sizes.size_kbits(k, level) {
                Ok(s) => s,
                Err(_) => break,
            };
            if size / est < limit {
                choice = level;
            }
        }
        // Upward hysteresis (production rules damp oscillation): only climb
        // above the previous level if the target also fits with a 20%
        // margin; otherwise hold. Downward moves are never delayed.
        if let Some(last) = env.last_level() {
            if choice > last {
                let size_up = ctx.sizes.size_kbits(k, choice).unwrap_or(f64::INFINITY);
                if size_up / est >= 0.8 * self.params.beta * buffer {
                    choice = last; // hold: not enough margin to climb yet
                }
            }
        }
        choice
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {
        self.estimator = EwmaEstimator::new(self.alpha).expect("alpha validated");
    }

    fn name(&self) -> &'static str {
        "hyb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 20, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    fn env_with(buffer_target: f64, bandwidth: f64) -> PlayerEnv {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        while env.buffer() < buffer_target {
            env.step(bandwidth * 0.01, 0, bandwidth, 2.0, &mut rng)
                .unwrap();
        }
        env
    }

    #[test]
    fn cold_start_lowest() {
        let (ladder, sizes) = fixture();
        let mut abr = Hyb::default_rule();
        let env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn beta_controls_aggressiveness() {
        let (ladder, sizes) = fixture();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 5,
            segment_duration: 2.0,
        };
        // Buffer 5 s, bandwidth 2000 kbps. Segment sizes: level3=8600 kbits
        // → 4.3 s download. β=0.95: 4.3 < 0.95*5=4.75 → level 3 allowed.
        // β=0.4: limit 2 s → only sizes < 4000 kbits (level 2 is 3700).
        let env = env_with(5.0, 2000.0);
        let mut bold = Hyb::default_rule();
        bold.set_params(QoeParams {
            beta: 0.95,
            ..QoeParams::default()
        });
        let mut shy = Hyb::default_rule();
        shy.set_params(QoeParams {
            beta: 0.4,
            ..QoeParams::default()
        });
        let lb = bold.select(&env, &ctx);
        let ls = shy.select(&env, &ctx);
        assert!(lb > ls, "bold {lb} vs shy {ls}");
    }

    #[test]
    fn weak_bandwidth_stays_low() {
        let (ladder, sizes) = fixture();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 3,
            segment_duration: 2.0,
        };
        let env = env_with(3.0, 400.0);
        let mut abr = Hyb::default_rule();
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn strong_bandwidth_reaches_top() {
        let (ladder, sizes) = fixture();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 3,
            segment_duration: 2.0,
        };
        let env = env_with(8.0, 30_000.0);
        let mut abr = Hyb::default_rule();
        assert_eq!(abr.select(&env, &ctx), 3);
    }

    #[test]
    fn reset_forgets_estimate() {
        let (ladder, sizes) = fixture();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let mut abr = Hyb::default_rule();
        let env = env_with(8.0, 30_000.0);
        assert!(abr.select(&env, &ctx) > 0);
        abr.reset();
        let fresh = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        assert_eq!(abr.select(&fresh, &ctx), 0);
    }
}
