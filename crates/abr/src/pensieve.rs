//! Pensieve — a learned ABR policy (Mao et al., SIGCOMM'17), reimplemented
//! with this repo's tiny NN library and trained in-simulator with REINFORCE.
//!
//! §5.2 of the LingXi paper augments Pensieve so that it can be *retuned at
//! inference*: "The Pensieve implementation is augmented to incorporate
//! stall and switching parameters as state variables in its neural
//! architecture, with the reward function dynamically adjusted according to
//! `QoE_lin` parameters during the training phase." We do exactly that: the
//! policy state vector ends with `(stall_weight, switch_weight)` and each
//! training episode samples a random parameter pair, so the learned policy
//! conditions its behaviour on the objective LingXi hands it.

use lingxi_media::{BitrateLadder, QualityMap, SegmentSizes, VbrModel};
use lingxi_nn::{softmax, Dense, Layer, Matrix, Relu, Sequential};
use lingxi_player::{PlayerConfig, PlayerEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::qoe::QoeLin;
use crate::{AbrError, Result};

/// Pensieve hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PensieveConfig {
    /// Number of ladder levels the policy outputs over.
    pub n_levels: usize,
    /// Throughput-history window in the state (paper uses 8).
    pub history: usize,
    /// Hidden layer widths.
    pub hidden: (usize, usize),
    /// REINFORCE learning rate.
    pub lr: f64,
    /// Reward discount factor.
    pub gamma: f64,
}

impl Default for PensieveConfig {
    fn default() -> Self {
        Self {
            n_levels: 4,
            history: 8,
            hidden: (64, 32),
            lr: 3e-3,
            gamma: 0.95,
        }
    }
}

/// Normalisation constants for the state vector.
const TPUT_SCALE: f64 = 10_000.0; // kbps
const BUFFER_SCALE: f64 = 10.0; // seconds
const SIZE_SCALE: f64 = 10_000.0; // kbits

/// Build the policy state vector.
///
/// Layout: `[last_level_norm, buffer_norm, tput_hist(history),
/// next_sizes(n_levels), remaining_norm, stall_w_norm, switch_w_norm]`.
fn state_vector(
    env: &PlayerEnv,
    ctx: &AbrContext<'_>,
    params: &QoeParams,
    config: &PensieveConfig,
) -> Vec<f64> {
    let mut s = Vec::with_capacity(state_dim(config));
    let top = ctx.ladder.top_level() as f64;
    s.push(env.last_level().map_or(0.0, |l| l as f64 / top.max(1.0)));
    s.push((env.buffer() / BUFFER_SCALE).min(2.0));
    let hist = env.throughput_history();
    for i in 0..config.history {
        let v = if i < hist.len() {
            hist[hist.len() - 1 - i]
        } else {
            0.0
        };
        s.push((v / TPUT_SCALE).min(5.0));
    }
    let k = ctx
        .next_segment
        .min(ctx.sizes.n_segments().saturating_sub(1));
    for level in 0..config.n_levels {
        let size = ctx
            .sizes
            .size_kbits(k, level.min(ctx.ladder.top_level()))
            .unwrap_or(0.0);
        s.push((size / SIZE_SCALE).min(5.0));
    }
    let remaining = ctx.sizes.n_segments().saturating_sub(ctx.next_segment);
    s.push((remaining as f64 / 60.0).min(2.0));
    // Parameters as state (§5.2): normalised into [0,1].
    let su = params.to_unit();
    s.push(su[0]);
    s.push(su[1]);
    s
}

/// State dimensionality for a config.
fn state_dim(config: &PensieveConfig) -> usize {
    2 + config.history + config.n_levels + 1 + 2
}

/// The Pensieve policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pensieve {
    config: PensieveConfig,
    net: Sequential,
    params: QoeParams,
}

impl Pensieve {
    /// Fresh, untrained policy.
    pub fn new<R: Rng + ?Sized>(config: PensieveConfig, rng: &mut R) -> Result<Self> {
        if config.n_levels == 0 || config.history == 0 {
            return Err(AbrError::InvalidConfig(
                "n_levels and history must be positive".into(),
            ));
        }
        let dim = state_dim(&config);
        let net = Sequential::new()
            .push(Layer::Dense(
                Dense::new(dim, config.hidden.0, rng)
                    .map_err(|e| AbrError::InvalidConfig(e.to_string()))?,
            ))
            .push(Layer::Relu(Relu::new()))
            .push(Layer::Dense(
                Dense::new(config.hidden.0, config.hidden.1, rng)
                    .map_err(|e| AbrError::InvalidConfig(e.to_string()))?,
            ))
            .push(Layer::Relu(Relu::new()))
            .push(Layer::Dense(
                Dense::new_xavier(config.hidden.1, config.n_levels, rng)
                    .map_err(|e| AbrError::InvalidConfig(e.to_string()))?,
            ));
        Ok(Self {
            config,
            net,
            params: QoeParams::default(),
        })
    }

    /// Action probabilities for the current state.
    pub fn action_probs(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> Vec<f64> {
        let s = state_vector(env, ctx, &self.params, &self.config);
        let x = Matrix::row_vector(&s);
        let logits = self.net.forward(&x).expect("net shapes fixed at build");
        softmax(&logits).row(0).to_vec()
    }

    /// Action probabilities for a whole batch of states: one network
    /// forward (a single matrix multiply per layer) instead of one per
    /// session. Every layer computes output rows independently and
    /// softmax is row-wise, so the result is bit-identical to calling
    /// [`Pensieve::action_probs`] on each pair in order.
    pub fn action_probs_batch(&mut self, items: &[(&PlayerEnv, &AbrContext<'_>)]) -> Vec<Vec<f64>> {
        if items.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f64>> = items
            .iter()
            .map(|(env, ctx)| state_vector(env, ctx, &self.params, &self.config))
            .collect();
        let x = Matrix::from_rows(&rows).expect("uniform state dims");
        let logits = self.net.forward(&x).expect("net shapes fixed at build");
        let probs = softmax(&logits);
        (0..items.len()).map(|r| probs.row(r).to_vec()).collect()
    }

    /// Greedy level per batch item, clamped to each context's ladder.
    /// Bit-identical to calling [`Abr::select`] on each pair in order.
    pub fn select_batch(&mut self, items: &[(&PlayerEnv, &AbrContext<'_>)]) -> Vec<usize> {
        self.action_probs_batch(items)
            .iter()
            .zip(items)
            .map(|(probs, (_, ctx))| {
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
                    .min(ctx.ladder.top_level())
            })
            .collect()
    }

    /// Configuration.
    pub fn config(&self) -> &PensieveConfig {
        &self.config
    }

    /// Borrow the underlying network (the trainer updates it in place).
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }
}

impl Abr for Pensieve {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        let probs = self.action_probs(env, ctx);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
            .min(ctx.ladder.top_level())
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "pensieve"
    }
}

/// Per-training-run statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean episode reward per epoch.
    pub epoch_rewards: Vec<f64>,
}

/// REINFORCE trainer running episodes in the simulator.
pub struct PensieveTrainer {
    /// Player config used for training episodes.
    pub player: PlayerConfig,
    /// Quality map for the reward.
    pub quality: QualityMap,
    /// Episodes per epoch.
    pub episodes_per_epoch: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Segments per training episode.
    pub episode_segments: usize,
    /// Randomise `QoeParams` each episode (params-as-state training).
    pub randomize_params: bool,
    /// Entropy-bonus weight (Mao et al. §4 keep an entropy term in the
    /// policy gradient to sustain exploration; without it the softmax
    /// collapses to a deterministic — often poor — policy early).
    pub entropy_beta: f64,
}

impl Default for PensieveTrainer {
    fn default() -> Self {
        Self {
            player: PlayerConfig::deterministic(10.0, 0.0),
            quality: QualityMap::LinearMbps,
            episodes_per_epoch: 16,
            epochs: 12,
            episode_segments: 30,
            randomize_params: true,
            entropy_beta: 0.02,
        }
    }
}

/// One sampled training/evaluation world: a bandwidth regime, objective
/// parameters, and segment sizes, plus a seed for the per-step draws.
struct Episode {
    mean_bw: f64,
    cv: f64,
    params: QoeParams,
    sizes: SegmentSizes,
    step_seed: u64,
}

impl PensieveTrainer {
    /// Train `policy` in place against synthetic bandwidth draws on
    /// `ladder`. Each episode: sample a mean bandwidth regime, roll out the
    /// stochastic policy, collect `QoE_lin` rewards, apply REINFORCE (with
    /// a mean baseline, advantage clipping, and an entropy bonus) averaged
    /// over the epoch's episodes.
    ///
    /// The returned per-epoch rewards are **not** the noisy training
    /// returns: after every epoch the greedy policy is evaluated on a
    /// fixed suite of episodes drawn once up front, so the reward curve
    /// tracks policy quality and is comparable across epochs.
    pub fn train<R: Rng + ?Sized>(
        &self,
        policy: &mut Pensieve,
        ladder: &BitrateLadder,
        rng: &mut R,
    ) -> Result<TrainStats> {
        let mut opt = lingxi_nn::Adam::new(policy.config.lr);
        let mut epoch_rewards = Vec::with_capacity(self.epochs);
        let eval_suite: Vec<Episode> = (0..self.episodes_per_epoch.max(1))
            .map(|_| self.sample_episode(ladder, rng))
            .collect::<Result<_>>()?;
        for _ in 0..self.epochs {
            // One optimizer step per epoch, averaging episode gradients:
            // batch policy gradient. Per-episode steps let one noisy
            // episode (e.g. a hopeless low-bandwidth regime where every
            // action stalls) drag the policy sideways.
            policy.net.zero_grad();
            for _ in 0..self.episodes_per_epoch {
                let ep = self.sample_episode(ladder, rng)?;
                self.accumulate_episode_gradient(policy, ladder, &ep, rng)?;
            }
            policy.net.step(&mut opt);
            let rewards = self.greedy_rewards(policy, ladder, &eval_suite)?;
            epoch_rewards.push(rewards.iter().sum::<f64>() / rewards.len() as f64);
        }
        Ok(TrainStats { epoch_rewards })
    }

    /// Draw one episode: log-uniform mean bandwidth, uniform CV, random
    /// objective parameters (when `randomize_params`), CBR segment sizes.
    fn sample_episode<R: Rng + ?Sized>(
        &self,
        ladder: &BitrateLadder,
        rng: &mut R,
    ) -> Result<Episode> {
        let mean_bw = (500.0f64.ln() + rng.gen::<f64>() * (20_000.0f64.ln() - 500.0f64.ln())).exp();
        let cv = 0.2 + rng.gen::<f64>() * 0.4;
        let params = if self.randomize_params {
            QoeParams::from_unit([rng.gen(), rng.gen(), rng.gen()])
        } else {
            QoeParams::default()
        };
        let sizes =
            SegmentSizes::generate(ladder, self.episode_segments, 2.0, &VbrModel::cbr(), rng)
                .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(Episode {
            mean_bw,
            cv,
            params,
            sizes,
            step_seed: rng.gen(),
        })
    }

    /// Roll out the stochastic policy on `ep` and accumulate the REINFORCE
    /// gradient (returns with mean baseline, clipped normalized advantage,
    /// entropy bonus) into the network, scaled for a per-epoch step.
    fn accumulate_episode_gradient<R: Rng + ?Sized>(
        &self,
        policy: &mut Pensieve,
        ladder: &BitrateLadder,
        ep: &Episode,
        rng: &mut R,
    ) -> Result<()> {
        let cfg = policy.config;
        policy.set_params(ep.params);
        let qoe = QoeLin::from_params(&ep.params, self.quality);
        let mut env =
            PlayerEnv::new(self.player).map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        let mut step_rng = StdRng::seed_from_u64(ep.step_seed);

        let mut states: Vec<Vec<f64>> = Vec::new();
        let mut actions: Vec<usize> = Vec::new();
        let mut rewards: Vec<f64> = Vec::new();
        for k in 0..self.episode_segments {
            let ctx = AbrContext {
                ladder,
                sizes: &ep.sizes,
                next_segment: k,
                segment_duration: 2.0,
            };
            let s = state_vector(&env, &ctx, &ep.params, &cfg);
            let x = Matrix::row_vector(&s);
            let logits = policy
                .net
                .forward(&x)
                .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
            let probs = softmax(&logits);
            // Sample an action by inverse CDF from the caller's stream.
            let u: f64 = rng.gen();
            let mut cum = 0.0;
            let mut action = cfg.n_levels - 1;
            for (i, &p) in probs.row(0).iter().enumerate() {
                cum += p;
                if u < cum {
                    action = i;
                    break;
                }
            }
            let r = Self::step_env(
                &mut env,
                ep,
                ladder,
                &qoe,
                k,
                action.min(ladder.top_level()),
                &mut step_rng,
            )?;
            states.push(s);
            actions.push(action);
            rewards.push(r);
        }

        // Discounted returns with mean baseline.
        let mut returns = vec![0.0; rewards.len()];
        let mut acc = 0.0;
        for i in (0..rewards.len()).rev() {
            acc = rewards[i] + cfg.gamma * acc;
            returns[i] = acc;
        }
        let baseline = returns.iter().sum::<f64>() / returns.len() as f64;
        let std = (returns
            .iter()
            .map(|r| (r - baseline) * (r - baseline))
            .sum::<f64>()
            / returns.len() as f64)
            .sqrt()
            .max(1e-6);

        // Policy-gradient contribution: grad logits = (probs − onehot) · A,
        // minus the entropy-bonus gradient β·∂H/∂z with
        // ∂H/∂z_c = −p_c (ln p_c + H).
        let batch =
            Matrix::from_rows(&states).map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        let logits = policy
            .net
            .forward(&batch)
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        let probs = softmax(&logits);
        let mut grad = probs.clone();
        let n = states.len() as f64 * self.episodes_per_epoch as f64;
        let beta = self.entropy_beta;
        for (r, (&a, &ret)) in actions.iter().zip(&returns).enumerate() {
            // Clip the normalized advantage: stall penalties are
            // heavy-tailed and a single catastrophic segment otherwise
            // dominates the whole episode's update.
            let adv = ((ret - baseline) / std).clamp(-3.0, 3.0);
            let entropy: f64 = (0..cfg.n_levels)
                .map(|c| {
                    let p = probs.get(r, c);
                    if p > 0.0 {
                        -p * p.ln()
                    } else {
                        0.0
                    }
                })
                .sum();
            for c in 0..cfg.n_levels {
                let p = probs.get(r, c);
                let onehot = if c == a { 1.0 } else { 0.0 };
                // dH/dz_c; the loss term is −β·H, so subtract.
                let dh_dz = -p * (p.max(1e-300).ln() + entropy);
                grad.set(r, c, ((p - onehot) * adv - beta * dh_dz) / n);
            }
        }
        policy
            .net
            .backward(&grad)
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(())
    }

    /// Greedy rewards for a suite of episodes, advanced in **lockstep**:
    /// at each decision tick the per-episode state vectors are stacked
    /// and the policy network runs once for the whole suite via
    /// [`Sequential::forward_rows`]. Episodes keep independent player
    /// environments, objective parameters, and per-step RNG streams, and
    /// every network layer computes rows independently, so each returned
    /// reward is bit-identical to evaluating that episode alone with the
    /// sequential reference (`greedy_reward`).
    fn greedy_rewards(
        &self,
        policy: &mut Pensieve,
        ladder: &BitrateLadder,
        eps: &[Episode],
    ) -> Result<Vec<f64>> {
        let cfg = policy.config;
        let mut envs = Vec::with_capacity(eps.len());
        for _ in eps {
            envs.push(
                PlayerEnv::new(self.player).map_err(|e| AbrError::InvalidConfig(e.to_string()))?,
            );
        }
        let mut step_rngs: Vec<StdRng> = eps
            .iter()
            .map(|ep| StdRng::seed_from_u64(ep.step_seed))
            .collect();
        let qoes: Vec<QoeLin> = eps
            .iter()
            .map(|ep| QoeLin::from_params(&ep.params, self.quality))
            .collect();
        let mut totals = vec![0.0; eps.len()];
        let mut states: Vec<Vec<f64>> = Vec::with_capacity(eps.len());
        for k in 0..self.episode_segments {
            states.clear();
            for (ep, env) in eps.iter().zip(&envs) {
                let ctx = AbrContext {
                    ladder,
                    sizes: &ep.sizes,
                    next_segment: k,
                    segment_duration: 2.0,
                };
                states.push(state_vector(env, &ctx, &ep.params, &cfg));
            }
            let logit_rows = policy
                .net
                .forward_rows(&states)
                .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
            for (i, ep) in eps.iter().enumerate() {
                // Same softmax-on-one-row + argmax as `Abr::select`.
                let probs = softmax(&Matrix::row_vector(&logit_rows[i]));
                let level = probs
                    .row(0)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap_or(0)
                    .min(ladder.top_level());
                totals[i] += Self::step_env(
                    &mut envs[i],
                    ep,
                    ladder,
                    &qoes[i],
                    k,
                    level,
                    &mut step_rngs[i],
                )?;
            }
        }
        // The sequential path sets the policy params per episode; leave
        // the same final state behind.
        if let Some(ep) = eps.last() {
            policy.set_params(ep.params);
        }
        Ok(totals)
    }

    /// Total reward of the argmax policy on `ep`. Deterministic for a
    /// given policy: the per-step draws replay from the episode's seed.
    /// Sequential reference implementation for the lockstep-equivalence
    /// test; production evaluation goes through `greedy_rewards`.
    #[cfg(test)]
    fn greedy_reward(
        &self,
        policy: &mut Pensieve,
        ladder: &BitrateLadder,
        ep: &Episode,
    ) -> Result<f64> {
        policy.set_params(ep.params);
        let qoe = QoeLin::from_params(&ep.params, self.quality);
        let mut env =
            PlayerEnv::new(self.player).map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        let mut step_rng = StdRng::seed_from_u64(ep.step_seed);
        let mut total = 0.0;
        for k in 0..self.episode_segments {
            let ctx = AbrContext {
                ladder,
                sizes: &ep.sizes,
                next_segment: k,
                segment_duration: 2.0,
            };
            // The inference-time path, so training-time evaluation can
            // never diverge from deployed behaviour.
            let level = policy.select(&env, &ctx);
            total += Self::step_env(&mut env, ep, ladder, &qoe, k, level, &mut step_rng)?;
        }
        Ok(total)
    }

    /// Advance the player one segment at `level`, returning its QoE score.
    fn step_env(
        env: &mut PlayerEnv,
        ep: &Episode,
        ladder: &BitrateLadder,
        qoe: &QoeLin,
        k: usize,
        level: usize,
        step_rng: &mut StdRng,
    ) -> Result<f64> {
        let prev = env.last_level();
        let size = ep
            .sizes
            .size_kbits(k, level)
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        // Per-step bandwidth draw around the episode regime.
        let bw = (ep.mean_bw * (1.0 + ep.cv * gauss(step_rng))).max(50.0);
        let outcome = env
            .step(size, level, bw, 2.0, step_rng)
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(qoe.segment_score(ladder, level, prev, outcome.stall_time))
    }
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 30, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    #[test]
    fn probs_are_distribution() {
        let (ladder, sizes) = fixture();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let probs = p.action_probs(&env, &ctx);
        assert_eq!(probs.len(), 4);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn select_returns_valid_level() {
        let (ladder, sizes) = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert!(p.select(&env, &ctx) <= 3);
    }

    #[test]
    fn params_change_the_state() {
        let (ladder, sizes) = fixture();
        let mut rng = StdRng::seed_from_u64(4);
        let p = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let cfg = *p.config();
        let s1 = state_vector(&env, &ctx, &QoeParams::default(), &cfg);
        let s2 = state_vector(&env, &ctx, &QoeParams::stall_averse(), &cfg);
        assert_eq!(s1.len(), state_dim(&cfg));
        assert_ne!(s1, s2, "params must be visible in the state");
        // Only the two parameter slots differ.
        let diff = s1
            .iter()
            .zip(&s2)
            .filter(|(a, b)| (*a - *b).abs() > 1e-12)
            .count();
        assert!(diff <= 2);
    }

    #[test]
    fn batched_probs_and_select_match_sequential() {
        let (ladder, sizes) = fixture();
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
        p.set_params(QoeParams::stall_averse());
        // Envs with different playback histories so every state differs.
        let mut envs: Vec<PlayerEnv> = (0..5)
            .map(|_| PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap())
            .collect();
        for (i, env) in envs.iter_mut().enumerate() {
            for k in 0..i {
                let size = sizes.size_kbits(k, k % 4).unwrap();
                env.step(size, k % 4, 3000.0 + 500.0 * i as f64, 2.0, &mut rng)
                    .unwrap();
            }
        }
        let ctxs: Vec<AbrContext<'_>> = (0..5)
            .map(|i| AbrContext {
                ladder: &ladder,
                sizes: &sizes,
                next_segment: i,
                segment_duration: 2.0,
            })
            .collect();
        let items: Vec<(&PlayerEnv, &AbrContext<'_>)> = envs.iter().zip(ctxs.iter()).collect();
        let batch_probs = p.action_probs_batch(&items);
        let batch_sel = p.select_batch(&items);
        for (i, &(env, ctx)) in items.iter().enumerate() {
            // Exact equality: batching must not perturb a single bit.
            assert_eq!(p.action_probs(env, ctx), batch_probs[i]);
            assert_eq!(p.select(env, ctx), batch_sel[i]);
        }
        assert!(p.action_probs_batch(&[]).is_empty());
        assert!(p.select_batch(&[]).is_empty());
    }

    #[test]
    fn lockstep_eval_matches_sequential_greedy() {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(9);
        let mut p = Pensieve::new(
            PensieveConfig {
                hidden: (16, 8),
                ..PensieveConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let trainer = PensieveTrainer {
            episode_segments: 12,
            ..PensieveTrainer::default()
        };
        let eps: Vec<Episode> = (0..6)
            .map(|_| trainer.sample_episode(&ladder, &mut rng).unwrap())
            .collect();
        let batched = trainer.greedy_rewards(&mut p, &ladder, &eps).unwrap();
        let sequential: Vec<f64> = eps
            .iter()
            .map(|ep| trainer.greedy_reward(&mut p, &ladder, ep).unwrap())
            .collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn training_improves_reward() {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = Pensieve::new(
            PensieveConfig {
                hidden: (32, 16),
                ..PensieveConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let trainer = PensieveTrainer {
            episodes_per_epoch: 8,
            epochs: 10,
            episode_segments: 20,
            ..PensieveTrainer::default()
        };
        let stats = trainer.train(&mut p, &ladder, &mut rng).unwrap();
        assert_eq!(stats.epoch_rewards.len(), 10);
        // Later epochs should not be dramatically worse than the first;
        // typically they improve. Use a loose check to stay robust.
        let first = stats.epoch_rewards[..3].iter().sum::<f64>() / 3.0;
        let last = stats.epoch_rewards[stats.epoch_rewards.len() - 3..]
            .iter()
            .sum::<f64>()
            / 3.0;
        assert!(
            last > first - 5.0,
            "reward collapsed: first {first}, last {last}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Pensieve::new(PensieveConfig::default(), &mut rng).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let q: Pensieve = serde_json::from_str(&json).unwrap();
        assert_eq!(q.config().n_levels, 4);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(Pensieve::new(
            PensieveConfig {
                n_levels: 0,
                ..PensieveConfig::default()
            },
            &mut rng
        )
        .is_err());
    }
}
