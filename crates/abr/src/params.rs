//! The tunable QoE parameter vector — LingXi's search space.
//!
//! §5.2 sweeps "stall parameters ranging from 1 to 20 and switching
//! parameters from 0 to 4" for the explicit-objective ABRs, and §5.3 tunes
//! HYB's β in lieu of an explicit objective. One struct carries all three so
//! the optimizer is agnostic to which ABR consumes it.

use serde::{Deserialize, Serialize};

use crate::{AbrError, Result};

/// Tunable QoE/behaviour parameters of an ABR algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeParams {
    /// Stall penalty weight μ of `QoE_lin` (paper sweep: 1–20).
    pub stall_weight: f64,
    /// Quality-switch penalty weight (paper sweep: 0–4).
    pub switch_weight: f64,
    /// HYB aggressiveness β (paper Fig. 13–15 operating range ~0.4–0.95).
    pub beta: f64,
}

impl Default for QoeParams {
    fn default() -> Self {
        Self {
            stall_weight: 4.3, // q_max of the default ladder, §2.1's default μ
            switch_weight: 1.0,
            beta: 0.8,
        }
    }
}

impl QoeParams {
    /// The paper's search bounds: stall 1–20, switch 0–4, β 0.3–0.95.
    pub const STALL_RANGE: (f64, f64) = (1.0, 20.0);
    /// Switch-weight bounds.
    pub const SWITCH_RANGE: (f64, f64) = (0.0, 4.0);
    /// β bounds.
    pub const BETA_RANGE: (f64, f64) = (0.3, 0.95);

    /// Validate that every component lies inside its search range
    /// (used at optimizer boundaries; defaults always pass).
    pub fn validate(&self) -> Result<()> {
        if !(Self::STALL_RANGE.0..=Self::STALL_RANGE.1).contains(&self.stall_weight) {
            return Err(AbrError::InvalidConfig(format!(
                "stall_weight {} outside {:?}",
                self.stall_weight,
                Self::STALL_RANGE
            )));
        }
        if !(Self::SWITCH_RANGE.0..=Self::SWITCH_RANGE.1).contains(&self.switch_weight) {
            return Err(AbrError::InvalidConfig(format!(
                "switch_weight {} outside {:?}",
                self.switch_weight,
                Self::SWITCH_RANGE
            )));
        }
        if !(Self::BETA_RANGE.0..=Self::BETA_RANGE.1).contains(&self.beta) {
            return Err(AbrError::InvalidConfig(format!(
                "beta {} outside {:?}",
                self.beta,
                Self::BETA_RANGE
            )));
        }
        Ok(())
    }

    /// Clamp every component into its range.
    pub fn clamped(&self) -> Self {
        Self {
            stall_weight: self
                .stall_weight
                .clamp(Self::STALL_RANGE.0, Self::STALL_RANGE.1),
            switch_weight: self
                .switch_weight
                .clamp(Self::SWITCH_RANGE.0, Self::SWITCH_RANGE.1),
            beta: self.beta.clamp(Self::BETA_RANGE.0, Self::BETA_RANGE.1),
        }
    }

    /// Map to the unit cube (for the Gaussian-process optimizer).
    pub fn to_unit(&self) -> [f64; 3] {
        let norm = |v: f64, (lo, hi): (f64, f64)| (v - lo) / (hi - lo);
        [
            norm(self.stall_weight, Self::STALL_RANGE),
            norm(self.switch_weight, Self::SWITCH_RANGE),
            norm(self.beta, Self::BETA_RANGE),
        ]
    }

    /// Inverse of [`QoeParams::to_unit`] (inputs are clamped into `[0,1]`).
    pub fn from_unit(u: [f64; 3]) -> Self {
        let denorm = |t: f64, (lo, hi): (f64, f64)| lo + t.clamp(0.0, 1.0) * (hi - lo);
        Self {
            stall_weight: denorm(u[0], Self::STALL_RANGE),
            switch_weight: denorm(u[1], Self::SWITCH_RANGE),
            beta: denorm(u[2], Self::BETA_RANGE),
        }
    }

    /// A conservative (stall-averse) preset — `Alg1` of Fig. 1.
    pub fn stall_averse() -> Self {
        Self {
            stall_weight: 16.0,
            switch_weight: 1.0,
            beta: 0.55,
        }
    }

    /// A quality-seeking preset — `Alg3` of Fig. 1.
    pub fn quality_seeking() -> Self {
        Self {
            stall_weight: 2.0,
            switch_weight: 0.5,
            beta: 0.92,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        QoeParams::default().validate().unwrap();
        QoeParams::stall_averse().validate().unwrap();
        QoeParams::quality_seeking().validate().unwrap();
    }

    #[test]
    fn validation_catches_out_of_range() {
        let p = QoeParams {
            stall_weight: 25.0,
            ..QoeParams::default()
        };
        assert!(p.validate().is_err());
        let p = QoeParams {
            switch_weight: -1.0,
            ..QoeParams::default()
        };
        assert!(p.validate().is_err());
        let p = QoeParams {
            beta: 1.5,
            ..QoeParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn clamp_brings_into_range() {
        let p = QoeParams {
            stall_weight: 100.0,
            switch_weight: -3.0,
            beta: 0.0,
        }
        .clamped();
        p.validate().unwrap();
        assert_eq!(p.stall_weight, 20.0);
        assert_eq!(p.switch_weight, 0.0);
        assert_eq!(p.beta, 0.3);
    }

    #[test]
    fn unit_cube_roundtrip() {
        let p = QoeParams {
            stall_weight: 7.5,
            switch_weight: 2.0,
            beta: 0.6,
        };
        let q = QoeParams::from_unit(p.to_unit());
        assert!((p.stall_weight - q.stall_weight).abs() < 1e-12);
        assert!((p.switch_weight - q.switch_weight).abs() < 1e-12);
        assert!((p.beta - q.beta).abs() < 1e-12);
        // Corners map to range edges.
        let lo = QoeParams::from_unit([0.0, 0.0, 0.0]);
        assert_eq!(lo.stall_weight, 1.0);
        assert_eq!(lo.beta, 0.3);
        let hi = QoeParams::from_unit([1.0, 1.0, 1.0]);
        assert_eq!(hi.stall_weight, 20.0);
    }

    #[test]
    fn presets_differ_in_the_right_direction() {
        let averse = QoeParams::stall_averse();
        let seeking = QoeParams::quality_seeking();
        assert!(averse.stall_weight > seeking.stall_weight);
        assert!(averse.beta < seeking.beta);
    }
}
