//! Adaptive-bitrate algorithms and the tunable QoE objective.
//!
//! LingXi is a *plugin over* ABR algorithms: it never chooses bitrates
//! itself, it re-tunes the objective parameters of an underlying ABR
//! (paper §3, §6). This crate supplies those ABRs:
//!
//! | Algorithm | Objective | Tunable parameters |
//! |---|---|---|
//! | [`ThroughputRule`] | implicit | safety margin |
//! | [`Bba`] | implicit (buffer) | reservoir/cushion |
//! | [`Bola`] | explicit utility | `V`, `gamma_p` |
//! | [`Hyb`] | implicit | **β** (aggressiveness, §5.3) |
//! | [`RobustMpc`] | explicit `QoE_lin` | **stall weight μ, switch weight** |
//! | [`Pensieve`] | explicit `QoE_lin` reward | params injected into state (§5.2) |
//!
//! Every algorithm implements [`Abr`], whose `set_params` accepts a
//! [`QoeParams`] — the vector LingXi's Bayesian optimizer searches over.
//!
//! ```
//! use lingxi_abr::{Abr, Hyb, QoeParams};
//!
//! // LingXi's knob on HYB is β (§5.3): parameters round-trip through the
//! // uniform `Abr` interface every algorithm implements.
//! let mut abr = Hyb::default_rule();
//! abr.set_params(QoeParams { beta: 0.5, ..QoeParams::default() });
//! assert_eq!(Abr::params(&abr).beta, 0.5);
//! ```

#![forbid(unsafe_code)]

pub mod abr;
pub mod bba;
pub mod bola;
pub mod hyb;
pub mod mpc;
pub mod params;
pub mod pensieve;
pub mod qoe;
pub mod throughput;

pub use abr::{drive, sync_estimator, Abr, AbrContext};
pub use bba::Bba;
pub use bola::Bola;
pub use hyb::Hyb;
pub use mpc::RobustMpc;
pub use params::QoeParams;
pub use pensieve::{Pensieve, PensieveConfig, PensieveTrainer, TrainStats};
pub use qoe::{qoe_lin_of_log, QoeLin};
pub use throughput::ThroughputRule;

/// Errors from ABR construction.
#[derive(Debug, Clone, PartialEq)]
pub enum AbrError {
    /// Invalid configuration parameter.
    InvalidConfig(String),
}

impl std::fmt::Display for AbrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbrError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for AbrError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AbrError>;
