//! The [`Abr`] trait and the adapter driving any `Abr` through the player's
//! closure-based session runner.

use lingxi_media::{BitrateLadder, SegmentSizes};
use lingxi_player::PlayerEnv;

use crate::params::QoeParams;

/// Per-decision context: everything an ABR may look at besides the player
/// state — the ladder, upcoming segment sizes (for lookahead algorithms)
/// and the index of the segment about to be requested.
pub struct AbrContext<'a> {
    /// The bitrate ladder.
    pub ladder: &'a BitrateLadder,
    /// Per-segment sizes of the current video (lookahead source for MPC).
    pub sizes: &'a SegmentSizes,
    /// Index of the segment about to be downloaded.
    pub next_segment: usize,
    /// Segment duration in seconds.
    pub segment_duration: f64,
}

/// An adaptive-bitrate algorithm.
///
/// Implementations must be deterministic given the same state (Pensieve
/// samples during training but acts greedily at inference).
pub trait Abr: Send {
    /// Choose a level for the next segment.
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize;

    /// Update the tunable objective parameters (LingXi's knob, Alg. 1
    /// line 19: `ABR.update(x*)`).
    fn set_params(&mut self, params: QoeParams);

    /// Current parameters.
    fn params(&self) -> QoeParams;

    /// Reset per-session state (estimator windows etc.).
    fn reset(&mut self);

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Feed an estimator the player's throughput observations it has not seen
/// yet.
///
/// The player exposes a *sliding window* of recent throughputs while
/// estimators count every observation they absorbed, so the number of new
/// samples is `env.segment_index() − estimator.count()`, of which at most
/// the window length is still visible. (Comparing against the window length
/// alone would stop syncing forever once the window fills.)
pub fn sync_estimator<E: lingxi_net::BandwidthEstimator>(estimator: &mut E, env: &PlayerEnv) {
    let total = env.segment_index();
    let seen = estimator.count();
    let new = total.saturating_sub(seen);
    let hist = env.throughput_history();
    let take = new.min(hist.len());
    for &s in hist.iter().skip(hist.len() - take) {
        estimator.observe(s);
    }
}

/// Wrap an [`Abr`] into the closure shape expected by
/// [`lingxi_player::run_session`], binding ladder + sizes for one video.
pub fn drive<'a>(
    abr: &'a mut dyn Abr,
    ladder: &'a BitrateLadder,
    sizes: &'a SegmentSizes,
) -> impl FnMut(&PlayerEnv) -> usize + 'a {
    move |env: &PlayerEnv| {
        let ctx = AbrContext {
            ladder,
            sizes,
            next_segment: env.segment_index(),
            segment_duration: sizes.segment_duration(),
        };
        abr.select(env, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::VbrModel;
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trivial Abr for exercising the adapter.
    struct Fixed(usize, QoeParams);

    impl Abr for Fixed {
        fn select(&mut self, _env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
            self.0.min(ctx.ladder.top_level())
        }
        fn set_params(&mut self, p: QoeParams) {
            self.1 = p;
        }
        fn params(&self) -> QoeParams {
            self.1
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn drive_adapts_trait_to_closure() {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 5, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        let mut abr = Fixed(2, QoeParams::default());
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut f = drive(&mut abr, &ladder, &sizes);
        assert_eq!(f(&env), 2);
    }

    #[test]
    fn params_roundtrip() {
        let mut abr = Fixed(0, QoeParams::default());
        let p = QoeParams::stall_averse();
        abr.set_params(p);
        assert_eq!(abr.params(), p);
    }
}
