//! RobustMPC — model-predictive control over `QoE_lin` (Yin et al.,
//! SIGCOMM'15), the explicit-objective baseline of §5.2.
//!
//! Plans `H` segments ahead by exhaustive search over level sequences,
//! simulating the buffer recursion with a *robust* (error-discounted
//! harmonic-mean) throughput forecast, and scoring candidate futures with
//! `QoE_lin` under the current [`QoeParams`]. LingXi retunes those weights
//! (stall weight μ, switch weight) online.

use lingxi_net::HarmonicMeanEstimator;
use lingxi_player::PlayerEnv;

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::qoe::QoeLin;
use crate::{AbrError, Result};
use lingxi_media::QualityMap;

/// RobustMPC ABR.
#[derive(Debug, Clone)]
pub struct RobustMpc {
    horizon: usize,
    estimator: HarmonicMeanEstimator,
    window: usize,
    params: QoeParams,
    quality: QualityMap,
}

impl RobustMpc {
    /// Create with lookahead `horizon` (the paper's MPC uses 5).
    pub fn new(horizon: usize, window: usize) -> Result<Self> {
        if horizon == 0 || horizon > 8 {
            return Err(AbrError::InvalidConfig(
                "horizon must be in 1..=8 (exhaustive search)".into(),
            ));
        }
        let estimator = HarmonicMeanEstimator::new(window.max(1))
            .map_err(|e| AbrError::InvalidConfig(e.to_string()))?;
        Ok(Self {
            horizon,
            estimator,
            window: window.max(1),
            params: QoeParams::default(),
            quality: QualityMap::LinearMbps,
        })
    }

    /// The canonical 5-segment horizon over an 8-sample window.
    pub fn default_rule() -> Self {
        Self::new(5, 8).expect("static config valid")
    }

    /// Score one candidate plan starting from `buffer0`/`prev_level`.
    #[allow(clippy::too_many_arguments)]
    fn plan_score(
        &self,
        ctx: &AbrContext<'_>,
        plan: &[usize],
        start_segment: usize,
        buffer0: f64,
        prev_level: Option<usize>,
        throughput: f64,
        bmax: f64,
    ) -> f64 {
        let qoe = QoeLin::from_params(&self.params, self.quality);
        let mut buffer = buffer0;
        let mut prev = prev_level;
        let mut score = 0.0;
        for (i, &level) in plan.iter().enumerate() {
            let k = start_segment + i;
            let size = match ctx
                .sizes
                .size_kbits(k.min(ctx.sizes.n_segments() - 1), level)
            {
                Ok(s) => s,
                Err(_) => break,
            };
            let dl = size / throughput;
            let stall = (dl - buffer).max(0.0);
            buffer = ((buffer - dl).max(0.0) + ctx.segment_duration).min(bmax);
            score += qoe.segment_score(ctx.ladder, level, prev, stall);
            prev = Some(level);
        }
        score
    }
}

impl Abr for RobustMpc {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        crate::abr::sync_estimator(&mut self.estimator, env);
        let throughput = match self.estimator.robust_estimate() {
            None => return 0,
            Some(t) => t.max(1.0),
        };
        let n_levels = ctx.ladder.top_level() + 1;
        let remaining = ctx.sizes.n_segments().saturating_sub(ctx.next_segment);
        let depth = self.horizon.min(remaining.max(1));
        // Exhaustive search over level sequences of length `depth`.
        let total: usize = n_levels.pow(depth as u32);
        let mut best_first = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut plan = vec![0usize; depth];
        for code in 0..total {
            let mut c = code;
            for slot in plan.iter_mut() {
                *slot = c % n_levels;
                c /= n_levels;
            }
            let score = self.plan_score(
                ctx,
                &plan,
                ctx.next_segment,
                env.buffer(),
                env.last_level(),
                throughput,
                env.bmax(),
            );
            if score > best_score {
                best_score = score;
                best_first = plan[0];
            }
        }
        best_first
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {
        self.estimator = HarmonicMeanEstimator::new(self.window).expect("window validated");
    }

    fn name(&self) -> &'static str {
        "robust_mpc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 30, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    fn env_with(buffer_target: f64, bandwidth: f64, steps: usize) -> PlayerEnv {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..steps {
            env.step(bandwidth * 0.01, 0, bandwidth, 2.0, &mut rng)
                .unwrap();
            if env.buffer() >= buffer_target {
                break;
            }
        }
        env
    }

    #[test]
    fn cold_start_lowest() {
        let (ladder, sizes) = fixture();
        let mut abr = RobustMpc::default_rule();
        let env = PlayerEnv::new(PlayerConfig::deterministic(20.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn rich_link_plans_high() {
        let (ladder, sizes) = fixture();
        let mut abr = RobustMpc::default_rule();
        let env = env_with(10.0, 30_000.0, 50);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 5,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 3);
    }

    #[test]
    fn poor_link_plans_low() {
        let (ladder, sizes) = fixture();
        let mut abr = RobustMpc::default_rule();
        let env = env_with(2.0, 500.0, 10);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 5,
            segment_duration: 2.0,
        };
        assert!(abr.select(&env, &ctx) <= 1);
    }

    #[test]
    fn high_stall_weight_is_more_conservative() {
        let (ladder, sizes) = fixture();
        // Mid link where the trade-off bites.
        let env = env_with(4.0, 2500.0, 20);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 5,
            segment_duration: 2.0,
        };
        let mut gentle = RobustMpc::default_rule();
        gentle.set_params(QoeParams {
            stall_weight: 1.0,
            ..QoeParams::default()
        });
        let mut harsh = RobustMpc::default_rule();
        harsh.set_params(QoeParams {
            stall_weight: 20.0,
            ..QoeParams::default()
        });
        let lg = gentle.select(&env, &ctx);
        let lh = harsh.select(&env, &ctx);
        assert!(lh <= lg, "harsh {lh} should be <= gentle {lg}");
    }

    #[test]
    fn switch_weight_discourages_oscillation() {
        let (ladder, sizes) = fixture();
        let env = env_with(6.0, 2200.0, 20);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 5,
            segment_duration: 2.0,
        };
        // With an enormous switch weight, MPC should stick near the last
        // level (0, from the warmup steps).
        let mut sticky = RobustMpc::default_rule();
        sticky.set_params(QoeParams {
            switch_weight: 4.0,
            stall_weight: 4.3,
            beta: 0.8,
        });
        let lvl = sticky.select(&env, &ctx);
        let mut loose = RobustMpc::default_rule();
        loose.set_params(QoeParams {
            switch_weight: 0.0,
            stall_weight: 4.3,
            beta: 0.8,
        });
        let lvl_loose = loose.select(&env, &ctx);
        assert!(lvl <= lvl_loose);
    }

    #[test]
    fn constructor_validation() {
        assert!(RobustMpc::new(0, 8).is_err());
        assert!(RobustMpc::new(9, 8).is_err());
        assert!(RobustMpc::new(5, 0).is_ok());
    }

    #[test]
    fn horizon_respects_video_end() {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(3);
        let sizes = SegmentSizes::generate(&ladder, 3, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        let mut abr = RobustMpc::default_rule();
        let env = env_with(6.0, 5000.0, 10);
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 2,
            segment_duration: 2.0,
        };
        // Only 1 segment remains; must not panic.
        let lvl = abr.select(&env, &ctx);
        assert!(lvl <= 3);
    }
}
