//! BOLA — Lyapunov-optimization buffer control (Spiteri et al., ToN'20).
//!
//! BOLA-basic: for buffer level `Q` (in segments) choose the level `m`
//! maximising `(V·(v_m + γp) − Q) / s_m`, where `v_m = ln(S_m / S_min)` is
//! the utility of level `m`, `s_m` its relative size, `V` the
//! buffer-vs-utility trade-off and `γp` the rebuffer-avoidance utility
//! offset. Downloads only levels with positive numerator; otherwise the
//! lowest level (BOLA would idle; a live player must keep requesting).

use lingxi_player::PlayerEnv;

use crate::abr::{Abr, AbrContext};
use crate::params::QoeParams;
use crate::{AbrError, Result};

/// BOLA ABR.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Lyapunov trade-off parameter `V` (bigger = more quality-seeking).
    v: f64,
    /// Rebuffer-penalty utility offset `γp`.
    gamma_p: f64,
    params: QoeParams,
}

impl Bola {
    /// Create with explicit control parameters.
    pub fn new(v: f64, gamma_p: f64) -> Result<Self> {
        if !(v > 0.0) || !(gamma_p >= 0.0) {
            return Err(AbrError::InvalidConfig("V > 0 and gamma_p >= 0".into()));
        }
        Ok(Self {
            v,
            gamma_p,
            params: QoeParams::default(),
        })
    }

    /// A configuration tuned for ~10 s buffers and 4-level ladders.
    pub fn default_rule() -> Self {
        Self::new(0.93, 5.0).expect("static config valid")
    }

    /// Utility of `level`: `ln(S_level / S_0)`.
    fn utility(ctx: &AbrContext<'_>, level: usize) -> f64 {
        let ladder = ctx.ladder;
        let b = ladder.bitrate(level).unwrap_or(1.0);
        (b / ladder.min_bitrate()).ln()
    }
}

impl Abr for Bola {
    fn select(&mut self, env: &PlayerEnv, ctx: &AbrContext<'_>) -> usize {
        let buffer_segments = env.buffer() / ctx.segment_duration;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut any_positive = false;
        for level in 0..=ctx.ladder.top_level() {
            let v_m = Self::utility(ctx, level);
            // Relative size: proportional to bitrate for a fixed duration.
            let s_m = ctx.ladder.bitrate(level).unwrap_or(1.0) / ctx.ladder.min_bitrate();
            let numerator = self.v * (v_m + self.gamma_p) - buffer_segments;
            let score = numerator / s_m;
            if numerator > 0.0 {
                any_positive = true;
            }
            if score > best_score {
                best_score = score;
                best = level;
            }
        }
        if any_positive {
            best
        } else {
            // Buffer above BOLA's pause threshold: hold the top level
            // rather than pausing (live players keep requesting).
            ctx.ladder.top_level()
        }
    }

    fn set_params(&mut self, params: QoeParams) {
        self.params = params;
    }

    fn params(&self) -> QoeParams {
        self.params
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "bola"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, SegmentSizes) {
        let ladder = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = SegmentSizes::generate(&ladder, 10, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        (ladder, sizes)
    }

    fn env_with_buffer(buffer: f64) -> PlayerEnv {
        let mut env = PlayerEnv::new(PlayerConfig::deterministic(30.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        while env.buffer() < buffer {
            env.step(10.0, 0, 1_000_000.0, 2.0, &mut rng).unwrap();
        }
        env
    }

    #[test]
    fn empty_buffer_picks_lowest() {
        let (ladder, sizes) = fixture();
        let mut abr = Bola::default_rule();
        let env = PlayerEnv::new(PlayerConfig::deterministic(30.0, 0.0)).unwrap();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        assert_eq!(abr.select(&env, &ctx), 0);
    }

    #[test]
    fn deeper_buffer_never_lowers_level() {
        let (ladder, sizes) = fixture();
        let mut abr = Bola::default_rule();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let mut prev = 0;
        for b in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0] {
            let env = env_with_buffer(b);
            let lvl = abr.select(&env, &ctx);
            assert!(lvl >= prev, "buffer {b}: {lvl} < {prev}");
            prev = lvl;
        }
        assert_eq!(prev, 3, "deep buffer should reach the top level");
    }

    #[test]
    fn smaller_gamma_p_is_more_aggressive() {
        // gamma_p is the rebuffer-avoidance utility offset: it inflates the
        // value of *any* download, which favours cheap (low) levels. A
        // smaller gamma_p therefore lets utility dominate → higher levels.
        let (ladder, sizes) = fixture();
        let ctx = AbrContext {
            ladder: &ladder,
            sizes: &sizes,
            next_segment: 0,
            segment_duration: 2.0,
        };
        let env = env_with_buffer(4.0);
        let mut protective = Bola::new(0.93, 5.0).unwrap();
        let mut eager = Bola::new(0.93, 1.0).unwrap();
        assert!(eager.select(&env, &ctx) > protective.select(&env, &ctx));
    }

    #[test]
    fn constructor_validation() {
        assert!(Bola::new(0.0, 5.0).is_err());
        assert!(Bola::new(1.0, -1.0).is_err());
    }
}
