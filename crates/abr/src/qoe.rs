//! The linear QoE objective `QoE_lin` (paper Eq. 1).
//!
//! `QoE_lin = Σ_k q(Q_k) − μ Σ_k T_k − Σ_k |q(Q_{k+1}) − q(Q_k)|` — with
//! the switch term additionally weighted when a switch weight is configured
//! (the paper's §5.2 sweeps "switching parameters from 0 to 4").

use lingxi_media::{BitrateLadder, QualityMap};
use lingxi_player::SessionLog;
use serde::{Deserialize, Serialize};

use crate::params::QoeParams;

/// A `QoE_lin` evaluator bound to a ladder and quality map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeLin {
    /// Quality mapping `q(·)`.
    pub quality: QualityMap,
    /// Stall weight μ.
    pub stall_weight: f64,
    /// Switch weight.
    pub switch_weight: f64,
}

impl QoeLin {
    /// Paper-default objective: μ = maximum video quality, switch weight 1.
    pub fn paper_default(ladder: &BitrateLadder) -> Self {
        let quality = QualityMap::LinearMbps;
        Self {
            quality,
            stall_weight: quality.q_max(ladder),
            switch_weight: 1.0,
        }
    }

    /// Build from tunable parameters.
    pub fn from_params(params: &QoeParams, quality: QualityMap) -> Self {
        Self {
            quality,
            stall_weight: params.stall_weight,
            switch_weight: params.switch_weight,
        }
    }

    /// Score one segment transition.
    ///
    /// `prev_level` is `None` for the first segment (no switch term).
    pub fn segment_score(
        &self,
        ladder: &BitrateLadder,
        level: usize,
        prev_level: Option<usize>,
        stall_time: f64,
    ) -> f64 {
        let q = self.quality.q(ladder, level).unwrap_or(0.0);
        let switch = match prev_level {
            Some(p) => self.quality.switch_penalty(ladder, p, level).unwrap_or(0.0),
            None => 0.0,
        };
        q - self.stall_weight * stall_time - self.switch_weight * switch
    }
}

/// Total `QoE_lin` of a finished session.
pub fn qoe_lin_of_log(qoe: &QoeLin, ladder: &BitrateLadder, log: &SessionLog) -> f64 {
    let mut total = 0.0;
    let mut prev: Option<usize> = None;
    for seg in &log.segments {
        total += qoe.segment_score(ladder, seg.level, prev, seg.stall_time);
        prev = Some(seg.level);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_player::{SegmentRecord, SessionLog};

    fn ladder() -> BitrateLadder {
        BitrateLadder::default_short_video()
    }

    fn seg(level: usize, stall: f64, from: Option<usize>) -> SegmentRecord {
        SegmentRecord {
            index: 0,
            level,
            bitrate_kbps: [350.0, 800.0, 1850.0, 4300.0][level],
            size_kbits: 1000.0,
            throughput_kbps: 1000.0,
            download_time: 1.0,
            stall_time: stall,
            buffer_after: 5.0,
            switched_from: from,
        }
    }

    #[test]
    fn paper_default_uses_qmax_as_mu() {
        let l = ladder();
        let q = QoeLin::paper_default(&l);
        assert!((q.stall_weight - 4.3).abs() < 1e-12);
    }

    #[test]
    fn segment_score_components() {
        let l = ladder();
        let q = QoeLin {
            quality: QualityMap::LinearMbps,
            stall_weight: 4.3,
            switch_weight: 1.0,
        };
        // No stall, no switch: pure quality.
        assert!((q.segment_score(&l, 3, Some(3), 0.0) - 4.3).abs() < 1e-12);
        // Stall penalty.
        let s = q.segment_score(&l, 3, Some(3), 1.0);
        assert!((s - (4.3 - 4.3)).abs() < 1e-12);
        // Switch penalty: 3 -> 0 is |0.35 - 4.3| = 3.95.
        let s = q.segment_score(&l, 0, Some(3), 0.0);
        assert!((s - (0.35 - 3.95)).abs() < 1e-12);
        // First segment has no switch term.
        let s = q.segment_score(&l, 0, None, 0.0);
        assert!((s - 0.35).abs() < 1e-12);
    }

    #[test]
    fn log_total_matches_hand_computation() {
        let l = ladder();
        let q = QoeLin {
            quality: QualityMap::LinearMbps,
            stall_weight: 2.0,
            switch_weight: 1.0,
        };
        let log = SessionLog {
            user_id: 0,
            video_id: 0,
            video_duration: 6.0,
            segments: vec![
                seg(1, 0.5, None),
                seg(2, 0.0, Some(1)),
                seg(2, 0.0, Some(2)),
            ],
            watch_time: 6.0,
            end: lingxi_player::log::SessionEnd::Completed,
            exit_segment: None,
        };
        // seg0: 0.8 - 2*0.5 = -0.2 (prev=None in our calculator)
        // seg1: 1.85 - |1.85-0.8| = 0.8
        // seg2: 1.85
        let total = qoe_lin_of_log(&q, &l, &log);
        assert!((total - (-0.2 + 0.8 + 1.85)).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn higher_stall_weight_lowers_score() {
        let l = ladder();
        let log = SessionLog {
            user_id: 0,
            video_id: 0,
            video_duration: 4.0,
            segments: vec![seg(2, 1.0, None), seg(2, 1.0, Some(2))],
            watch_time: 4.0,
            end: lingxi_player::log::SessionEnd::Completed,
            exit_segment: None,
        };
        let gentle = QoeLin {
            quality: QualityMap::LinearMbps,
            stall_weight: 1.0,
            switch_weight: 1.0,
        };
        let harsh = QoeLin {
            quality: QualityMap::LinearMbps,
            stall_weight: 10.0,
            switch_weight: 1.0,
        };
        assert!(qoe_lin_of_log(&harsh, &l, &log) < qoe_lin_of_log(&gentle, &l, &log));
    }

    #[test]
    fn from_params_copies_weights() {
        let p = QoeParams {
            stall_weight: 7.0,
            switch_weight: 2.0,
            beta: 0.8,
        };
        let q = QoeLin::from_params(&p, QualityMap::LinearMbps);
        assert_eq!(q.stall_weight, 7.0);
        assert_eq!(q.switch_weight, 2.0);
    }
}
