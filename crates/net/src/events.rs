//! Deterministic event queues for discrete-event kernels.
//!
//! The fleet contention kernel interleaves two event sources per link:
//! projected flow completions (owned by [`crate::SharedBottleneck`]) and
//! scheduled request arrivals. Arrivals need a priority queue keyed by
//! `(time, user id)` with a fully deterministic pop order — the shard
//! invariance and golden-regression tests pin the merged metrics down to
//! the last bit, so "roughly sorted" is not an option.
//!
//! [`EventQueue`] is that contract as a trait, with two interchangeable
//! implementations:
//!
//! - [`BinaryHeapQueue`]: the obvious `BinaryHeap<Reverse<_>>` reference.
//!   O(log n) per operation, allocation-light, and trivially correct — CI
//!   runs the fleet suite against it via the `reference-heap` feature to
//!   enforce equivalence.
//! - [`TimerWheel`]: a hierarchical timer wheel (4 levels × 64 slots,
//!   1/16 s ticks) with a calendar-style overflow list for events beyond
//!   the wheel horizon (~12 days of virtual time). Pushes into future
//!   slots are O(1); pop cost amortizes the per-slot sort over the (tiny)
//!   slot population. Events inside one tick are ordered exactly by
//!   `(time, id)`, so the pop order is *identical* to the heap's — a
//!   property the proptest suite in `tests/event_queue_props.rs` checks
//!   against arbitrary workloads, including tie storms.
//!
//! Both queues require every pushed `(time, id)` key to be unique and
//! `time` to be non-negative and finite; the kernel's keys are
//! per-user next-request times, which satisfy both by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-queue of timed events keyed by `(time, id)`.
///
/// `peek` takes `&mut self` so lazily-organized implementations (the
/// timer wheel) can surface the next key without a separate pop path.
pub trait EventQueue<T> {
    /// Schedule `value` at absolute time `at` (seconds). Keys must be
    /// unique: pushing two events with identical `(at, id)` is a contract
    /// violation (the relative order of such events is unspecified).
    fn push(&mut self, at: f64, id: u64, value: T);

    /// The earliest `(time, id)` key, without removing it.
    fn peek(&mut self) -> Option<(f64, u64)>;

    /// Remove and return the earliest event.
    fn pop(&mut self) -> Option<(f64, u64, T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events, retaining allocations where possible.
    fn clear(&mut self);
}

/// One queued event.
#[derive(Debug, Clone)]
struct Ev<T> {
    at: f64,
    id: u64,
    value: T,
}

impl<T> Ev<T> {
    fn key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.id.cmp(&other.id))
    }
}

impl<T> PartialEq for Ev<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other).is_eq()
    }
}

impl<T> Eq for Ev<T> {}

impl<T> PartialOrd for Ev<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Ev<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_cmp(other)
    }
}

/// Reference [`EventQueue`]: a plain binary min-heap.
#[derive(Debug)]
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<Reverse<Ev<T>>>,
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> EventQueue<T> for BinaryHeapQueue<T> {
    fn push(&mut self, at: f64, id: u64, value: T) {
        self.heap.push(Reverse(Ev { at, id, value }));
    }

    fn peek(&mut self) -> Option<(f64, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.id))
    }

    fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.id, e.value))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Wheel geometry: 64 slots per level, 4 levels, 16 ticks per second.
///
/// Level `l` covers `64^(l+1)` ticks; the whole wheel spans
/// `64^4 / 16 ≈ 1.05e6` seconds (~12 days) past the cursor. Anything
/// beyond that parks in the overflow list and re-enters the wheel when
/// the nearer levels drain.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
const LEVELS: usize = 4;
const TICKS_PER_SEC: f64 = 16.0;

/// Hierarchical timer wheel with calendar-queue overflow.
///
/// Invariants (maintained by `push`/`reload`):
/// - `cur` is the tick of the slot currently draining into `current`.
/// - Events with tick ≤ `cur` live in `current`, sorted descending by
///   `(at, id)` so `pop` takes from the back.
/// - An event with tick `t > cur` lives at the lowest level `l` where
///   `t >> 6·(l+1) == cur >> 6·(l+1)` (slot `(t >> 6·l) & 63`), or in
///   `overflow` if no level contains it. All occupied slots at level `l`
///   are strictly after the cursor's level-`l` index within its block.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<Ev<T>>>,
    /// Bitmask of non-empty slots per level.
    occupied: [u64; LEVELS],
    /// Tick of the slot currently being drained.
    cur: u64,
    /// Events of the current slot, sorted descending by `(at, id)`.
    current: Vec<Ev<T>>,
    /// Events beyond the wheel horizon.
    overflow: Vec<Ev<T>>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> Self {
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cur: 0,
            current: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    fn tick_of(at: f64) -> u64 {
        debug_assert!(at >= 0.0 && at.is_finite(), "event time {at} out of domain");
        // Saturating f64→u64 cast; same-tick events are ordered by their
        // exact (at, id) inside the bucket, so tick granularity never
        // affects pop order.
        (at * TICKS_PER_SEC) as u64
    }

    /// File an event relative to the cursor: `current` for ticks at or
    /// before it, the lowest level whose block contains the tick, or the
    /// overflow list.
    fn place(&mut self, ev: Ev<T>) {
        let t = Self::tick_of(ev.at);
        if t <= self.cur {
            // Late (or current-tick) event: merge into the drain buffer at
            // its sorted position so pop order stays exact.
            let pos = self
                .current
                .partition_point(|e| e.key_cmp(&ev) == std::cmp::Ordering::Greater);
            self.current.insert(pos, ev);
            return;
        }
        for level in 0..LEVELS {
            let block_shift = SLOT_BITS * (level as u32 + 1);
            if t >> block_shift == self.cur >> block_shift {
                let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
                self.slots[level * SLOTS + slot].push(ev);
                self.occupied[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(ev);
    }

    /// Refill `current` from the next occupied slot, cascading outer
    /// levels inward and re-seeding from the overflow list as needed.
    /// Pre-condition: `current` is empty and at least one event pends.
    fn reload(&mut self) {
        loop {
            // Lowest occupied level-0 slot is the next cursor position:
            // every bit is strictly after the cursor's index (invariant).
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                self.occupied[0] &= !(1u64 << slot);
                self.cur = (self.cur & !SLOT_MASK) | slot as u64;
                let idx = slot; // level 0
                self.current.append(&mut self.slots[idx]);
                self.current.sort_unstable_by(|a, b| b.key_cmp(a));
                return;
            }
            // Cascade: pull the next occupied outer slot over the cursor
            // and redistribute its bucket to the levels below.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if self.occupied[level] == 0 {
                    continue;
                }
                let slot = self.occupied[level].trailing_zeros() as usize;
                self.occupied[level] &= !(1u64 << slot);
                let shift = SLOT_BITS * level as u32;
                let block_shift = SLOT_BITS * (level as u32 + 1);
                self.cur = ((self.cur >> block_shift) << block_shift) | ((slot as u64) << shift);
                let idx = level * SLOTS + slot;
                let bucket = std::mem::take(&mut self.slots[idx]);
                for ev in bucket {
                    self.place(ev);
                }
                cascaded = true;
                break;
            }
            if cascaded {
                // place() may have filed events into `current` directly
                // (block-start ticks equal the new cursor).
                if !self.current.is_empty() {
                    self.current.sort_unstable_by(|a, b| b.key_cmp(a));
                    return;
                }
                continue;
            }
            // Wheel empty: re-seed from the overflow horizon.
            assert!(
                !self.overflow.is_empty(),
                "reload called on an empty TimerWheel"
            );
            let min_tick = self
                .overflow
                .iter()
                .map(|e| Self::tick_of(e.at))
                .min()
                .expect("overflow checked non-empty");
            // Jump the cursor onto the earliest parked tick: its events
            // re-file into `current` (tick ≤ cursor), so every re-seed
            // makes progress even when the tick sits on a block boundary
            // no wheel level can represent relative to `min_tick - 1`.
            self.cur = min_tick;
            let parked = std::mem::take(&mut self.overflow);
            for ev in parked {
                self.place(ev);
            }
            if !self.current.is_empty() {
                self.current.sort_unstable_by(|a, b| b.key_cmp(a));
                return;
            }
        }
    }
}

impl<T> EventQueue<T> for TimerWheel<T> {
    fn push(&mut self, at: f64, id: u64, value: T) {
        self.place(Ev { at, id, value });
        self.len += 1;
    }

    fn peek(&mut self) -> Option<(f64, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.reload();
        }
        self.current.last().map(|e| (e.at, e.id))
    }

    fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.reload();
        }
        let ev = self.current.pop().expect("reload fills current");
        self.len -= 1;
        Some((ev.at, ev.id, ev.value))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        self.cur = 0;
        self.current.clear();
        self.overflow.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(f64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn heap_and_wheel_agree_on_mixed_workload() {
        let mut heap = BinaryHeapQueue::new();
        let mut wheel = TimerWheel::new();
        let times = [
            0.0, 0.001, 12.5, 12.5, 3.99, 4.0, 4.0625, 700.0, 7.0e5, 2.0e6, 0.0,
        ];
        for (i, &at) in times.iter().enumerate() {
            heap.push(at, i as u64, i as u32);
            wheel.push(at, i as u64, i as u32);
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(drain(&mut heap), drain(&mut wheel));
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn wheel_orders_ties_by_id() {
        let mut wheel = TimerWheel::new();
        for id in (0..50u64).rev() {
            wheel.push(5.0, id, id as u32);
        }
        for want in 0..50u64 {
            let (at, id, _) = wheel.pop().unwrap();
            assert_eq!((at, id), (5.0, want));
        }
    }

    #[test]
    fn wheel_handles_interleaved_push_pop_and_late_pushes() {
        let mut heap = BinaryHeapQueue::new();
        let mut wheel = TimerWheel::new();
        let mut id = 0u64;
        let mut push_both = |h: &mut BinaryHeapQueue<u32>, w: &mut TimerWheel<u32>, at: f64| {
            h.push(at, id, id as u32);
            w.push(at, id, id as u32);
            id += 1;
        };
        for k in 0..40 {
            push_both(&mut heap, &mut wheel, 10.0 + k as f64 * 3.7);
        }
        for _ in 0..20 {
            assert_eq!(heap.pop(), wheel.pop());
        }
        // Pushes earlier than everything already popped ("late" events).
        push_both(&mut heap, &mut wheel, 0.5);
        push_both(&mut heap, &mut wheel, 11.0);
        assert_eq!(heap.peek(), wheel.peek());
        assert_eq!(drain(&mut heap), drain(&mut wheel));
    }

    #[test]
    fn clear_resets_the_wheel() {
        let mut wheel = TimerWheel::new();
        wheel.push(9.0, 1, 1u32);
        wheel.push(1.0e7, 2, 2u32);
        wheel.pop();
        wheel.clear();
        assert!(wheel.pop().is_none());
        assert_eq!(wheel.len(), 0);
        wheel.push(2.0, 3, 3u32);
        assert_eq!(wheel.pop(), Some((2.0, 3, 3u32)));
    }
}
