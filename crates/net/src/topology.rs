//! Multi-hop topologies and the Kleinrock-independence delay model.
//!
//! A [`Topology`] is a small fixed network: a list of links (capacity +
//! propagation delay) and a list of routes, each route an ordered list of
//! 1–3 hops. Flows are pinned to a route; their rate is constrained by
//! every link on the path (see [`crate::FairnessObjective`] and the
//! allocator in [`crate::fairness`]), and their end-to-end delay and
//! jitter compose per-hop under the Kleinrock independence approximation:
//! each hop is treated as an independent M/M/1-style queue, so path delay
//! is the sum of per-hop `propagation + service/(1 − ρ)` terms and path
//! jitter the sum of per-hop `service·ρ/(1 − ρ)` terms.
//!
//! The degenerate case — one link, one route — is exactly the classic
//! single-bottleneck [`crate::SharedBottleneck`]; `Topology::single_link`
//! builds it, and the allocator dispatches it to the bit-exact legacy
//! water-fill walk.
//!
//! ```
//! use lingxi_net::{TopoLink, Topology};
//!
//! let topo = Topology::new(
//!     vec![
//!         TopoLink::new(12_000.0, 0.004),
//!         TopoLink::new(45_000.0, 0.012),
//!     ],
//!     vec![vec![0, 1], vec![1]],
//! )
//! .unwrap();
//! assert_eq!(topo.n_links(), 2);
//! assert!((topo.min_capacity_on(0) - 12_000.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use crate::{NetError, Result};

/// Maximum hops per route. The ISSUE's topologies are small pods; a hard
/// bound keeps the allocator's per-event cost trivially bounded.
pub const MAX_HOPS: usize = 3;

/// Nominal packet size used by the Kleinrock per-hop service time, in
/// kbits (1500 bytes).
pub const KLEINROCK_PACKET_KBITS: f64 = 12.0;

/// Utilization clamp for the M/M/1-style terms: `1/(1 − ρ)` diverges at
/// ρ = 1, so offered loads at or above capacity saturate at this value.
pub const RHO_MAX: f64 = 0.95;

/// One directed link: a capacity and a propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopoLink {
    /// Link capacity (kbps). Must be positive and finite.
    pub capacity_kbps: f64,
    /// One-way propagation delay (seconds). Must be finite and ≥ 0.
    pub prop_delay_s: f64,
}

impl TopoLink {
    /// Construct a link (validated by [`Topology::new`]).
    pub fn new(capacity_kbps: f64, prop_delay_s: f64) -> Self {
        Self {
            capacity_kbps,
            prop_delay_s,
        }
    }

    /// Kleinrock per-hop service time of the nominal packet (seconds).
    fn service_s(&self) -> f64 {
        KLEINROCK_PACKET_KBITS / self.capacity_kbps
    }

    /// Per-hop M/M/1-style queueing terms at utilization `rho`:
    /// `(delay, jitter) = (prop + s/(1 − ρ), s·ρ/(1 − ρ))` with ρ clamped
    /// into `[0, RHO_MAX]`. Jitter is exactly zero on an unloaded hop.
    pub fn hop_delay_jitter(&self, rho: f64) -> (f64, f64) {
        let rho = rho.clamp(0.0, RHO_MAX);
        let s = self.service_s();
        let residual = 1.0 - rho;
        (self.prop_delay_s + s / residual, s * rho / residual)
    }
}

/// A fixed set of links plus the routes flows may take over them.
///
/// Routes are per *flow class*, not per flow: every flow carries a route
/// index, and the allocator constrains its rate by each link on that
/// route. Validation guarantees 1–[`MAX_HOPS`] hops, in-range link
/// indices and no repeated link within a route, so the allocator can walk
/// routes without bounds checks failing mid-solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    links: Vec<TopoLink>,
    routes: Vec<Vec<u16>>,
}

impl Topology {
    /// Build and validate a topology.
    pub fn new(links: Vec<TopoLink>, routes: Vec<Vec<u16>>) -> Result<Self> {
        if links.is_empty() {
            return Err(NetError::InvalidConfig(
                "topology needs at least one link".into(),
            ));
        }
        if links.len() > u16::MAX as usize {
            return Err(NetError::InvalidConfig("too many links".into()));
        }
        for (i, link) in links.iter().enumerate() {
            if !(link.capacity_kbps > 0.0) || !link.capacity_kbps.is_finite() {
                return Err(NetError::InvalidConfig(format!(
                    "link {i}: capacity must be positive and finite"
                )));
            }
            if !(link.prop_delay_s >= 0.0) || !link.prop_delay_s.is_finite() {
                return Err(NetError::InvalidConfig(format!(
                    "link {i}: propagation delay must be finite and non-negative"
                )));
            }
        }
        if routes.is_empty() {
            return Err(NetError::InvalidConfig(
                "topology needs at least one route".into(),
            ));
        }
        for (r, route) in routes.iter().enumerate() {
            if route.is_empty() || route.len() > MAX_HOPS {
                return Err(NetError::InvalidConfig(format!(
                    "route {r}: must have 1..={MAX_HOPS} hops"
                )));
            }
            for (h, &l) in route.iter().enumerate() {
                if l as usize >= links.len() {
                    return Err(NetError::InvalidConfig(format!(
                        "route {r}: hop {h} references missing link {l}"
                    )));
                }
                if route[..h].contains(&l) {
                    return Err(NetError::InvalidConfig(format!(
                        "route {r}: link {l} appears twice"
                    )));
                }
            }
        }
        Ok(Self { links, routes })
    }

    /// The degenerate 1-link / 1-route topology behind the classic
    /// [`crate::SharedBottleneck`]: one link with zero propagation delay
    /// and the single route `[0]`.
    pub fn single_link(capacity_kbps: f64) -> Result<Self> {
        Self::new(vec![TopoLink::new(capacity_kbps, 0.0)], vec![vec![0]])
    }

    /// True for the degenerate single-link topology (validation forces
    /// every route of a 1-link topology to be `[0]`).
    pub fn is_single_link(&self) -> bool {
        self.links.len() == 1
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Number of routes.
    pub fn n_routes(&self) -> usize {
        self.routes.len()
    }

    /// The links.
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// The hops of route `route` (panics on an out-of-range index; route
    /// indices are validated at flow admission).
    pub fn route(&self, route: u16) -> &[u16] {
        &self.routes[route as usize]
    }

    /// Smallest link capacity along route `route` (kbps) — an upper bound
    /// on any flow's rate on that route.
    pub fn min_capacity_on(&self, route: u16) -> f64 {
        let mut c = f64::INFINITY;
        for &l in self.route(route) {
            c = c.min(self.links[l as usize].capacity_kbps);
        }
        c
    }

    /// A copy with every link capacity multiplied by `factor` (routes and
    /// propagation delays unchanged). The fleet uses this to instantiate
    /// one topology template per link class.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !(factor > 0.0) || !factor.is_finite() {
            return Err(NetError::InvalidConfig(
                "topology scale factor must be positive and finite".into(),
            ));
        }
        let links = self
            .links
            .iter()
            .map(|l| TopoLink::new(l.capacity_kbps * factor, l.prop_delay_s))
            .collect();
        Self::new(links, self.routes.clone())
    }

    /// End-to-end `(delay, jitter)` of route `route` (seconds) under the
    /// Kleinrock independence approximation, given per-link utilizations
    /// (`rho[l]` for link `l`; values outside `[0, RHO_MAX]` are clamped).
    /// Both quantities are sums of the per-hop terms in hop order.
    pub fn path_delay_jitter(&self, route: u16, rho: &[f64]) -> (f64, f64) {
        let mut delay = 0.0;
        let mut jitter = 0.0;
        for &l in self.route(route) {
            let r = rho.get(l as usize).copied().unwrap_or(0.0);
            let (d, j) = self.links[l as usize].hop_delay_jitter(r);
            delay += d;
            jitter += j;
        }
        (delay, jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(Topology::new(vec![], vec![vec![0]]).is_err());
        assert!(Topology::new(vec![TopoLink::new(1000.0, 0.0)], vec![]).is_err());
        assert!(Topology::new(vec![TopoLink::new(0.0, 0.0)], vec![vec![0]]).is_err());
        assert!(Topology::new(vec![TopoLink::new(1000.0, -0.1)], vec![vec![0]]).is_err());
        assert!(Topology::new(vec![TopoLink::new(1000.0, 0.0)], vec![vec![]]).is_err());
        assert!(Topology::new(vec![TopoLink::new(1000.0, 0.0)], vec![vec![1]]).is_err());
        // A link may not repeat within a route.
        assert!(Topology::new(vec![TopoLink::new(1000.0, 0.0)], vec![vec![0, 0]]).is_err());
        // More than MAX_HOPS hops.
        let links = vec![
            TopoLink::new(1000.0, 0.0),
            TopoLink::new(1000.0, 0.0),
            TopoLink::new(1000.0, 0.0),
            TopoLink::new(1000.0, 0.0),
        ];
        assert!(Topology::new(links, vec![vec![0, 1, 2, 3]]).is_err());
        assert!(Topology::single_link(f64::NAN).is_err());
    }

    #[test]
    fn single_link_is_degenerate() {
        let t = Topology::single_link(9000.0).unwrap();
        assert!(t.is_single_link());
        assert_eq!(t.n_links(), 1);
        assert_eq!(t.n_routes(), 1);
        assert_eq!(t.route(0), &[0]);
        assert_eq!(t.min_capacity_on(0), 9000.0);
    }

    #[test]
    fn scaled_multiplies_capacities_only() {
        let t = Topology::new(
            vec![
                TopoLink::new(12_000.0, 0.004),
                TopoLink::new(45_000.0, 0.012),
            ],
            vec![vec![0, 1], vec![1]],
        )
        .unwrap();
        let s = t.scaled(2.0).unwrap();
        assert_eq!(s.links()[0].capacity_kbps, 24_000.0);
        assert_eq!(s.links()[1].capacity_kbps, 90_000.0);
        assert_eq!(s.links()[0].prop_delay_s, 0.004);
        assert_eq!(s.route(0), t.route(0));
        assert!(t.scaled(0.0).is_err());
    }

    #[test]
    fn two_hop_delay_is_sum_of_per_hop_terms() {
        // Hand-computed fixture: hop 0 has s = 12/12000 = 1 ms at ρ = 0.5,
        // hop 1 has s = 12/24000 = 0.5 ms at ρ = 0.25.
        let t = Topology::new(
            vec![
                TopoLink::new(12_000.0, 0.005),
                TopoLink::new(24_000.0, 0.010),
            ],
            vec![vec![0, 1]],
        )
        .unwrap();
        let rho = [0.5, 0.25];
        let (d, j) = t.path_delay_jitter(0, &rho);
        // d0 = 0.005 + 0.001/0.5 = 0.007; d1 = 0.010 + 0.0005/0.75.
        let d0 = 0.005 + 0.001 / 0.5;
        let d1 = 0.010 + 0.0005 / 0.75;
        assert!((d - (d0 + d1)).abs() < 1e-15, "delay {d}");
        // j0 = 0.001·0.5/0.5 = 0.001; j1 = 0.0005·0.25/0.75.
        let j0 = 0.001 * 0.5 / 0.5;
        let j1 = 0.0005 * 0.25 / 0.75;
        assert!((j - (j0 + j1)).abs() < 1e-15, "jitter {j}");
        // The path terms equal the sum of independent per-hop calls.
        let (h0d, h0j) = t.links()[0].hop_delay_jitter(0.5);
        let (h1d, h1j) = t.links()[1].hop_delay_jitter(0.25);
        assert_eq!(d, h0d + h1d);
        assert_eq!(j, h0j + h1j);
    }

    #[test]
    fn unloaded_hops_have_zero_jitter_and_propagation_plus_service_delay() {
        let t = Topology::new(
            vec![
                TopoLink::new(12_000.0, 0.005),
                TopoLink::new(24_000.0, 0.010),
            ],
            vec![vec![0, 1]],
        )
        .unwrap();
        let (d, j) = t.path_delay_jitter(0, &[0.0, 0.0]);
        assert_eq!(j, 0.0, "unloaded hops must contribute exactly zero jitter");
        let want = 0.005 + 12.0 / 12_000.0 + 0.010 + 12.0 / 24_000.0;
        assert!((d - want).abs() < 1e-15);
    }

    #[test]
    fn utilization_is_clamped_at_rho_max() {
        let l = TopoLink::new(10_000.0, 0.0);
        let (d_hot, j_hot) = l.hop_delay_jitter(1.7);
        let (d_max, j_max) = l.hop_delay_jitter(RHO_MAX);
        assert_eq!(d_hot, d_max);
        assert_eq!(j_hot, j_max);
        assert!(d_hot.is_finite() && j_hot.is_finite());
    }
}
