//! Synthetic bandwidth-trace generators.
//!
//! Four regimes cover the behaviours that matter to an ABR: stationary
//! noise (stable WiFi), two-state Markov bursts (cellular handover /
//! congestion), log-normal fading (wireless) and a bounded random walk
//! (slow drift). The production mixture (`mixture` module) composes them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::BandwidthTrace;
use crate::{NetError, Result};

/// Common interface for trace generators.
pub trait TraceGenerator {
    /// Generate `n` samples at `tick_seconds` spacing.
    fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace>;

    /// The long-run mean bandwidth this generator targets (kbps).
    fn target_mean(&self) -> f64;
}

const MIN_KBPS: f64 = 10.0;

fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// IID Gaussian samples clamped positive: `N(mean, (cv*mean)^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StationaryGaussGen {
    /// Mean bandwidth (kbps).
    pub mean_kbps: f64,
    /// Coefficient of variation (sigma / mean), >= 0.
    pub cv: f64,
}

impl TraceGenerator for StationaryGaussGen {
    fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace> {
        if !(self.mean_kbps > 0.0) || !(self.cv >= 0.0) {
            return Err(NetError::InvalidConfig(
                "mean > 0 and cv >= 0 required".into(),
            ));
        }
        let sigma = self.cv * self.mean_kbps;
        let samples = (0..n.max(1))
            .map(|_| (self.mean_kbps + sigma * box_muller(rng)).max(MIN_KBPS))
            .collect();
        BandwidthTrace::new(tick_seconds, samples)
    }

    fn target_mean(&self) -> f64 {
        self.mean_kbps
    }
}

/// Two-state (good/bad) Markov-modulated bandwidth with Gaussian noise in
/// each state — the classic cellular burst model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovGen {
    /// Good-state mean (kbps).
    pub good_kbps: f64,
    /// Bad-state mean (kbps).
    pub bad_kbps: f64,
    /// P(good -> bad) per tick.
    pub p_gb: f64,
    /// P(bad -> good) per tick.
    pub p_bg: f64,
    /// Relative in-state noise.
    pub cv: f64,
}

impl MarkovGen {
    fn stationary_good_prob(&self) -> f64 {
        // pi_good = p_bg / (p_gb + p_bg)
        if self.p_gb + self.p_bg == 0.0 {
            1.0
        } else {
            self.p_bg / (self.p_gb + self.p_bg)
        }
    }
}

impl TraceGenerator for MarkovGen {
    fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace> {
        if !(self.good_kbps > 0.0 && self.bad_kbps > 0.0) {
            return Err(NetError::InvalidConfig(
                "state means must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.p_gb) || !(0.0..=1.0).contains(&self.p_bg) {
            return Err(NetError::InvalidConfig(
                "transition probabilities must be in [0,1]".into(),
            ));
        }
        if !(self.cv >= 0.0) {
            return Err(NetError::InvalidConfig("cv must be >= 0".into()));
        }
        let mut good = rng.gen::<f64>() < self.stationary_good_prob();
        let mut samples = Vec::with_capacity(n.max(1));
        for _ in 0..n.max(1) {
            let mean = if good { self.good_kbps } else { self.bad_kbps };
            samples.push((mean * (1.0 + self.cv * box_muller(rng))).max(MIN_KBPS));
            let flip = if good { self.p_gb } else { self.p_bg };
            if rng.gen::<f64>() < flip {
                good = !good;
            }
        }
        BandwidthTrace::new(tick_seconds, samples)
    }

    fn target_mean(&self) -> f64 {
        let pg = self.stationary_good_prob();
        pg * self.good_kbps + (1.0 - pg) * self.bad_kbps
    }
}

/// IID log-normal fading with the requested linear-space mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalFadeGen {
    /// Linear-space mean (kbps).
    pub mean_kbps: f64,
    /// Linear-space coefficient of variation.
    pub cv: f64,
}

impl TraceGenerator for LogNormalFadeGen {
    fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace> {
        if !(self.mean_kbps > 0.0) || !(self.cv >= 0.0) {
            return Err(NetError::InvalidConfig(
                "mean > 0 and cv >= 0 required".into(),
            ));
        }
        let sigma = (self.cv * self.cv + 1.0).ln().sqrt();
        let mu = self.mean_kbps.ln() - sigma * sigma / 2.0;
        let samples = (0..n.max(1))
            .map(|_| (mu + sigma * box_muller(rng)).exp().max(MIN_KBPS))
            .collect();
        BandwidthTrace::new(tick_seconds, samples)
    }

    fn target_mean(&self) -> f64 {
        self.mean_kbps
    }
}

/// Mean-reverting bounded random walk (Ornstein-Uhlenbeck style drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkGen {
    /// Long-run mean (kbps).
    pub mean_kbps: f64,
    /// Per-tick noise as a fraction of the mean.
    pub step_cv: f64,
    /// Mean-reversion strength in `(0, 1]`.
    pub reversion: f64,
}

impl TraceGenerator for RandomWalkGen {
    fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace> {
        if !(self.mean_kbps > 0.0) || !(self.step_cv >= 0.0) {
            return Err(NetError::InvalidConfig("mean > 0, step_cv >= 0".into()));
        }
        if !(self.reversion > 0.0 && self.reversion <= 1.0) {
            return Err(NetError::InvalidConfig("reversion must be in (0,1]".into()));
        }
        let mut x = self.mean_kbps;
        let step = self.step_cv * self.mean_kbps;
        let lo = self.mean_kbps * 0.2;
        let hi = self.mean_kbps * 3.0;
        let samples = (0..n.max(1))
            .map(|_| {
                x += self.reversion * (self.mean_kbps - x) + step * box_muller(rng);
                x = x.clamp(lo.max(MIN_KBPS), hi);
                x
            })
            .collect();
        BandwidthTrace::new(tick_seconds, samples)
    }

    fn target_mean(&self) -> f64 {
        self.mean_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_mean<G: TraceGenerator>(g: &G, tolerance: f64) {
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(20_000, 1.0, &mut rng).unwrap();
        let m = t.mean();
        let target = g.target_mean();
        assert!(
            (m - target).abs() / target < tolerance,
            "mean {m} vs target {target}"
        );
        assert!(t.samples().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn gauss_mean_and_positivity() {
        check_mean(
            &StationaryGaussGen {
                mean_kbps: 8000.0,
                cv: 0.3,
            },
            0.02,
        );
    }

    #[test]
    fn markov_stationary_mean() {
        check_mean(
            &MarkovGen {
                good_kbps: 10_000.0,
                bad_kbps: 1000.0,
                p_gb: 0.05,
                p_bg: 0.2,
                cv: 0.1,
            },
            0.06,
        );
    }

    #[test]
    fn markov_visits_both_states() {
        let g = MarkovGen {
            good_kbps: 10_000.0,
            bad_kbps: 500.0,
            p_gb: 0.1,
            p_bg: 0.1,
            cv: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let t = g.generate(5000, 1.0, &mut rng).unwrap();
        let lows = t.samples().iter().filter(|&&s| s < 2000.0).count();
        let highs = t.samples().iter().filter(|&&s| s > 8000.0).count();
        assert!(lows > 500, "lows {lows}");
        assert!(highs > 500, "highs {highs}");
    }

    #[test]
    fn lognormal_mean() {
        check_mean(
            &LogNormalFadeGen {
                mean_kbps: 4000.0,
                cv: 0.8,
            },
            0.05,
        );
    }

    #[test]
    fn random_walk_stays_bounded() {
        let g = RandomWalkGen {
            mean_kbps: 5000.0,
            step_cv: 0.1,
            reversion: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let t = g.generate(10_000, 1.0, &mut rng).unwrap();
        assert!(t
            .samples()
            .iter()
            .all(|&s| (1000.0..=15_000.0).contains(&s)));
        let m = t.mean();
        assert!((m - 5000.0).abs() / 5000.0 < 0.15, "mean {m}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(StationaryGaussGen {
            mean_kbps: 0.0,
            cv: 0.1
        }
        .generate(10, 1.0, &mut rng)
        .is_err());
        assert!(MarkovGen {
            good_kbps: 1.0,
            bad_kbps: 1.0,
            p_gb: 1.5,
            p_bg: 0.1,
            cv: 0.0
        }
        .generate(10, 1.0, &mut rng)
        .is_err());
        assert!(RandomWalkGen {
            mean_kbps: 1.0,
            step_cv: 0.1,
            reversion: 0.0
        }
        .generate(10, 1.0, &mut rng)
        .is_err());
    }

    #[test]
    fn deterministic_generation() {
        let g = LogNormalFadeGen {
            mean_kbps: 3000.0,
            cv: 0.5,
        };
        let a = g.generate(100, 1.0, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = g.generate(100, 1.0, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }
}
