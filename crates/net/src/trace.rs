//! Bandwidth traces: a piecewise-constant throughput timeline.

use serde::{Deserialize, Serialize};

use crate::{NetError, Result};

/// A bandwidth trace: throughput samples (kbps) at a fixed tick interval.
///
/// Lookups past the end wrap around (the convention of the Pensieve /
/// MPC evaluation harnesses, which loop traces to cover long sessions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    tick_seconds: f64,
    samples_kbps: Vec<f64>,
}

impl BandwidthTrace {
    /// Build a trace; all samples must be positive and finite.
    pub fn new(tick_seconds: f64, samples_kbps: Vec<f64>) -> Result<Self> {
        if samples_kbps.is_empty() {
            return Err(NetError::Empty);
        }
        if !(tick_seconds > 0.0) || !tick_seconds.is_finite() {
            return Err(NetError::InvalidConfig("tick must be positive".into()));
        }
        if samples_kbps.iter().any(|&s| !(s > 0.0) || !s.is_finite()) {
            return Err(NetError::InvalidConfig(
                "samples must be positive and finite".into(),
            ));
        }
        Ok(Self {
            tick_seconds,
            samples_kbps,
        })
    }

    /// Constant-bandwidth trace.
    pub fn constant(kbps: f64, n: usize, tick_seconds: f64) -> Result<Self> {
        Self::new(tick_seconds, vec![kbps; n.max(1)])
    }

    /// Throughput at absolute time `t` seconds (wrapping).
    pub fn at(&self, t: f64) -> f64 {
        let idx = (t.max(0.0) / self.tick_seconds) as usize;
        self.samples_kbps[idx % self.samples_kbps.len()]
    }

    /// Mean throughput needed to download `kbits` starting at time `t`,
    /// integrating across tick boundaries (wrapping). Returns the download
    /// duration in seconds.
    pub fn download_time(&self, t_start: f64, kbits: f64) -> f64 {
        if kbits <= 0.0 {
            return 0.0;
        }
        let mut remaining = kbits;
        let mut t = t_start.max(0.0);
        // Track the tick as an integer: recomputing boundaries from `t`
        // can stall at zero-width spans when `tick_seconds` has no exact
        // float representation (floor(t/tick)·tick + tick == t).
        let first_tick = (t / self.tick_seconds) as usize;
        let mut elapsed = 0.0;
        // Hard cap to keep pathological inputs bounded.
        for tick_idx in first_tick..first_tick + 1_000_000 {
            let rate = self.samples_kbps[tick_idx % self.samples_kbps.len()];
            let tick_end = (tick_idx + 1) as f64 * self.tick_seconds;
            let span = (tick_end - t).max(0.0);
            let capacity = rate * span;
            if capacity >= remaining {
                return elapsed + remaining / rate;
            }
            remaining -= capacity;
            elapsed += span;
            t = tick_end;
        }
        elapsed
    }

    /// Raw samples (kbps).
    pub fn samples(&self) -> &[f64] {
        &self.samples_kbps
    }

    /// Tick interval in seconds.
    pub fn tick_seconds(&self) -> f64 {
        self.tick_seconds
    }

    /// Trace duration in seconds (one full cycle).
    pub fn duration(&self) -> f64 {
        self.samples_kbps.len() as f64 * self.tick_seconds
    }

    /// Mean sample (kbps).
    pub fn mean(&self) -> f64 {
        self.samples_kbps.iter().sum::<f64>() / self.samples_kbps.len() as f64
    }

    /// Population standard deviation of samples (kbps).
    pub fn std(&self) -> f64 {
        let m = self.mean();
        (self
            .samples_kbps
            .iter()
            .map(|s| (s - m) * (s - m))
            .sum::<f64>()
            / self.samples_kbps.len() as f64)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_lookup() {
        let t = BandwidthTrace::constant(5000.0, 10, 1.0).unwrap();
        assert_eq!(t.at(0.0), 5000.0);
        assert_eq!(t.at(9.9), 5000.0);
        assert_eq!(t.at(100.0), 5000.0); // wraps
        assert_eq!(t.duration(), 10.0);
        assert_eq!(t.mean(), 5000.0);
        assert_eq!(t.std(), 0.0);
    }

    #[test]
    fn invalid_traces_rejected() {
        assert!(BandwidthTrace::new(1.0, vec![]).is_err());
        assert!(BandwidthTrace::new(0.0, vec![1.0]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![0.0]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![-5.0]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![f64::NAN]).is_err());
    }

    #[test]
    fn download_time_single_tick() {
        let t = BandwidthTrace::constant(1000.0, 10, 1.0).unwrap();
        // 500 kbits at 1000 kbps = 0.5 s.
        assert!((t.download_time(0.0, 500.0) - 0.5).abs() < 1e-9);
        assert_eq!(t.download_time(0.0, 0.0), 0.0);
    }

    #[test]
    fn download_time_spans_ticks() {
        // 1 s at 1000 kbps then 1 s at 3000 kbps, repeating.
        let t = BandwidthTrace::new(1.0, vec![1000.0, 3000.0]).unwrap();
        // 2500 kbits from t=0: 1000 in first second, 1500/3000=0.5 s more.
        assert!((t.download_time(0.0, 2500.0) - 1.5).abs() < 1e-9);
        // Starting mid-tick: from t=0.5, 0.5s*1000=500, then 2000/3000.
        let d = t.download_time(0.5, 2500.0);
        assert!((d - (0.5 + 2000.0 / 3000.0)).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn download_time_wraps_trace() {
        let t = BandwidthTrace::new(1.0, vec![1000.0]).unwrap();
        // 10_000 kbits at 1000 kbps = 10 s (10 wraps).
        assert!((t.download_time(0.0, 10_000.0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn stats_on_varying_trace() {
        let t = BandwidthTrace::new(1.0, vec![1000.0, 3000.0]).unwrap();
        assert_eq!(t.mean(), 2000.0);
        assert_eq!(t.std(), 1000.0);
    }
}
