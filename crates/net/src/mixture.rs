//! A production-like bandwidth population.
//!
//! Fig. 2(a) of the paper shows the bandwidth CDF of Kuaishou users against
//! the maximum video bitrate: roughly 10% of users average *below* the top
//! rung, the median sits near 10–15 Mbps, and the tail stretches past
//! 50 Mbps. [`ProductionMixture`] reproduces that marginal with a four-class
//! mixture; each class also picks a burstiness regime so low-bandwidth users
//! are burstier (cellular-like) than high-bandwidth ones (fixed-line-like),
//! matching the stall-count-per-bandwidth-bucket CDFs of Fig. 8(a).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gen::{LogNormalFadeGen, MarkovGen, StationaryGaussGen, TraceGenerator};
use crate::trace::BandwidthTrace;
use crate::{NetError, Result};

/// Coarse network class of one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetClass {
    /// Congested / cellular edge; mean below ~2 Mbps, very bursty.
    Constrained,
    /// Mid cellular; 2–6 Mbps, bursty.
    Cellular,
    /// Good WiFi; 6–20 Mbps, mildly noisy.
    Wifi,
    /// Fixed broadband; 20–50 Mbps, stable.
    Broadband,
}

impl NetClass {
    /// All classes, worst to best.
    pub const ALL: [NetClass; 4] = [
        NetClass::Constrained,
        NetClass::Cellular,
        NetClass::Wifi,
        NetClass::Broadband,
    ];
}

/// One user's network profile: a class, a long-run mean and a generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserNetProfile {
    /// Coarse class.
    pub class: NetClass,
    /// Long-run mean bandwidth (kbps).
    pub mean_kbps: f64,
    /// Burstiness (coefficient of variation) of the user's link.
    pub cv: f64,
}

impl UserNetProfile {
    /// Generate a bandwidth trace consistent with this profile.
    pub fn trace<R: Rng + ?Sized>(
        &self,
        n: usize,
        tick_seconds: f64,
        rng: &mut R,
    ) -> Result<BandwidthTrace> {
        match self.class {
            NetClass::Constrained => MarkovGen {
                good_kbps: self.mean_kbps * 1.6,
                bad_kbps: self.mean_kbps * 0.35,
                p_gb: 0.08,
                p_bg: 0.10,
                cv: self.cv * 0.5,
            }
            .generate(n, tick_seconds, rng),
            NetClass::Cellular => MarkovGen {
                good_kbps: self.mean_kbps * 1.4,
                bad_kbps: self.mean_kbps * 0.5,
                p_gb: 0.05,
                p_bg: 0.12,
                cv: self.cv * 0.5,
            }
            .generate(n, tick_seconds, rng),
            NetClass::Wifi => LogNormalFadeGen {
                mean_kbps: self.mean_kbps,
                cv: self.cv,
            }
            .generate(n, tick_seconds, rng),
            NetClass::Broadband => StationaryGaussGen {
                mean_kbps: self.mean_kbps,
                cv: self.cv,
            }
            .generate(n, tick_seconds, rng),
        }
    }
}

/// Population mixture calibrated to Fig. 2(a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionMixture {
    /// Fraction of users in [`NetClass::Constrained`] (paper: ~10% below
    /// the max bitrate).
    pub p_constrained: f64,
    /// Fraction in [`NetClass::Cellular`].
    pub p_cellular: f64,
    /// Fraction in [`NetClass::Wifi`].
    pub p_wifi: f64,
    // Broadband takes the remainder.
}

impl Default for ProductionMixture {
    fn default() -> Self {
        Self {
            p_constrained: 0.10,
            p_cellular: 0.22,
            p_wifi: 0.40,
        }
    }
}

impl ProductionMixture {
    /// Validate that the class fractions form a sub-distribution.
    pub fn validate(&self) -> Result<()> {
        let ps = [self.p_constrained, self.p_cellular, self.p_wifi];
        if ps.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(NetError::InvalidConfig("fractions must be in [0,1]".into()));
        }
        if ps.iter().sum::<f64>() > 1.0 + 1e-12 {
            return Err(NetError::InvalidConfig("class fractions exceed 1.0".into()));
        }
        Ok(())
    }

    /// Sample one user profile.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R) -> UserNetProfile {
        let u: f64 = rng.gen();
        let (class, lo, hi, cv_lo, cv_hi): (NetClass, f64, f64, f64, f64) =
            if u < self.p_constrained {
                (NetClass::Constrained, 400.0, 2000.0, 0.5, 0.9)
            } else if u < self.p_constrained + self.p_cellular {
                (NetClass::Cellular, 2000.0, 6000.0, 0.35, 0.6)
            } else if u < self.p_constrained + self.p_cellular + self.p_wifi {
                (NetClass::Wifi, 6000.0, 20_000.0, 0.2, 0.45)
            } else {
                (NetClass::Broadband, 20_000.0, 50_000.0, 0.08, 0.2)
            };
        // Log-uniform within the class band: smooths the CDF between bands.
        let mean_kbps = (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp();
        let cv = cv_lo + rng.gen::<f64>() * (cv_hi - cv_lo);
        UserNetProfile {
            class,
            mean_kbps,
            cv,
        }
    }

    /// Sample a whole population.
    pub fn sample_population<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<UserNetProfile> {
        (0..n).map(|_| self.sample_profile(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_mixture_matches_paper_fractions() {
        let m = ProductionMixture::default();
        m.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let pop = m.sample_population(20_000, &mut rng);
        // Fraction below the default top bitrate (4300 kbps) should be
        // roughly the paper's ~10% (constrained class + low cellular tail).
        let below = pop.iter().filter(|p| p.mean_kbps < 4300.0).count() as f64 / pop.len() as f64;
        assert!(below > 0.12 && below < 0.30, "below-max fraction {below}");
        // Specifically the sub-2Mbps share is close to p_constrained.
        let constrained = pop
            .iter()
            .filter(|p| p.class == NetClass::Constrained)
            .count() as f64
            / pop.len() as f64;
        assert!(
            (constrained - 0.10).abs() < 0.02,
            "constrained {constrained}"
        );
    }

    #[test]
    fn class_bands_respected() {
        let m = ProductionMixture::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let p = m.sample_profile(&mut rng);
            match p.class {
                NetClass::Constrained => assert!(p.mean_kbps >= 400.0 && p.mean_kbps <= 2000.0),
                NetClass::Cellular => assert!(p.mean_kbps >= 2000.0 && p.mean_kbps <= 6000.0),
                NetClass::Wifi => assert!(p.mean_kbps >= 6000.0 && p.mean_kbps <= 20_000.0),
                NetClass::Broadband => {
                    assert!(p.mean_kbps >= 20_000.0 && p.mean_kbps <= 50_000.0)
                }
            }
            assert!(p.cv > 0.0 && p.cv < 1.0);
        }
    }

    #[test]
    fn lower_classes_are_burstier() {
        let m = ProductionMixture::default();
        let mut rng = StdRng::seed_from_u64(3);
        let pop = m.sample_population(10_000, &mut rng);
        let avg_cv = |class: NetClass| {
            let xs: Vec<f64> = pop
                .iter()
                .filter(|p| p.class == class)
                .map(|p| p.cv)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg_cv(NetClass::Constrained) > avg_cv(NetClass::Wifi));
        assert!(avg_cv(NetClass::Wifi) > avg_cv(NetClass::Broadband));
    }

    #[test]
    fn profile_traces_track_mean() {
        let m = ProductionMixture::default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let p = m.sample_profile(&mut rng);
            let t = p.trace(4000, 1.0, &mut rng).unwrap();
            let err = (t.mean() - p.mean_kbps).abs() / p.mean_kbps;
            assert!(err < 0.25, "class {:?} mean err {err}", p.class);
        }
    }

    #[test]
    fn invalid_mixture_rejected() {
        let m = ProductionMixture {
            p_constrained: 0.6,
            p_cellular: 0.5,
            p_wifi: 0.2,
        };
        assert!(m.validate().is_err());
        let m2 = ProductionMixture {
            p_constrained: -0.1,
            ..ProductionMixture::default()
        };
        assert!(m2.validate().is_err());
    }
}
