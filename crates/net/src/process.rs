//! The unified bandwidth-process abstraction and the shared-bottleneck
//! event kernel.
//!
//! Every bandwidth source in the workspace — recorded traces
//! ([`BandwidthTrace`]), the synthetic [`crate::TraceGenerator`] family,
//! [`crate::ProductionMixture`] / [`crate::UserNetProfile`] sampling (which
//! all *produce* traces) and the Monte-Carlo normal model
//! ([`ModelProcess`]) — answers the same question: *how long does a
//! download of `size_kbits` starting at time `at` take, and what effective
//! throughput did it see?* [`BandwidthProcess`] is that question as a
//! trait; the whole session stack (`lingxi-player` sessions,
//! `lingxi-core` managed sessions and Monte-Carlo rollouts, the
//! `lingxi-fleet` engine) streams over `&dyn BandwidthProcess`, so the
//! client-side predictor and the simulator can never drift apart.
//!
//! [`SharedBottleneck`] is the contention-aware implementation: a
//! deterministic discrete-event network that splits link capacity among
//! concurrently-active downloads under a configurable
//! [`FairnessObjective`], re-sharing on every flow arrival and departure.
//! [`SharedBottleneck::new`] builds the classic degenerate case — a
//! single max-min link — as a 1-hop [`Topology`], bit-identical to the
//! historical single-link kernel; [`SharedBottleneck::with_topology`]
//! generalizes to multi-hop routes and α-fair sharing. It powers the
//! fleet engine's contention mode and the `flashcrowd`, `population` and
//! `fairness` experiments.
//!
//! ```
//! use lingxi_net::{BandwidthProcess, BandwidthTrace, SharedBottleneck};
//!
//! // A trace is a (non-contended) bandwidth process.
//! let trace = BandwidthTrace::constant(5000.0, 60, 1.0).unwrap();
//! let d = trace.download(0.0, 5000.0);
//! assert!((d.duration - 1.0).abs() < 1e-9);
//!
//! // A shared link with one active flow gives it the full capacity.
//! let link = SharedBottleneck::new(8000.0).unwrap();
//! let d = link.download(0.0, 8000.0);
//! assert!((d.duration - 1.0).abs() < 1e-9 && (d.kbps - 8000.0).abs() < 1e-9);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;

use rand::Rng;

use lingxi_stats::NormalDist;

use crate::fairness::{self, FairScratch, FairnessObjective, FlowDemand};
use crate::topology::Topology;
use crate::trace::BandwidthTrace;
use crate::{NetError, Result};

/// Outcome of one simulated download over a bandwidth process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Download {
    /// Time the download took (seconds).
    pub duration: f64,
    /// Effective throughput over the download (kbits per second).
    pub kbps: f64,
}

/// A source of download bandwidth: anything a session can stream over.
///
/// Implementations take `&self` — stateful processes (the shared link, the
/// sampling model) use interior mutability so one process can be shared by
/// every session of a shard worker behind a plain `&dyn` reference.
pub trait BandwidthProcess: std::fmt::Debug {
    /// Simulate downloading `size_kbits` starting at absolute time `at`
    /// (seconds). Returns the duration and the effective throughput; a
    /// non-positive `size_kbits` completes instantly at [`Self::rate_at`].
    fn download(&self, at: f64, size_kbits: f64) -> Download;

    /// Instantaneous throughput estimate at time `at` (kbps) — the rate a
    /// new download issued now would start at.
    fn rate_at(&self, at: f64) -> f64;
}

impl BandwidthProcess for BandwidthTrace {
    fn download(&self, at: f64, size_kbits: f64) -> Download {
        let duration = self.download_time(at, size_kbits);
        let kbps = if duration > 0.0 {
            size_kbits / duration
        } else {
            self.at(at)
        };
        Download { duration, kbps }
    }

    fn rate_at(&self, at: f64) -> f64 {
        self.at(at)
    }
}

/// The Monte-Carlo bandwidth model as a process: each download's rate is
/// one draw from `N(mu, sigma^2)` truncated below at `floor_kbps` — exactly
/// the client-side model of Eq. 3 that rollouts simulate against.
///
/// The process *borrows* the caller's RNG through a [`RefCell`], so its
/// draws interleave with the caller's other draws (RTT, exit decisions) in
/// a single deterministic stream.
pub struct ModelProcess<'c, 'r, R: Rng + ?Sized> {
    dist: NormalDist,
    floor_kbps: f64,
    rng: &'c RefCell<&'r mut R>,
}

impl<'c, 'r, R: Rng + ?Sized> ModelProcess<'c, 'r, R> {
    /// Wrap a fitted bandwidth model and a shared RNG handle.
    pub fn new(dist: NormalDist, floor_kbps: f64, rng: &'c RefCell<&'r mut R>) -> Self {
        Self {
            dist,
            floor_kbps,
            rng,
        }
    }
}

impl<R: Rng + ?Sized> std::fmt::Debug for ModelProcess<'_, '_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelProcess")
            .field("dist", &self.dist)
            .field("floor_kbps", &self.floor_kbps)
            .finish()
    }
}

impl<R: Rng + ?Sized> BandwidthProcess for ModelProcess<'_, '_, R> {
    fn download(&self, at: f64, size_kbits: f64) -> Download {
        // Honour the trait contract for degenerate sizes without touching
        // the shared RNG stream — a zero-size download must be free of
        // side effects on every process implementation.
        if !(size_kbits > 0.0) {
            return Download {
                duration: 0.0,
                kbps: self.rate_at(at),
            };
        }
        let kbps = self
            .dist
            .sample_truncated_low(&mut **self.rng.borrow_mut(), self.floor_kbps);
        Download {
            duration: size_kbits / kbps,
            kbps,
        }
    }

    fn rate_at(&self, _at: f64) -> f64 {
        self.dist.mu.max(self.floor_kbps)
    }
}

/// One completed flow on a [`SharedBottleneck`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEnd {
    /// Flow identifier (the fleet engine uses user ids).
    pub id: u64,
    /// Absolute completion time (seconds).
    pub at: f64,
    /// Download duration (seconds) from flow admission to completion.
    pub duration: f64,
    /// Effective throughput over the flow (kbps).
    pub kbps: f64,
}

/// An active flow on the network.
#[derive(Debug, Clone, Copy)]
struct Flow {
    id: u64,
    started: f64,
    size_kbits: f64,
    remaining_kbits: f64,
    /// Access-link rate cap (kbps); `f64::INFINITY` when uncapped.
    cap_kbps: f64,
    /// Route index into the topology (always 0 on the degenerate link).
    route: u16,
}

#[derive(Debug, Default)]
struct LinkState {
    /// Virtual time of the last processed event.
    now: f64,
    /// Active flows, kept sorted ascending by `(cap_kbps, id)` — the
    /// allocator's canonical visitation order. Sorted insertion on
    /// arrival makes [`LinkState::refresh_rates`] a single
    /// allocation-free walk instead of a per-event sort, and makes the
    /// allocation independent of arrival order.
    flows: Vec<Flow>,
    /// Completions not yet consumed, ordered by (time, id).
    done: VecDeque<FlowEnd>,
    /// Cached allocated rates, parallel to `flows`. Every objective's
    /// allocation depends only on the flow *set* (caps, routes and ids),
    /// never on residuals, so the shares stay valid across fluid drains
    /// and are recomputed only when a flow arrives or departs.
    rates: Vec<f64>,
    rates_fresh: bool,
    /// Scratch mirror of `flows` as the allocator's demand view.
    demands: Vec<FlowDemand>,
    /// Reusable allocator workspace.
    fair: FairScratch,
    /// Cached earliest projected completion under the current shares
    /// (`INFINITY` when idle). Goes stale whenever `now`, a residual, or
    /// the flow set changes — the projection mixes all three.
    earliest: f64,
    earliest_fresh: bool,
    /// Scratch for the flows completing at the current event.
    finished: Vec<Flow>,
}

impl LinkState {
    /// Run the fairness allocator into the `rates` cache. `flows` is
    /// already in `(cap_kbps, id)` order, so the single-link max-min case
    /// visits flows in exactly the order the legacy per-event water-fill
    /// produced — the share arithmetic is bit-identical — and every other
    /// objective sees a canonical, arrival-order-independent flow list.
    fn refresh_rates(&mut self, topo: &Topology, objective: FairnessObjective) {
        if self.rates_fresh {
            return;
        }
        self.demands.clear();
        for flow in &self.flows {
            self.demands
                .push(FlowDemand::new(flow.cap_kbps, flow.route));
        }
        fairness::allocate_into(
            topo,
            objective,
            &self.demands,
            &mut self.fair,
            &mut self.rates,
        );
        self.rates_fresh = true;
    }

    /// Earliest projected completion under the current shares, into the
    /// `earliest` cache.
    fn refresh_earliest(&mut self, topo: &Topology, objective: FairnessObjective) {
        if self.earliest_fresh {
            return;
        }
        self.refresh_rates(topo, objective);
        let mut t = f64::INFINITY;
        for (flow, &rate) in self.flows.iter().zip(&self.rates) {
            t = t.min(self.now + flow.remaining_kbits / rate);
        }
        self.earliest = t;
        self.earliest_fresh = true;
    }
}

/// Residual kbits below which a flow counts as complete (absorbs the
/// floating-point dust of repeated fluid advances).
const FLOW_EPS_KBITS: f64 = 1e-9;

/// A deterministic discrete-event shared network.
///
/// Capacity is split among concurrently-active flows under the
/// configured [`FairnessObjective`] over the configured [`Topology`]:
/// each flow is rate-limited by its own access cap and by every link on
/// its route, and the allocation recomputes on every flow arrival and
/// departure. The [`SharedBottleneck::new`] default is the degenerate
/// 1-hop max-min link — with `k` concurrent uncapped flows each receives
/// exactly `capacity / k` — bit-identical to the historical single-link
/// kernel.
///
/// Two usage modes:
///
/// - **Pull** (the [`BandwidthProcess`] impl): one session at a time calls
///   [`BandwidthProcess::download`]; the flow is admitted, the link runs
///   until that flow completes, and the duration reflects whatever other
///   flows were active.
/// - **Event kernel** (the fleet contention mode): a scheduler admits
///   flows with [`SharedBottleneck::begin_flow`] in event order, asks
///   [`SharedBottleneck::next_event_time`] for the earliest completion and
///   consumes it with [`SharedBottleneck::pop_completion`].
///
/// All state lives behind a [`RefCell`], so a single simulation thread can
/// share the link between sessions through `&SharedBottleneck`.
#[derive(Debug)]
pub struct SharedBottleneck {
    topology: Topology,
    objective: FairnessObjective,
    state: RefCell<LinkState>,
}

impl SharedBottleneck {
    /// Flow id reserved for the pull-mode [`BandwidthProcess`] path.
    const PULL_ID: u64 = u64::MAX;

    /// Create the degenerate single max-min link; `capacity_kbps` must be
    /// positive and finite. Equivalent to
    /// `with_topology(Topology::single_link(..), FairnessObjective::MaxMin)`.
    pub fn new(capacity_kbps: f64) -> Result<Self> {
        Self::with_topology(
            Topology::single_link(capacity_kbps)?,
            FairnessObjective::MaxMin,
        )
    }

    /// Create a network over an explicit topology and fairness objective.
    pub fn with_topology(topology: Topology, objective: FairnessObjective) -> Result<Self> {
        objective.validate()?;
        Ok(Self {
            topology,
            objective,
            state: RefCell::new(LinkState::default()),
        })
    }

    /// Capacity of the first link (kbps) — *the* capacity on the
    /// degenerate single-link topology.
    pub fn capacity_kbps(&self) -> f64 {
        self.topology.links()[0].capacity_kbps
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The fairness objective splitting capacity among flows.
    pub fn objective(&self) -> FairnessObjective {
        self.objective
    }

    /// Virtual time of the last processed event (seconds).
    pub fn now(&self) -> f64 {
        self.state.borrow().now
    }

    /// Number of currently-active flows.
    pub fn active_flows(&self) -> usize {
        self.state.borrow().flows.len()
    }

    /// Total kbits still queued on active flows.
    pub fn remaining_kbits(&self) -> f64 {
        self.state
            .borrow()
            .flows
            .iter()
            .map(|f| f.remaining_kbits)
            .sum()
    }

    /// Advance the fluid simulation to absolute time `to`, queueing every
    /// completion on the way (ties resolved in ascending flow-id order).
    fn advance(topo: &Topology, objective: FairnessObjective, state: &mut LinkState, to: f64) {
        while !state.flows.is_empty() && state.now < to {
            state.refresh_earliest(topo, objective);
            let t_end = state.earliest;
            let t_stop = t_end.min(to);
            let dt = t_stop - state.now;
            let now = state.now;
            let completing = t_end <= to;
            let LinkState {
                flows,
                rates,
                finished,
                done,
                ..
            } = &mut *state;
            finished.clear();
            if completing {
                // Which flows complete at this event. Decided from the
                // *pre-advance* projection, not the drained residual: at
                // large virtual times `rate * dt` can round such that the
                // minimal flow keeps a residual above any absolute epsilon
                // while its next projected completion rounds back to `now`
                // — an infinite loop. Completing every flow whose
                // projection attained `t_end` removes at least one flow
                // per event, guaranteeing progress.
                for (flow, &rate) in flows.iter().zip(rates.iter()) {
                    if now + flow.remaining_kbits / rate <= t_end
                        || flow.remaining_kbits - rate * dt <= FLOW_EPS_KBITS
                    {
                        finished.push(*flow);
                    }
                }
                finished.sort_by_key(|f| f.id);
            }
            for (flow, &rate) in flows.iter_mut().zip(rates.iter()) {
                flow.remaining_kbits -= rate * dt;
            }
            if completing {
                flows.retain(|f| !finished.iter().any(|g| g.id == f.id));
                for f in finished.drain(..) {
                    let duration = t_stop - f.started;
                    done.push_back(FlowEnd {
                        id: f.id,
                        at: t_stop,
                        duration,
                        kbps: f.size_kbits / duration,
                    });
                }
            }
            state.now = t_stop;
            // The drain moved `now` and every residual; a completion also
            // changed the flow set.
            state.earliest_fresh = false;
            if completing {
                state.rates_fresh = false;
            }
        }
        state.now = state.now.max(to);
    }

    /// Admit a flow on route 0 — the one route of the degenerate
    /// single-link topology. See [`SharedBottleneck::begin_flow_on`].
    pub fn begin_flow(&self, id: u64, at: f64, size_kbits: f64, cap_kbps: f64) -> Result<()> {
        self.begin_flow_on(id, 0, at, size_kbits, cap_kbps)
    }

    /// Admit a flow of `size_kbits` on route `route` at absolute time
    /// `at` with an access cap of `cap_kbps` (`f64::INFINITY` for
    /// uncapped). `at` earlier than the network clock is clamped forward
    /// — the event kernel admits flows in event order, so this only
    /// absorbs sub-ULP drift.
    pub fn begin_flow_on(
        &self,
        id: u64,
        route: u16,
        at: f64,
        size_kbits: f64,
        cap_kbps: f64,
    ) -> Result<()> {
        if !(size_kbits > 0.0) || !size_kbits.is_finite() {
            return Err(NetError::InvalidConfig(
                "flow size must be positive and finite".into(),
            ));
        }
        if !(cap_kbps > 0.0) {
            return Err(NetError::InvalidConfig("flow cap must be positive".into()));
        }
        if route as usize >= self.topology.n_routes() {
            return Err(NetError::InvalidConfig(format!(
                "route {route} out of range"
            )));
        }
        let mut state = self.state.borrow_mut();
        if state.flows.iter().any(|f| f.id == id) {
            return Err(NetError::InvalidConfig(format!(
                "flow {id} is already active on this network"
            )));
        }
        Self::advance(&self.topology, self.objective, &mut state, at);
        let started = state.now;
        // Sorted insert: keep `flows` in the allocator's `(cap, id)`
        // visitation order (keys are unique — ids are).
        let pos = state
            .flows
            .partition_point(|f| f.cap_kbps.total_cmp(&cap_kbps).then(f.id.cmp(&id)).is_lt());
        state.flows.insert(
            pos,
            Flow {
                id,
                started,
                size_kbits,
                remaining_kbits: size_kbits,
                cap_kbps,
                route,
            },
        );
        state.rates_fresh = false;
        state.earliest_fresh = false;
        Ok(())
    }

    /// Time of the next link event: the earliest queued (unconsumed)
    /// completion, else the earliest projected completion of an active
    /// flow. `None` when the link is idle.
    pub fn next_event_time(&self) -> Option<f64> {
        let mut state = self.state.borrow_mut();
        if let Some(end) = state.done.front() {
            return Some(end.at);
        }
        if state.flows.is_empty() {
            return None;
        }
        state.refresh_earliest(&self.topology, self.objective);
        Some(state.earliest)
    }

    /// Consume the next completion, advancing the link to it if necessary.
    pub fn pop_completion(&self) -> Option<FlowEnd> {
        let mut state = self.state.borrow_mut();
        if state.done.is_empty() {
            if state.flows.is_empty() {
                return None;
            }
            state.refresh_earliest(&self.topology, self.objective);
            let t = state.earliest;
            Self::advance(&self.topology, self.objective, &mut state, t);
        }
        state.done.pop_front()
    }

    /// Advance the link clock to `t`, queueing any completions on the way
    /// (they remain readable through [`SharedBottleneck::pop_completion`]).
    pub fn advance_to(&self, t: f64) {
        let mut state = self.state.borrow_mut();
        Self::advance(&self.topology, self.objective, &mut state, t);
    }

    /// Run the link until flow `id` completes and return its record;
    /// completions of other flows stay queued for their consumers.
    fn run_flow_to_end(&self, id: u64) -> FlowEnd {
        loop {
            let mut state = self.state.borrow_mut();
            if let Some(pos) = state.done.iter().position(|e| e.id == id) {
                return state.done.remove(pos).expect("position just found");
            }
            assert!(
                !state.flows.is_empty(),
                "flow is active, so a completion exists"
            );
            state.refresh_earliest(&self.topology, self.objective);
            let t = state.earliest;
            Self::advance(&self.topology, self.objective, &mut state, t);
        }
    }
}

impl BandwidthProcess for SharedBottleneck {
    fn download(&self, at: f64, size_kbits: f64) -> Download {
        if !(size_kbits > 0.0) {
            return Download {
                duration: 0.0,
                kbps: self.rate_at(at),
            };
        }
        self.begin_flow(Self::PULL_ID, at, size_kbits, f64::INFINITY)
            .expect("pull flow admission cannot fail on positive sizes");
        let end = self.run_flow_to_end(Self::PULL_ID);
        Download {
            duration: end.duration,
            kbps: end.kbps,
        }
    }

    fn rate_at(&self, _at: f64) -> f64 {
        // The equal share a new uncapped flow would start at (on the
        // degenerate link exact; multi-hop uses the first link as the
        // nominal bottleneck for this estimate).
        self.capacity_kbps() / (self.active_flows() + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopoLink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_process_matches_download_time() {
        let t = BandwidthTrace::new(1.0, vec![1000.0, 3000.0]).unwrap();
        let d = t.download(0.0, 2500.0);
        assert!((d.duration - 1.5).abs() < 1e-9);
        assert!((d.kbps - 2500.0 / 1.5).abs() < 1e-9);
        assert_eq!(t.rate_at(1.2), 3000.0);
        // Zero-size download reports the instantaneous rate.
        let z = t.download(0.4, 0.0);
        assert_eq!(z.duration, 0.0);
        assert_eq!(z.kbps, 1000.0);
    }

    #[test]
    fn model_process_draws_from_shared_stream() {
        let dist = NormalDist::new(4000.0, 1500.0).unwrap();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let direct: Vec<f64> = (0..8)
            .map(|_| dist.sample_truncated_low(&mut a, 50.0))
            .collect();
        let cell = RefCell::new(&mut b);
        let p = ModelProcess::new(dist, 50.0, &cell);
        for &want in &direct {
            let d = p.download(0.0, 1000.0);
            assert_eq!(d.kbps, want);
            assert!((d.duration - 1000.0 / want).abs() < 1e-12);
        }
    }

    #[test]
    fn solo_flow_gets_full_capacity() {
        let link = SharedBottleneck::new(10_000.0).unwrap();
        let d = link.download(0.0, 5000.0);
        assert!((d.duration - 0.5).abs() < 1e-9);
        assert!((d.kbps - 10_000.0).abs() < 1e-9);
        // Sequential downloads never contend with themselves.
        let d2 = link.download(2.0, 5000.0);
        assert!((d2.duration - 0.5).abs() < 1e-9);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn k_equal_flows_each_get_capacity_over_k() {
        for k in [2u64, 3, 5, 8] {
            let link = SharedBottleneck::new(12_000.0).unwrap();
            let size = 6000.0;
            for id in 0..k {
                link.begin_flow(id, 0.0, size, f64::INFINITY).unwrap();
            }
            let share = 12_000.0 / k as f64;
            let expect = size / share;
            for want_id in 0..k {
                let end = link.pop_completion().unwrap();
                assert_eq!(end.id, want_id, "ties resolve in id order");
                assert!((end.at - expect).abs() < 1e-9, "k={k} at={}", end.at);
                assert!((end.kbps - share).abs() < 1e-9, "k={k} kbps={}", end.kbps);
            }
            assert!(link.pop_completion().is_none());
        }
    }

    #[test]
    fn late_arrival_slows_the_incumbent() {
        // 10 Mbps link; flow 1 starts alone, flow 2 joins at t=1.
        let link = SharedBottleneck::new(10_000.0).unwrap();
        link.begin_flow(1, 0.0, 15_000.0, f64::INFINITY).unwrap();
        link.begin_flow(2, 1.0, 10_000.0, f64::INFINITY).unwrap();
        // Flow 1: 10_000 kbits alone in [0,1), then shares 5 Mbps → 1 s more.
        let e1 = link.pop_completion().unwrap();
        assert_eq!(e1.id, 1);
        assert!((e1.at - 2.0).abs() < 1e-9, "at={}", e1.at);
        assert!((e1.kbps - 7500.0).abs() < 1e-9);
        // Flow 2: 5_000 kbits shared in [1,2), then 5_000 alone → t=2.5.
        let e2 = link.pop_completion().unwrap();
        assert_eq!(e2.id, 2);
        assert!((e2.at - 2.5).abs() < 1e-9, "at={}", e2.at);
    }

    #[test]
    fn access_caps_water_fill() {
        // 12 Mbps link, one flow capped at 2 Mbps: the other two split the
        // remaining 10 Mbps evenly (5 each) — classic max-min.
        let link = SharedBottleneck::new(12_000.0).unwrap();
        link.begin_flow(1, 0.0, 2_000.0, 2000.0).unwrap();
        link.begin_flow(2, 0.0, 50_000.0, f64::INFINITY).unwrap();
        link.begin_flow(3, 0.0, 50_000.0, f64::INFINITY).unwrap();
        let e1 = link.pop_completion().unwrap();
        assert_eq!(e1.id, 1);
        assert!((e1.kbps - 2000.0).abs() < 1e-9, "kbps={}", e1.kbps);
        assert!((e1.at - 1.0).abs() < 1e-9);
        // After the capped flow leaves, the survivors split 6/6.
        let e2 = link.pop_completion().unwrap();
        // Each did 5000 kbits in [0,1]; 45_000 left at 6 Mbps → 7.5 s more.
        assert!((e2.at - 8.5).abs() < 1e-9, "at={}", e2.at);
    }

    #[test]
    fn capacity_conserved_under_contention() {
        let link = SharedBottleneck::new(8_000.0).unwrap();
        let mut begun = 0.0;
        for id in 0..6u64 {
            let size = 3000.0 + 500.0 * id as f64;
            link.begin_flow(id, 0.2 * id as f64, size, f64::INFINITY)
                .unwrap();
            begun += size;
        }
        let horizon = 2.0;
        link.advance_to(horizon);
        let delivered = begun - link.remaining_kbits();
        assert!(
            delivered <= 8_000.0 * horizon + 1e-6,
            "delivered {delivered} over {horizon}s exceeds capacity"
        );
        // The link is saturated the whole window, so it should also be
        // within epsilon of full utilization.
        assert!(
            delivered >= 8_000.0 * horizon - 1e-6,
            "delivered {delivered}"
        );
    }

    #[test]
    fn completion_progress_at_large_virtual_time() {
        // At now ~ 1e9 s an ULP is ~1.2e-7 s, so the drained residual of
        // the minimal flow (rate × ULP ≈ 3e-3 kbits at 25 Mbps) dwarfs any
        // absolute epsilon. Completion must still make progress: the
        // pre-advance projection decides who finishes, not the residual.
        let link = SharedBottleneck::new(25_000.0).unwrap();
        link.advance_to(1.0e9);
        for id in 0..3u64 {
            link.begin_flow(id, 1.0e9, 4000.0 + id as f64, f64::INFINITY)
                .unwrap();
        }
        for _ in 0..3 {
            let end = link.pop_completion().expect("kernel keeps making progress");
            assert!(end.duration > 0.0 && end.kbps > 0.0);
        }
        assert!(link.pop_completion().is_none());
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn model_process_zero_size_is_side_effect_free() {
        let dist = NormalDist::new(4000.0, 1500.0).unwrap();
        let mut a = StdRng::seed_from_u64(3);
        let cell = RefCell::new(&mut a);
        let p = ModelProcess::new(dist, 50.0, &cell);
        let z = p.download(5.0, 0.0);
        assert_eq!(z.duration, 0.0);
        assert_eq!(z.kbps, p.rate_at(5.0));
        // The zero-size call consumed no draws: the next download matches
        // a fresh stream's first draw.
        let first = p.download(5.0, 1000.0).kbps;
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(first, dist.sample_truncated_low(&mut b, 50.0));
    }

    #[test]
    fn invalid_links_and_flows_rejected() {
        assert!(SharedBottleneck::new(0.0).is_err());
        assert!(SharedBottleneck::new(f64::NAN).is_err());
        let link = SharedBottleneck::new(1000.0).unwrap();
        assert!(link.begin_flow(1, 0.0, 0.0, f64::INFINITY).is_err());
        assert!(link.begin_flow(1, 0.0, 100.0, 0.0).is_err());
        link.begin_flow(1, 0.0, 100.0, f64::INFINITY).unwrap();
        assert!(link.begin_flow(1, 0.1, 100.0, f64::INFINITY).is_err());
    }

    #[test]
    fn degenerate_topology_is_bit_identical_to_new() {
        // `with_topology(single_link, MaxMin)` must be the same machine,
        // bit for bit, as `new(capacity)` — run the golden water-fill and
        // late-arrival fixtures on both and compare raw completion bits.
        type Fixture<'a> = &'a dyn Fn(&SharedBottleneck) -> Vec<FlowEnd>;
        let fixtures: [Fixture<'_>; 2] = [
            &|link| {
                link.begin_flow(1, 0.0, 2_000.0, 2000.0).unwrap();
                link.begin_flow(2, 0.0, 50_000.0, f64::INFINITY).unwrap();
                link.begin_flow(3, 0.0, 50_000.0, f64::INFINITY).unwrap();
                (0..3).map(|_| link.pop_completion().unwrap()).collect()
            },
            &|link| {
                link.begin_flow(1, 0.0, 15_000.0, f64::INFINITY).unwrap();
                link.begin_flow(2, 1.0, 10_000.0, f64::INFINITY).unwrap();
                (0..2).map(|_| link.pop_completion().unwrap()).collect()
            },
        ];
        for (i, fixture) in fixtures.iter().enumerate() {
            let legacy = SharedBottleneck::new(12_000.0).unwrap();
            let topo = SharedBottleneck::with_topology(
                Topology::single_link(12_000.0).unwrap(),
                FairnessObjective::MaxMin,
            )
            .unwrap();
            let a = fixture(&legacy);
            let b = fixture(&topo);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "fixture {i}");
                assert_eq!(x.at.to_bits(), y.at.to_bits(), "fixture {i}");
                assert_eq!(x.duration.to_bits(), y.duration.to_bits(), "fixture {i}");
                assert_eq!(x.kbps.to_bits(), y.kbps.to_bits(), "fixture {i}");
            }
        }
    }

    #[test]
    fn multi_hop_flow_is_constrained_by_every_link() {
        // Route 0 = [wide 20 Mbps, narrow 5 Mbps]: a solo flow runs at
        // the narrow link's rate, not the wide one's.
        let topo = Topology::new(
            vec![TopoLink::new(20_000.0, 0.0), TopoLink::new(5_000.0, 0.0)],
            vec![vec![0, 1]],
        )
        .unwrap();
        let net = SharedBottleneck::with_topology(topo, FairnessObjective::MaxMin).unwrap();
        net.begin_flow_on(1, 0, 0.0, 5_000.0, f64::INFINITY)
            .unwrap();
        let end = net.pop_completion().unwrap();
        assert!((end.kbps - 5_000.0).abs() < 1e-6, "kbps {}", end.kbps);
        assert!((end.at - 1.0).abs() < 1e-6);
        // An out-of-range route is rejected.
        assert!(net.begin_flow_on(2, 7, 0.0, 100.0, f64::INFINITY).is_err());
    }

    #[test]
    fn proportional_fair_link_still_conserves_capacity() {
        let topo = Topology::single_link(8_000.0).unwrap();
        let net =
            SharedBottleneck::with_topology(topo, FairnessObjective::ProportionalFair).unwrap();
        let mut begun = 0.0;
        for id in 0..5u64 {
            let size = 4000.0 + 250.0 * id as f64;
            net.begin_flow_on(id, 0, 0.1 * id as f64, size, f64::INFINITY)
                .unwrap();
            begun += size;
        }
        let horizon = 1.5;
        net.advance_to(horizon);
        let delivered = begun - net.remaining_kbits();
        assert!(
            delivered <= 8_000.0 * horizon + 1e-4,
            "delivered {delivered}"
        );
    }

    #[test]
    fn next_event_time_tracks_queue_and_projection() {
        let link = SharedBottleneck::new(1000.0).unwrap();
        assert!(link.next_event_time().is_none());
        link.begin_flow(1, 0.0, 500.0, f64::INFINITY).unwrap();
        assert!((link.next_event_time().unwrap() - 0.5).abs() < 1e-9);
        link.advance_to(1.0);
        // Completion already queued: still reported until consumed.
        assert!((link.next_event_time().unwrap() - 0.5).abs() < 1e-9);
        let end = link.pop_completion().unwrap();
        assert_eq!(end.id, 1);
        assert!(link.next_event_time().is_none());
    }
}
