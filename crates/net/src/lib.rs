//! Network substrate: bandwidth traces, synthetic trace generators, a
//! production-like bandwidth population, throughput estimators and an RTT
//! model.
//!
//! The paper's client observes per-segment download throughput, models past
//! bandwidth as `N(mu, sigma^2)` (Eq. 3), and draws future bandwidth from
//! that model during Monte-Carlo rollouts. Production traces are
//! proprietary, so [`mixture::ProductionMixture`] generates a synthetic
//! population matching the published bandwidth CDF (Fig. 2a: only ~10% of
//! users average below the top bitrate; the distribution stretches to
//! ~50 Mbps).
//!
//! ```
//! use lingxi_net::BandwidthTrace;
//!
//! // 5 Mbps flat for 60 s: downloading 5000 kbit takes exactly 1 s.
//! let trace = BandwidthTrace::constant(5000.0, 60, 1.0).unwrap();
//! assert_eq!(trace.at(10.0), 5000.0);
//! assert!((trace.download_time(0.0, 5000.0) - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod estimator;
pub mod events;
pub mod fairness;
pub mod gen;
pub mod mixture;
pub mod process;
pub mod rtt;
pub mod topology;
pub mod trace;

pub use estimator::{BandwidthEstimator, EwmaEstimator, HarmonicMeanEstimator, WindowEstimator};
pub use events::{BinaryHeapQueue, EventQueue, TimerWheel};
pub use fairness::{allocate, Allocation, FairnessObjective, FlowDemand, MAX_SWEEPS, SOLVER_TOL};
pub use gen::{LogNormalFadeGen, MarkovGen, RandomWalkGen, StationaryGaussGen, TraceGenerator};
pub use mixture::{NetClass, ProductionMixture, UserNetProfile};
pub use process::{BandwidthProcess, Download, FlowEnd, ModelProcess, SharedBottleneck};
pub use rtt::RttModel;
pub use topology::{TopoLink, Topology};
pub use trace::BandwidthTrace;

/// Errors from network-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A parameter was out of its valid domain.
    InvalidConfig(String),
    /// The trace or sample set was empty.
    Empty,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            NetError::Empty => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
