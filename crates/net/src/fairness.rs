//! Fairness objectives and the deterministic α-fair rate allocator.
//!
//! A [`FairnessObjective`] selects how a [`crate::Topology`] splits link
//! capacity among concurrent flows:
//!
//! - **Max-min** — progressive water-filling: rates rise together until a
//!   cap or a link saturates; the classic single-bottleneck special case
//!   is the exact legacy `SharedBottleneck` walk (bit-identical).
//! - **Proportional fair** — α = 1, maximizing Σ log xᵢ.
//! - **α-fair** — the general family `Uα(x) = x^(1−α)/(1−α)` (α ≥ 0,
//!   α = ∞ dispatches to max-min).
//!
//! The finite-α allocator solves the Low–Lapsley dual (per-link prices
//! p_l ≥ 0, per-flow price q_i = Σ_{l∈route(i)} p_l, demand
//! x_i(q) = min(cap_i, q^(−1/α))) by cyclic per-link exact price updates:
//! each Gauss–Seidel sweep bisects every link's price to clear that link
//! given the others, and the sweep loop stops at a fixed budget
//! ([`MAX_SWEEPS`]) or when every link's complementary-slackness residual
//! falls below [`SOLVER_TOL`]. Every operation is straight-line IEEE
//! arithmetic over the flow set in a canonical order — no time, no
//! randomness, no hashing — so the allocation is a pure function of
//! (flow set, caps, capacities) and bit-identical across shard counts.
//!
//! ```
//! use lingxi_net::{allocate, FairnessObjective, FlowDemand, Topology};
//!
//! let topo = Topology::single_link(12_000.0).unwrap();
//! let flows = [
//!     FlowDemand::new(2000.0, 0),
//!     FlowDemand::new(f64::INFINITY, 0),
//!     FlowDemand::new(f64::INFINITY, 0),
//! ];
//! let a = allocate(&topo, FairnessObjective::MaxMin, &flows).unwrap();
//! assert_eq!(a.rates, vec![2000.0, 5000.0, 5000.0]);
//! ```

use serde::{Deserialize, Serialize};

use crate::topology::Topology;
use crate::{NetError, Result};

/// Fixed Gauss–Seidel sweep budget for the finite-α dual solver.
pub const MAX_SWEEPS: usize = 64;

/// Bisection steps per per-link price update (each halves the bracket;
/// only links crossed by two or more routes bisect — single-route links
/// clear in closed form).
const BISECT_STEPS: usize = 48;

/// Convergence tolerance: maximum relative per-link complementary-
/// slackness residual at which the sweep loop stops early.
pub const SOLVER_TOL: f64 = 1e-9;

/// Prices below this are treated as zero in the residual (an inactive
/// dual constraint only requires feasibility, not tightness).
const PRICE_TINY: f64 = 1e-12;

/// The dual solver floor on α: utilities flatter than this (α → 0 is
/// throughput maximization) make the dual ill-conditioned, so smaller
/// finite values are evaluated at the floor.
pub const ALPHA_FLOOR: f64 = 0.125;

/// How a topology splits capacity among concurrent flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FairnessObjective {
    /// Progressive water-filling (the α → ∞ limit).
    MaxMin,
    /// Proportional fairness, Σ log xᵢ (α = 1).
    ProportionalFair,
    /// General α-fairness, `Uα(x) = x^(1−α)/(1−α)`. `f64::INFINITY`
    /// dispatches to the max-min code path; finite values below
    /// [`ALPHA_FLOOR`] are evaluated at the floor.
    AlphaFair(f64),
}

impl FairnessObjective {
    /// Reject NaN or negative α.
    pub fn validate(&self) -> Result<()> {
        if let FairnessObjective::AlphaFair(a) = self {
            if a.is_nan() || *a < 0.0 {
                return Err(NetError::InvalidConfig(
                    "alpha must be non-negative (infinity = max-min)".into(),
                ));
            }
        }
        Ok(())
    }

    /// True when the objective dispatches to the max-min code path
    /// (`MaxMin` itself, or `AlphaFair(∞)` — the equivalence is exact by
    /// construction, not approximate).
    pub fn is_max_min(&self) -> bool {
        match self {
            FairnessObjective::MaxMin => true,
            FairnessObjective::AlphaFair(a) => a.is_infinite(),
            FairnessObjective::ProportionalFair => false,
        }
    }

    /// The finite α the dual solver runs at (callers must rule out the
    /// max-min dispatch first).
    fn alpha_finite(&self) -> f64 {
        match self {
            FairnessObjective::MaxMin => unreachable!("max-min has no finite alpha"),
            FairnessObjective::ProportionalFair => 1.0,
            FairnessObjective::AlphaFair(a) => a.max(ALPHA_FLOOR),
        }
    }
}

/// One flow's demand as the allocator sees it: an access cap and a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Access-link rate cap (kbps); `f64::INFINITY` when uncapped.
    pub cap_kbps: f64,
    /// Route index into the topology.
    pub route: u16,
}

impl FlowDemand {
    /// Construct a demand.
    pub fn new(cap_kbps: f64, route: u16) -> Self {
        Self { cap_kbps, route }
    }
}

/// Result of a standalone [`allocate`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Allocated rate per flow (kbps), in the input flow order.
    pub rates: Vec<f64>,
    /// Gauss–Seidel sweeps the dual solver used (0 on max-min paths).
    pub sweeps: usize,
    /// Maximum relative per-link KKT residual of the dual solution
    /// (complementary slackness + primal feasibility; primal stationarity
    /// and dual feasibility hold exactly by construction). 0 on max-min
    /// paths, whose exactness is structural.
    pub kkt_residual: f64,
}

/// Reusable solver workspace (kept on the link state so the event kernel
/// allocates nothing per event).
#[derive(Debug, Default, Clone)]
pub(crate) struct FairScratch {
    /// Per-flow rate ceiling, normalized: min(cap, min capacity on route).
    clamp: Vec<f64>,
    /// Per-flow normalized rate.
    x: Vec<f64>,
    /// Per-link price p_l.
    prices: Vec<f64>,
    /// Per-link normalized capacity.
    chat: Vec<f64>,
    /// Flat per-link member lists (`member_off[l]..member_off[l+1]`),
    /// each segment sorted by (route, clamp, flow index).
    member_idx: Vec<u32>,
    member_off: Vec<usize>,
    /// Same-route runs inside the member lists, `(route, start, end)`
    /// (`group_off[l]..group_off[l+1]` are link `l`'s runs): every member
    /// of a run shares one path price, so a bisection step needs one
    /// power evaluation per run, not per member.
    groups: Vec<(u16, u32, u32)>,
    group_off: Vec<usize>,
    /// Clamps in member-list order, with within-run running sums: the
    /// run's demand at price `q` is a binary search plus two lookups.
    clamp_sorted: Vec<f64>,
    prefix: Vec<f64>,
    /// Per-run path price excluding the link currently being solved.
    qbase: Vec<f64>,
    /// Max-min: frozen flags, per-link frozen consumption, active counts.
    frozen: Vec<bool>,
    used: Vec<f64>,
    counts: Vec<usize>,
}

/// Outcome stats of [`allocate_into`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveStats {
    pub sweeps: usize,
    pub kkt_residual: f64,
}

/// Allocate rates for `flows` on `topo` under `objective`, writing one
/// rate per flow (in flow order) into `rates`.
///
/// Contract: the allocation is computed in the *given* flow order; the
/// event kernel passes its `(cap, id)`-sorted flow list so the result is
/// independent of arrival order. The single-link max-min case runs the
/// exact legacy `SharedBottleneck` water-fill walk, operation for
/// operation, so the degenerate topology is bit-identical to the
/// pre-topology kernel.
pub(crate) fn allocate_into(
    topo: &Topology,
    objective: FairnessObjective,
    flows: &[FlowDemand],
    scratch: &mut FairScratch,
    rates: &mut Vec<f64>,
) -> SolveStats {
    let exact = SolveStats {
        sweeps: 0,
        kkt_residual: 0.0,
    };
    rates.clear();
    if flows.is_empty() {
        return exact;
    }
    if objective.is_max_min() {
        if topo.is_single_link() {
            single_link_water_fill(topo.links()[0].capacity_kbps, flows, rates);
        } else {
            max_min_fill(topo, flows, scratch, rates);
        }
        exact
    } else {
        alpha_fair_fill(topo, objective.alpha_finite(), flows, scratch, rates)
    }
}

/// The legacy `SharedBottleneck` max-min walk, preserved operation for
/// operation: every flow gets an equal share of what is left, except
/// flows whose cap is below their share, which get their cap. Callers
/// present flows in ascending `(cap, id)` order.
fn single_link_water_fill(capacity: f64, flows: &[FlowDemand], rates: &mut Vec<f64>) {
    let n = flows.len();
    rates.reserve(n);
    let mut remaining_cap = capacity;
    let mut remaining_flows = n;
    for flow in flows {
        let share = remaining_cap / remaining_flows as f64;
        let rate = flow.cap_kbps.min(share);
        rates.push(rate);
        remaining_cap -= rate;
        remaining_flows -= 1;
    }
}

/// Relative tolerance for the progressive-fill freeze decisions.
const FILL_EPS: f64 = 1e-9;

/// Multi-link max-min by progressive filling: all unfrozen flows share a
/// common level `t` that rises until either a flow's cap binds (freeze at
/// the cap) or a link saturates (freeze every unfrozen flow crossing it
/// at `t`). Each round freezes at least one flow, so the loop is bounded
/// by the flow count; all iteration is in flow/link index order.
fn max_min_fill(topo: &Topology, flows: &[FlowDemand], s: &mut FairScratch, rates: &mut Vec<f64>) {
    let n = flows.len();
    let nl = topo.n_links();
    rates.clear();
    rates.resize(n, 0.0);
    s.frozen.clear();
    s.frozen.resize(n, false);
    s.used.clear();
    s.used.resize(nl, 0.0);
    let mut t = 0.0_f64;
    for _round in 0..n + nl + 2 {
        // Active membership per link.
        s.counts.clear();
        s.counts.resize(nl, 0);
        let mut n_active = 0usize;
        for (i, f) in flows.iter().enumerate() {
            if s.frozen[i] {
                continue;
            }
            n_active += 1;
            for &l in topo.route(f.route) {
                s.counts[l as usize] += 1;
            }
        }
        if n_active == 0 {
            break;
        }
        // Largest uniform increment before a cap or a link binds.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if s.counts[l] > 0 {
                let headroom = topo.links()[l].capacity_kbps - s.used[l] - s.counts[l] as f64 * t;
                delta = delta.min(headroom / s.counts[l] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !s.frozen[i] {
                delta = delta.min(f.cap_kbps - t);
            }
        }
        let t_new = t + delta.max(0.0);
        let mut froze = false;
        // Cap freezes (flow order).
        for (i, f) in flows.iter().enumerate() {
            if s.frozen[i] || f.cap_kbps > t_new + FILL_EPS * t_new.max(1.0) {
                continue;
            }
            let rate = f.cap_kbps.min(t_new);
            rates[i] = rate;
            s.frozen[i] = true;
            froze = true;
            for &l in topo.route(f.route) {
                s.used[l as usize] += rate;
                s.counts[l as usize] -= 1;
            }
        }
        // Link freezes (link order): a saturated link pins every
        // remaining flow that crosses it at the common level.
        for l in 0..nl {
            if s.counts[l] == 0 {
                continue;
            }
            let cap_l = topo.links()[l].capacity_kbps;
            let headroom = cap_l - s.used[l] - s.counts[l] as f64 * t_new;
            if headroom > FILL_EPS * cap_l {
                continue;
            }
            for (i, f) in flows.iter().enumerate() {
                if s.frozen[i] || !topo.route(f.route).contains(&(l as u16)) {
                    continue;
                }
                rates[i] = t_new;
                s.frozen[i] = true;
                froze = true;
                for &k in topo.route(f.route) {
                    s.used[k as usize] += t_new;
                    s.counts[k as usize] -= 1;
                }
            }
        }
        if !froze {
            // Numerical stall (can only happen on float dust): pin every
            // remaining flow at the current level and stop.
            for (i, f) in flows.iter().enumerate() {
                if !s.frozen[i] {
                    rates[i] = f.cap_kbps.min(t_new);
                    s.frozen[i] = true;
                }
            }
            break;
        }
        t = t_new;
    }
}

/// The finite-α dual solver (see module docs). Rates come back in flow
/// order, normalized back to kbps.
fn alpha_fair_fill(
    topo: &Topology,
    alpha: f64,
    flows: &[FlowDemand],
    s: &mut FairScratch,
    rates: &mut Vec<f64>,
) -> SolveStats {
    let n = flows.len();
    let nl = topo.n_links();
    let inv_alpha = 1.0 / alpha;

    // Normalize by the largest capacity so bisection brackets and
    // tolerances are scale-free.
    let mut cscale = 0.0_f64;
    for l in topo.links() {
        cscale = cscale.max(l.capacity_kbps);
    }
    s.chat.clear();
    for l in topo.links() {
        s.chat.push(l.capacity_kbps / cscale);
    }
    s.clamp.clear();
    for f in flows {
        let ceiling = f.cap_kbps.min(topo.min_capacity_on(f.route));
        s.clamp.push(ceiling / cscale);
    }

    // Complementary slackness precomputed: a link whose members cannot
    // saturate it even at their clamps (Σ clamp ≤ ĉ) has price 0 at the
    // optimum whatever the other prices do (demand only shrinks as q
    // grows), so it never needs a bisection. `frozen` doubles as that
    // per-link "saturable" mask here; it is max-min scratch otherwise.
    s.used.clear();
    s.used.resize(nl, 0.0);
    for (i, f) in flows.iter().enumerate() {
        for &l in topo.route(f.route) {
            s.used[l as usize] += s.clamp[i];
        }
    }
    s.frozen.clear();
    for l in 0..nl {
        s.frozen.push(s.used[l] > s.chat[l]);
    }
    if s.frozen.iter().all(|&sat| !sat) {
        // No link can bind: every objective hands each flow its clamp,
        // and that is the exact optimum (zero KKT residual).
        rates.clear();
        rates.reserve(n);
        for &c in &s.clamp {
            rates.push(c * cscale);
        }
        return SolveStats {
            sweeps: 0,
            kkt_residual: 0.0,
        };
    }

    // Flat per-link member lists, sorted by (route, clamp, flow index),
    // with same-route runs and within-run clamp running sums: all the
    // members of a run see the same path price, so evaluating a run's
    // aggregate demand at a candidate price is one power, one binary
    // search and two lookups — the bisection cost is per *route*, not
    // per flow, which is what keeps the solver linear-ish when a busy
    // period piles hundreds of flows onto the pod.
    {
        let FairScratch {
            member_idx,
            member_off,
            clamp,
            groups,
            group_off,
            clamp_sorted,
            prefix,
            counts,
            ..
        } = &mut *s;
        // Count members per (link, route), lay out runs, then scatter in
        // flow order: a stable counting sort. Callers present flows in
        // ascending (cap, ...) order and clamp = min(cap, const-per-route)
        // is monotone in cap, so each run comes out clamp-sorted without
        // a comparator sort.
        let nr = topo.n_routes();
        counts.clear();
        counts.resize(nl * nr, 0);
        for f in flows {
            for &l in topo.route(f.route) {
                counts[l as usize * nr + f.route as usize] += 1;
            }
        }
        member_off.clear();
        groups.clear();
        group_off.clear();
        let mut off = 0usize;
        for l in 0..nl {
            member_off.push(off);
            group_off.push(groups.len());
            for r in 0..nr {
                let c = counts[l * nr + r];
                if c > 0 {
                    groups.push((r as u16, off as u32, (off + c) as u32));
                    // Repurpose the slot as the run's write cursor.
                    counts[l * nr + r] = off;
                    off += c;
                }
            }
        }
        member_off.push(off);
        group_off.push(groups.len());
        member_idx.clear();
        member_idx.resize(off, 0);
        clamp_sorted.clear();
        clamp_sorted.resize(off, 0.0);
        for (i, f) in flows.iter().enumerate() {
            for &l in topo.route(f.route) {
                let cursor = &mut counts[l as usize * nr + f.route as usize];
                member_idx[*cursor] = i as u32;
                clamp_sorted[*cursor] = clamp[i];
                *cursor += 1;
            }
        }
        prefix.clear();
        prefix.resize(off, 0.0);
        for &(_, gs, ge) in groups.iter() {
            let mut sum = 0.0;
            for j in gs as usize..ge as usize {
                debug_assert!(
                    j == gs as usize || clamp_sorted[j] >= clamp_sorted[j - 1],
                    "flows must arrive clamp-sorted within a route"
                );
                sum += clamp_sorted[j];
                prefix[j] = sum;
            }
        }
    }

    s.prices.clear();
    s.prices.resize(nl, 0.0);
    s.x.clear();
    s.x.resize(n, 0.0);

    let mut sweeps = 0usize;
    let mut residual = f64::INFINITY;
    for sweep in 0..MAX_SWEEPS {
        // One Gauss–Seidel sweep: clear each link exactly, holding the
        // other prices fixed.
        for l in 0..nl {
            let members = &s.member_idx[s.member_off[l]..s.member_off[l + 1]];
            if members.is_empty() || !s.frozen[l] {
                s.prices[l] = 0.0;
                continue;
            }
            // Path price of each same-route run excluding this link.
            let (g0, g1) = (s.group_off[l], s.group_off[l + 1]);
            s.qbase.clear();
            for gi in g0..g1 {
                let mut qb = 0.0;
                for &k in topo.route(s.groups[gi].0) {
                    if k as usize != l {
                        qb += s.prices[k as usize];
                    }
                }
                s.qbase.push(qb);
            }
            let chat_l = s.chat[l];
            let y_at = |p: f64, s: &FairScratch| -> f64 {
                let mut y = 0.0;
                for (j, &(_, gs, ge)) in s.groups[g0..g1].iter().enumerate() {
                    let (gs, ge) = (gs as usize, ge as usize);
                    let q = s.qbase[j] + p;
                    if q > 0.0 {
                        let v = q.powf(-inv_alpha);
                        // Members below their clamp contribute v; members
                        // clamped below v contribute their clamp sum.
                        let k = s.clamp_sorted[gs..ge].partition_point(|&c| c <= v);
                        let below = if k == 0 { 0.0 } else { s.prefix[gs + k - 1] };
                        y += below + v * (ge - gs - k) as f64;
                    } else {
                        y += s.prefix[ge - 1];
                    }
                }
                y
            };
            if y_at(0.0, s) <= chat_l {
                s.prices[l] = 0.0;
                continue;
            }
            if g1 - g0 == 1 {
                // Single same-route run: every member sees one path
                // price, so Σ min(clamp, v) = ĉ is a plain water-fill
                // over the sorted clamps — solve the level exactly and
                // price the link with one power. This is every link
                // crossed by a single route (the common case away from
                // the shared core), where the bisection below would
                // spend BISECT_STEPS powers for the same answer.
                let (gs, ge) = (s.groups[g0].1 as usize, s.groups[g0].2 as usize);
                let mut v = f64::INFINITY;
                for k in gs..ge {
                    // With the clamps below `level` pinned, the rest
                    // share evenly; the first consistent level wins.
                    let below = if k == gs { 0.0 } else { s.prefix[k - 1] };
                    let level = (chat_l - below) / (ge - k) as f64;
                    if level <= s.clamp_sorted[k] {
                        v = level;
                        break;
                    }
                }
                // y(0) > ĉ guarantees a consistent level exists and sits
                // below the uncapped zero-price demand, so the cleared
                // price v^(−α) − qbase is strictly positive.
                s.prices[l] = v.powf(-alpha) - s.qbase[0];
                continue;
            }
            // Upper bracket: at p = (m/ĉ)^α every member's demand is at
            // most ĉ/m, so y(p) ≤ ĉ. Guard overflow and double if the
            // closed form ever lands infeasible.
            let m = members.len() as f64;
            let mut hi = (m / chat_l).powf(alpha).clamp(1.0, 1e300);
            let mut guard = 0;
            while y_at(hi, s) > chat_l && guard < 60 {
                hi = (hi * 2.0).min(f64::MAX / 4.0);
                guard += 1;
            }
            let mut lo = 0.0_f64;
            for _ in 0..BISECT_STEPS {
                let mid = 0.5 * (lo + hi);
                if y_at(mid, s) > chat_l {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            // Keep the feasible side of the bracket.
            s.prices[l] = hi;
        }
        sweeps = sweep + 1;

        // Residual: with prices fixed, recompute q, x and per-link loads;
        // an active link must be cleared, an inactive one merely feasible.
        // One power per route (every flow on a route shares its path
        // price), then a per-flow min against the clamp.
        s.qbase.clear();
        for r in 0..topo.n_routes() {
            let mut q = 0.0;
            for &l in topo.route(r as u16) {
                q += s.prices[l as usize];
            }
            s.qbase.push(if q > 0.0 {
                q.powf(-inv_alpha)
            } else {
                f64::INFINITY
            });
        }
        for (i, f) in flows.iter().enumerate() {
            s.x[i] = s.clamp[i].min(s.qbase[f.route as usize]);
        }
        residual = 0.0_f64;
        for l in 0..nl {
            let members = &s.member_idx[s.member_off[l]..s.member_off[l + 1]];
            let mut y = 0.0;
            for &i in members {
                y += s.x[i as usize];
            }
            let r = if s.prices[l] > PRICE_TINY {
                (y - s.chat[l]).abs() / s.chat[l]
            } else {
                (y - s.chat[l]).max(0.0) / s.chat[l]
            };
            residual = residual.max(r);
        }
        if residual < SOLVER_TOL {
            break;
        }
    }

    // Final feasibility projection: if any link is (ULP-level) oversold,
    // scale every flow crossing it down by the worst overload on its
    // path. This preserves per-link conservation exactly up to rounding.
    s.used.clear();
    s.used.resize(nl, 0.0);
    for l in 0..nl {
        let members = &s.member_idx[s.member_off[l]..s.member_off[l + 1]];
        let mut y = 0.0;
        for &i in members {
            y += s.x[i as usize];
        }
        s.used[l] = y / s.chat[l];
    }
    rates.clear();
    rates.reserve(n);
    for (i, f) in flows.iter().enumerate() {
        let mut over = 1.0_f64;
        for &l in topo.route(f.route) {
            over = over.max(s.used[l as usize]);
        }
        let x = if over > 1.0 { s.x[i] / over } else { s.x[i] };
        rates.push(x * cscale);
    }
    SolveStats {
        sweeps,
        kkt_residual: residual,
    }
}

/// Standalone allocation with validation and a KKT report.
///
/// Flows are ranked by ascending `(cap, route)` internally (the canonical
/// order the event kernel maintains), so the result is invariant under
/// permutation of the input flows; rates come back in the input order.
pub fn allocate(
    topo: &Topology,
    objective: FairnessObjective,
    flows: &[FlowDemand],
) -> Result<Allocation> {
    objective.validate()?;
    for (i, f) in flows.iter().enumerate() {
        if !(f.cap_kbps > 0.0) {
            return Err(NetError::InvalidConfig(format!(
                "flow {i}: cap must be positive"
            )));
        }
        if f.route as usize >= topo.n_routes() {
            return Err(NetError::InvalidConfig(format!(
                "flow {i}: route {} out of range",
                f.route
            )));
        }
    }
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        flows[a]
            .cap_kbps
            .total_cmp(&flows[b].cap_kbps)
            .then(flows[a].route.cmp(&flows[b].route))
    });
    let sorted: Vec<FlowDemand> = order.iter().map(|&i| flows[i]).collect();
    let mut scratch = FairScratch::default();
    let mut sorted_rates = Vec::new();
    let stats = allocate_into(topo, objective, &sorted, &mut scratch, &mut sorted_rates);
    let mut rates = vec![0.0; flows.len()];
    for (pos, &i) in order.iter().enumerate() {
        rates[i] = sorted_rates[pos];
    }
    Ok(Allocation {
        rates,
        sweeps: stats.sweeps,
        kkt_residual: stats.kkt_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopoLink;

    fn two_hop_topo() -> Topology {
        Topology::new(
            vec![TopoLink::new(10_000.0, 0.0), TopoLink::new(6_000.0, 0.0)],
            vec![vec![0, 1], vec![1]],
        )
        .unwrap()
    }

    #[test]
    fn objective_validation() {
        assert!(FairnessObjective::AlphaFair(-1.0).validate().is_err());
        assert!(FairnessObjective::AlphaFair(f64::NAN).validate().is_err());
        assert!(FairnessObjective::AlphaFair(0.0).validate().is_ok());
        assert!(FairnessObjective::AlphaFair(f64::INFINITY).is_max_min());
        assert!(FairnessObjective::MaxMin.is_max_min());
        assert!(!FairnessObjective::ProportionalFair.is_max_min());
    }

    #[test]
    fn single_link_max_min_matches_legacy_walk_bitwise() {
        // The golden `access_caps_water_fill` fixture: 12 Mbps link, caps
        // (2 Mbps, ∞, ∞) → (2000, 5000, 5000), exactly.
        let topo = Topology::single_link(12_000.0).unwrap();
        let flows = [
            FlowDemand::new(2000.0, 0),
            FlowDemand::new(f64::INFINITY, 0),
            FlowDemand::new(f64::INFINITY, 0),
        ];
        let a = allocate(&topo, FairnessObjective::MaxMin, &flows).unwrap();
        assert_eq!(a.rates, vec![2000.0, 5000.0, 5000.0]);
        assert_eq!(a.sweeps, 0);
        assert_eq!(a.kkt_residual, 0.0);
        // α = ∞ dispatches to the identical code path: bit-exact.
        let inf = allocate(&topo, FairnessObjective::AlphaFair(f64::INFINITY), &flows).unwrap();
        assert_eq!(inf.rates, a.rates);
    }

    #[test]
    fn multi_hop_max_min_respects_every_link() {
        // Route 0 crosses both links, route 1 only the 6 Mbps link. The
        // shared link saturates at a common level of 3 Mbps each.
        let topo = two_hop_topo();
        let flows = [
            FlowDemand::new(f64::INFINITY, 0),
            FlowDemand::new(f64::INFINITY, 1),
        ];
        let a = allocate(&topo, FairnessObjective::MaxMin, &flows).unwrap();
        assert!((a.rates[0] - 3000.0).abs() < 1e-6, "rates {:?}", a.rates);
        assert!((a.rates[1] - 3000.0).abs() < 1e-6);
        // A third flow on the wide link only: max-min lets the route-1
        // flows keep splitting link 1 while it takes the leftover of
        // link 0.
        let flows = [
            FlowDemand::new(f64::INFINITY, 0),
            FlowDemand::new(f64::INFINITY, 1),
            FlowDemand::new(f64::INFINITY, 1),
        ];
        let a = allocate(&topo, FairnessObjective::MaxMin, &flows).unwrap();
        // Link 1 (6 Mbps, 3 flows) binds first at level 2000.
        for r in &a.rates {
            assert!((r - 2000.0).abs() < 1e-6, "rates {:?}", a.rates);
        }
    }

    #[test]
    fn proportional_fair_favors_short_routes() {
        // Classic PF on a line network: the long flow crosses both links,
        // each short flow one. PF gives the long flow less than max-min
        // would (it consumes resources on two links).
        let topo = Topology::new(
            vec![TopoLink::new(10_000.0, 0.0), TopoLink::new(10_000.0, 0.0)],
            vec![vec![0, 1], vec![0], vec![1]],
        )
        .unwrap();
        let flows = [
            FlowDemand::new(f64::INFINITY, 0),
            FlowDemand::new(f64::INFINITY, 1),
            FlowDemand::new(f64::INFINITY, 2),
        ];
        let a = allocate(&topo, FairnessObjective::ProportionalFair, &flows).unwrap();
        // Analytic PF optimum: long flow c/3, short flows 2c/3.
        assert!(
            (a.rates[0] - 10_000.0 / 3.0).abs() < 5.0,
            "long flow {:?}",
            a.rates
        );
        assert!((a.rates[1] - 20_000.0 / 3.0).abs() < 5.0);
        assert!((a.rates[2] - 20_000.0 / 3.0).abs() < 5.0);
        assert!(a.kkt_residual < 1e-8, "residual {}", a.kkt_residual);
    }

    #[test]
    fn allocate_rejects_bad_flows() {
        let topo = Topology::single_link(1000.0).unwrap();
        assert!(allocate(&topo, FairnessObjective::MaxMin, &[FlowDemand::new(0.0, 0)]).is_err());
        assert!(allocate(&topo, FairnessObjective::MaxMin, &[FlowDemand::new(1.0, 3)]).is_err());
        assert!(allocate(&topo, FairnessObjective::AlphaFair(-2.0), &[]).is_err());
    }

    #[test]
    fn empty_flow_set_allocates_nothing() {
        let topo = two_hop_topo();
        for obj in [
            FairnessObjective::MaxMin,
            FairnessObjective::ProportionalFair,
            FairnessObjective::AlphaFair(2.0),
        ] {
            let a = allocate(&topo, obj, &[]).unwrap();
            assert!(a.rates.is_empty());
        }
    }
}
