//! Throughput estimators.
//!
//! Three estimators cover the algorithms in the paper's evaluation:
//! - [`WindowEstimator`]: sliding-window `(mu, sigma)` normal model — the
//!   `N(mu_Cpast, sigma^2_Cpast)` of Eq. 3 that both the Monte-Carlo sampler
//!   and the pruning rule consume;
//! - [`HarmonicMeanEstimator`]: RobustMPC's conservative predictor;
//! - [`EwmaEstimator`]: the smoothed estimate HYB-style production rules use.

use lingxi_stats::NormalDist;
use serde::{Deserialize, Serialize};

use crate::{NetError, Result};

/// Common estimator interface over per-segment throughput observations.
pub trait BandwidthEstimator {
    /// Record one observed download throughput (kbps).
    fn observe(&mut self, kbps: f64);
    /// Current point estimate (kbps); `None` until at least one observation.
    fn estimate(&self) -> Option<f64>;
    /// Number of observations absorbed.
    fn count(&self) -> usize;
}

/// Sliding-window estimator exposing a fitted [`NormalDist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowEstimator {
    window: usize,
    samples: Vec<f64>,
    total_seen: usize,
}

impl WindowEstimator {
    /// Create with a window of `window` most-recent samples.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NetError::InvalidConfig("window must be positive".into()));
        }
        Ok(Self {
            window,
            samples: Vec::with_capacity(window),
            total_seen: 0,
        })
    }

    /// The fitted normal model over the window (`None` until 1 sample).
    pub fn normal_model(&self) -> Option<NormalDist> {
        if self.samples.is_empty() {
            return None;
        }
        NormalDist::fit(&self.samples).ok()
    }

    /// Window contents, oldest first.
    pub fn window_samples(&self) -> &[f64] {
        &self.samples
    }
}

impl BandwidthEstimator for WindowEstimator {
    fn observe(&mut self, kbps: f64) {
        if !(kbps > 0.0) || !kbps.is_finite() {
            return; // drop garbage observations rather than poisoning state
        }
        if self.samples.len() == self.window {
            self.samples.remove(0);
        }
        self.samples.push(kbps);
        self.total_seen += 1;
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    fn count(&self) -> usize {
        self.total_seen
    }
}

/// Harmonic mean over a sliding window, optionally discounted by the
/// maximum recent relative prediction error (the RobustMPC trick).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarmonicMeanEstimator {
    window: usize,
    samples: Vec<f64>,
    errors: Vec<f64>,
    last_prediction: Option<f64>,
    total_seen: usize,
}

impl HarmonicMeanEstimator {
    /// Create with the given window length.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NetError::InvalidConfig("window must be positive".into()));
        }
        Ok(Self {
            window,
            samples: Vec::new(),
            errors: Vec::new(),
            last_prediction: None,
            total_seen: 0,
        })
    }

    /// Robust (error-discounted) estimate:
    /// `harmonic_mean / (1 + max recent relative error)`.
    pub fn robust_estimate(&self) -> Option<f64> {
        let hm = self.estimate()?;
        let max_err = self.errors.iter().cloned().fold(0.0, f64::max);
        Some(hm / (1.0 + max_err))
    }
}

impl BandwidthEstimator for HarmonicMeanEstimator {
    fn observe(&mut self, kbps: f64) {
        if !(kbps > 0.0) || !kbps.is_finite() {
            return;
        }
        if let Some(pred) = self.last_prediction {
            let err = ((pred - kbps) / kbps).abs();
            if self.errors.len() == self.window {
                self.errors.remove(0);
            }
            self.errors.push(err);
        }
        if self.samples.len() == self.window {
            self.samples.remove(0);
        }
        self.samples.push(kbps);
        self.total_seen += 1;
        self.last_prediction = self.estimate();
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let inv_sum: f64 = self.samples.iter().map(|s| 1.0 / s).sum();
        Some(self.samples.len() as f64 / inv_sum)
    }

    fn count(&self) -> usize {
        self.total_seen
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    alpha: f64,
    value: Option<f64>,
    total_seen: usize,
}

impl EwmaEstimator {
    /// Create with smoothing factor `alpha` in `(0, 1]` (weight of the new
    /// sample).
    pub fn new(alpha: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(NetError::InvalidConfig("alpha must be in (0,1]".into()));
        }
        Ok(Self {
            alpha,
            value: None,
            total_seen: 0,
        })
    }
}

impl BandwidthEstimator for EwmaEstimator {
    fn observe(&mut self, kbps: f64) {
        if !(kbps > 0.0) || !kbps.is_finite() {
            return;
        }
        self.value = Some(match self.value {
            None => kbps,
            Some(v) => self.alpha * kbps + (1.0 - self.alpha) * v,
        });
        self.total_seen += 1;
    }

    fn estimate(&self) -> Option<f64> {
        self.value
    }

    fn count(&self) -> usize {
        self.total_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_estimator_slides() {
        let mut e = WindowEstimator::new(3).unwrap();
        assert_eq!(e.estimate(), None);
        for v in [1000.0, 2000.0, 3000.0, 4000.0] {
            e.observe(v);
        }
        // Window holds [2000, 3000, 4000].
        assert_eq!(e.estimate(), Some(3000.0));
        assert_eq!(e.count(), 4);
        let n = e.normal_model().unwrap();
        assert_eq!(n.mu, 3000.0);
    }

    #[test]
    fn window_estimator_ignores_garbage() {
        let mut e = WindowEstimator::new(3).unwrap();
        e.observe(-5.0);
        e.observe(f64::NAN);
        e.observe(0.0);
        assert_eq!(e.estimate(), None);
        e.observe(1000.0);
        assert_eq!(e.estimate(), Some(1000.0));
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        let mut e = HarmonicMeanEstimator::new(5).unwrap();
        for v in [1000.0, 4000.0] {
            e.observe(v);
        }
        let hm = e.estimate().unwrap();
        assert!((hm - 1600.0).abs() < 1e-9); // 2/(1/1000+1/4000)
        assert!(hm < 2500.0);
    }

    #[test]
    fn robust_estimate_discounts_on_errors() {
        let mut e = HarmonicMeanEstimator::new(5).unwrap();
        // Stable then a crash: prediction error inflates the discount.
        for v in [5000.0, 5000.0, 5000.0, 1000.0] {
            e.observe(v);
        }
        let plain = e.estimate().unwrap();
        let robust = e.robust_estimate().unwrap();
        assert!(robust < plain);
    }

    #[test]
    fn ewma_converges() {
        let mut e = EwmaEstimator::new(0.5).unwrap();
        for _ in 0..20 {
            e.observe(2000.0);
        }
        assert!((e.estimate().unwrap() - 2000.0).abs() < 1.0);
        // Responds to change.
        e.observe(4000.0);
        let v = e.estimate().unwrap();
        assert!(v > 2500.0 && v < 3500.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(WindowEstimator::new(0).is_err());
        assert!(HarmonicMeanEstimator::new(0).is_err());
        assert!(EwmaEstimator::new(0.0).is_err());
        assert!(EwmaEstimator::new(1.5).is_err());
    }
}
