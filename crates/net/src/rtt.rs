//! Round-trip-time model.
//!
//! Eq. 3 adds an RTT term to the inter-segment waiting time; production
//! links see a base propagation delay plus jitter.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{NetError, Result};

/// RTT = `base + Exp(jitter_mean)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttModel {
    /// Base (propagation) RTT in seconds.
    pub base_seconds: f64,
    /// Mean of the exponential jitter component, seconds (0 disables).
    pub jitter_mean: f64,
}

impl RttModel {
    /// Typical mobile CDN path: 40 ms base, 10 ms mean jitter.
    pub fn default_mobile() -> Self {
        Self {
            base_seconds: 0.040,
            jitter_mean: 0.010,
        }
    }

    /// Deterministic RTT (no jitter) for tests.
    pub fn constant(seconds: f64) -> Self {
        Self {
            base_seconds: seconds,
            jitter_mean: 0.0,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.base_seconds >= 0.0) || !(self.jitter_mean >= 0.0) {
            return Err(NetError::InvalidConfig(
                "RTT components must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Draw one RTT sample (seconds).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let jitter = if self.jitter_mean == 0.0 {
            0.0
        } else {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -self.jitter_mean * u.ln()
        };
        self.base_seconds + jitter
    }

    /// Expected RTT (seconds).
    pub fn mean(&self) -> f64 {
        self.base_seconds + self.jitter_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rtt() {
        let r = RttModel::constant(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(r.sample(&mut rng), 0.05);
        assert_eq!(r.mean(), 0.05);
    }

    #[test]
    fn jitter_mean_converges() {
        let r = RttModel::default_mobile();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let m: f64 = (0..n).map(|_| r.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - r.mean()).abs() < 0.001, "mean {m}");
    }

    #[test]
    fn samples_never_below_base() {
        let r = RttModel::default_mobile();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.sample(&mut rng) >= r.base_seconds);
        }
    }

    #[test]
    fn validation() {
        assert!(RttModel::constant(-0.1).validate().is_err());
        assert!(RttModel::default_mobile().validate().is_ok());
    }
}
