//! Property-based invariants for the fairness-parametric allocator and
//! the Kleinrock topology layer.
//!
//! The allocator properties pin the α-fair dual solver to its contract on
//! random multi-hop topologies and flow sets: no link is ever
//! oversubscribed, no flow exceeds its access cap or its path's tightest
//! link, the result is a pure function of the flow *set* (deterministic
//! and invariant under permutation of the input order), the α → ∞ family
//! limit lands on the max-min water-fill (bit-exactly at α = ∞, within
//! tolerance at large finite α), and proportional fairness leaves a
//! bounded KKT stationarity residual. The topology property pins the
//! Kleinrock composition: end-to-end delay is monotone in utilization.
//!
//! The vendored `proptest` stand-in has no `prop_map`/`prop_flat_map`,
//! so instances are drawn as raw primitives and assembled by the
//! deterministic builders below.

use lingxi_net::{allocate, FairnessObjective, FlowDemand, TopoLink, Topology, MAX_SWEEPS};
use proptest::prelude::*;

/// Relative slack for feasibility checks: the solver's scaling round
/// trips through a capacity normalization, so sums can sit a few ULP
/// above the exact bound.
const FEAS_SLACK: f64 = 1e-6;

/// Build a 2–4 link topology from raw draws: `nl_pick` selects the link
/// count, `links_raw` supplies `(capacity, prop delay)` pairs, and each
/// route seed's low bits select which links its route crosses (ascending,
/// truncated to 3 hops, with a 1-hop fallback when no bit is set).
fn build_topo(nl_pick: usize, links_raw: &[(f64, f64)], route_seeds: &[u64]) -> Topology {
    let nl = 2 + nl_pick % 3;
    let links: Vec<TopoLink> = links_raw[..nl]
        .iter()
        .map(|&(c, d)| TopoLink::new(c, d))
        .collect();
    let routes: Vec<Vec<u16>> = route_seeds
        .iter()
        .map(|&seed| {
            let hops: Vec<u16> = (0..nl as u16)
                .filter(|&l| (seed >> l) & 1 == 1)
                .take(3)
                .collect();
            if hops.is_empty() {
                vec![(seed % nl as u64) as u16]
            } else {
                hops
            }
        })
        .collect();
    Topology::new(links, routes).expect("builder emits valid topologies")
}

/// Build 1–12 flows with pairwise-distinct caps (so flow identity is
/// never ambiguous under reordering) and uniformly random routes.
fn build_flows(caps_raw: &[u32], routes_raw: &[u16], n_routes: usize) -> Vec<FlowDemand> {
    let mut caps = caps_raw.to_vec();
    caps.sort_unstable();
    caps.dedup();
    caps.iter()
        .zip(routes_raw)
        .map(|(&c, &r)| FlowDemand::new(c as f64 / 100.0, r % n_routes as u16))
        .collect()
}

/// Select one of the three objective families; `alpha` feeds the
/// `AlphaFair` arm so finite α sweeps `[0.25, 8)`.
fn pick_objective(sel: usize, alpha: f64) -> FairnessObjective {
    match sel % 3 {
        0 => FairnessObjective::MaxMin,
        1 => FairnessObjective::ProportionalFair,
        _ => FairnessObjective::AlphaFair(alpha),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Per-link conservation: for every link, the rates of the flows
    /// whose route crosses it sum to at most its capacity.
    #[test]
    fn per_link_conservation(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
        sel in 0usize..3,
        alpha in 0.25f64..8.0,
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let objective = pick_objective(sel, alpha);
        let alloc = allocate(&topo, objective, &flows).unwrap();
        for l in 0..topo.n_links() as u16 {
            let mut load = 0.0;
            for (f, &rate) in flows.iter().zip(&alloc.rates) {
                if topo.route(f.route).contains(&l) {
                    load += rate;
                }
            }
            let cap = topo.links()[l as usize].capacity_kbps;
            prop_assert!(
                load <= cap * (1.0 + FEAS_SLACK),
                "link {l} oversubscribed: {load} > {cap} under {objective:?}"
            );
        }
    }

    /// Cap respect: every rate is positive, at most the flow's access
    /// cap, and at most the tightest link capacity on its route.
    #[test]
    fn rates_respect_caps_and_paths(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
        sel in 0usize..3,
        alpha in 0.25f64..8.0,
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let objective = pick_objective(sel, alpha);
        let alloc = allocate(&topo, objective, &flows).unwrap();
        for (i, (f, &rate)) in flows.iter().zip(&alloc.rates).enumerate() {
            let ceil = f.cap_kbps.min(topo.min_capacity_on(f.route));
            prop_assert!(
                rate > 0.0 && rate <= ceil * (1.0 + FEAS_SLACK),
                "flow {i}: rate {rate} outside (0, {ceil}] under {objective:?}"
            );
        }
    }

    /// Determinism: the same instance solved twice gives bit-identical
    /// rates and identical solver statistics.
    #[test]
    fn allocation_is_deterministic(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
        sel in 0usize..3,
        alpha in 0.25f64..8.0,
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let objective = pick_objective(sel, alpha);
        let a = allocate(&topo, objective, &flows).unwrap();
        let b = allocate(&topo, objective, &flows).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Permutation invariance: the allocation is a function of the flow
    /// *set* — reversing or rotating the input order moves each flow's
    /// bit-identical rate along with it.
    #[test]
    fn allocation_is_permutation_invariant(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
        sel in 0usize..3,
        alpha in 0.25f64..8.0,
        rot in 0usize..12,
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let objective = pick_objective(sel, alpha);
        let base = allocate(&topo, objective, &flows).unwrap();

        let reversed: Vec<FlowDemand> = flows.iter().rev().copied().collect();
        let rev = allocate(&topo, objective, &reversed).unwrap();
        for (i, &rate) in base.rates.iter().enumerate() {
            let j = flows.len() - 1 - i;
            prop_assert!(
                rate.to_bits() == rev.rates[j].to_bits(),
                "flow {i}: {rate} != {} after reversal",
                rev.rates[j]
            );
        }

        let rot = rot % flows.len();
        let rotated: Vec<FlowDemand> = flows[rot..]
            .iter()
            .chain(&flows[..rot])
            .copied()
            .collect();
        let rtd = allocate(&topo, objective, &rotated).unwrap();
        for (i, &rate) in base.rates.iter().enumerate() {
            let j = (i + flows.len() - rot) % flows.len();
            prop_assert!(
                rate.to_bits() == rtd.rates[j].to_bits(),
                "flow {i}: {rate} != {} after rotation by {rot}",
                rtd.rates[j]
            );
        }
    }

    /// The α → ∞ limit: `AlphaFair(∞)` dispatches to the max-min
    /// water-fill bit-exactly, and large finite α lands near it on every
    /// flow. The deterministic solver trades exactness for a fixed
    /// budget, so the tight bound is conditioned on its own convergence
    /// report: whenever the α = 16 dual closes inside [`MAX_SWEEPS`]
    /// (~98% of random instances), every rate is within a few percent of
    /// the water-fill; exhausted instances still stay within a loose
    /// same-ballpark bound. Demands have elasticity 1/α, so far larger α
    /// leaves Gauss–Seidel too stiff to make the budget meaningful.
    #[test]
    fn large_alpha_approaches_max_min(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let mm = allocate(&topo, FairnessObjective::MaxMin, &flows).unwrap();

        let inf = allocate(&topo, FairnessObjective::AlphaFair(f64::INFINITY), &flows).unwrap();
        prop_assert_eq!(&mm, &inf, "alpha = inf must be the max-min code path, bit-exactly");

        let big = allocate(&topo, FairnessObjective::AlphaFair(16.0), &flows).unwrap();
        let tol = if big.sweeps < MAX_SWEEPS { 0.08 } else { 0.50 };
        for (i, (&x_mm, &x_a)) in mm.rates.iter().zip(&big.rates).enumerate() {
            let rel = (x_a - x_mm).abs() / x_mm;
            prop_assert!(
                rel < tol,
                "flow {i}: alpha=16 rate {x_a} vs max-min {x_mm} (rel {rel}, {} sweeps)",
                big.sweeps
            );
        }
    }

    /// Proportional fairness leaves a bounded KKT stationarity residual
    /// on random instances: whenever the dual closes inside its fixed
    /// budget (the overwhelmingly common case) the residual sits at the
    /// solver tolerance, and even budget-exhausted instances report a
    /// small residual rather than a wrong-looking allocation.
    #[test]
    fn pf_kkt_residual_bounded(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        caps_raw in collection::vec(1_000u32..8_000_000, 1..13),
        routes_raw in collection::vec(0u16..1024, 12..13),
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let flows = build_flows(&caps_raw, &routes_raw, topo.n_routes());
        let alloc = allocate(&topo, FairnessObjective::ProportionalFair, &flows).unwrap();
        let bound = if alloc.sweeps < MAX_SWEEPS { 1e-8 } else { 5e-2 };
        prop_assert!(
            alloc.kkt_residual < bound,
            "PF KKT residual {} over bound {bound} ({} sweeps)",
            alloc.kkt_residual,
            alloc.sweeps
        );
    }

    /// Kleinrock composition: end-to-end path delay is monotone
    /// non-decreasing in utilization — scaling every link's ρ up never
    /// reduces the delay (and never reduces the jitter).
    #[test]
    fn kleinrock_delay_monotone_in_utilization(
        nl_pick in 0usize..3,
        links_raw in collection::vec((2_000.0f64..40_000.0, 0.0005f64..0.02), 4..5),
        route_seeds in collection::vec(0u64..10_000, 1..5),
        route_sel in 0usize..4,
        rho in collection::vec(0.0f64..1.2, 4..5),
        f_lo in 0.0f64..1.0,
        f_hi in 0.0f64..1.0,
    ) {
        let topo = build_topo(nl_pick, &links_raw, &route_seeds);
        let route = (route_sel % topo.n_routes()) as u16;
        let (lo, hi) = if f_lo <= f_hi { (f_lo, f_hi) } else { (f_hi, f_lo) };
        let rho_lo: Vec<f64> = rho.iter().map(|r| r * lo).collect();
        let rho_hi: Vec<f64> = rho.iter().map(|r| r * hi).collect();
        let (d_lo, j_lo) = topo.path_delay_jitter(route, &rho_lo);
        let (d_hi, j_hi) = topo.path_delay_jitter(route, &rho_hi);
        prop_assert!(
            d_lo <= d_hi * (1.0 + 1e-12),
            "delay not monotone: {d_lo} at x{lo} > {d_hi} at x{hi}"
        );
        prop_assert!(j_lo <= j_hi * (1.0 + 1e-12) + 1e-15);
    }
}
