//! Property-based invariants for the bandwidth-process layer.
//!
//! The trace properties pin `download_time` to its definition: the
//! integral of `at(t)` over the returned interval must equal the requested
//! size, and more bits can never download faster. The bottleneck
//! properties pin the event kernel's conservation law: no window ever
//! delivers more than `capacity × window` kbits, whatever the arrival
//! pattern.

use lingxi_net::{BandwidthProcess, BandwidthTrace, SharedBottleneck};
use proptest::prelude::*;

/// Reference integral of `at(t)` over `[t0, t0 + dt]`, stepping tick
/// boundaries exactly like the piecewise-constant trace definition.
/// Samples `at` mid-span so float dust on a boundary cannot read the
/// neighbouring tick.
fn integrate(trace: &BandwidthTrace, t0: f64, dt: f64) -> f64 {
    let tick = trace.tick_seconds();
    let end = t0 + dt;
    let mut acc = 0.0;
    let mut t = t0;
    let mut tick_idx = (t0 / tick) as usize;
    while t < end - 1e-12 {
        let tick_end = (tick_idx + 1) as f64 * tick;
        let stop = tick_end.min(end);
        if stop > t {
            acc += trace.at((t + stop) / 2.0) * (stop - t);
        }
        t = stop;
        tick_idx += 1;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `download_time` is consistent with trace integration: the
    /// `at(t)`-weighted integral over the returned interval recovers the
    /// requested size.
    #[test]
    fn download_time_matches_trace_integral(
        samples in proptest::collection::vec(50.0f64..40_000.0, 1..24),
        tick in 0.25f64..4.0,
        t_start in 0.0f64..120.0,
        kbits in 1.0f64..200_000.0,
    ) {
        let trace = BandwidthTrace::new(tick, samples).unwrap();
        let duration = trace.download_time(t_start, kbits);
        prop_assert!(duration > 0.0);
        let integral = integrate(&trace, t_start, duration);
        let rel = (integral - kbits).abs() / kbits;
        prop_assert!(rel < 1e-6, "integral {integral} vs size {kbits} (rel {rel})");
    }

    /// More bits never download faster from the same start time.
    #[test]
    fn download_time_monotone_in_size(
        samples in proptest::collection::vec(50.0f64..40_000.0, 1..24),
        tick in 0.25f64..4.0,
        t_start in 0.0f64..120.0,
        a in 1.0f64..100_000.0,
        b in 1.0f64..100_000.0,
    ) {
        let trace = BandwidthTrace::new(tick, samples).unwrap();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            trace.download_time(t_start, small) <= trace.download_time(t_start, large) + 1e-12
        );
    }

    /// The trait impl agrees with the raw trace: duration identical,
    /// kbps·duration recovers the size.
    #[test]
    fn trace_process_consistent_with_trace(
        samples in proptest::collection::vec(50.0f64..40_000.0, 1..16),
        t_start in 0.0f64..60.0,
        kbits in 1.0f64..50_000.0,
    ) {
        let trace = BandwidthTrace::new(1.0, samples).unwrap();
        let d = trace.download(t_start, kbits);
        prop_assert_eq!(d.duration, trace.download_time(t_start, kbits));
        let rel = (d.kbps * d.duration - kbits).abs() / kbits;
        prop_assert!(rel < 1e-9);
    }

    /// Conservation: whatever the flow sizes, caps and staggered arrivals,
    /// total kbits delivered by a shared link over any window never exceed
    /// capacity × window — and each flow's effective rate respects its cap.
    #[test]
    fn bottleneck_conserves_capacity(
        capacity in 500.0f64..50_000.0,
        flows in proptest::collection::vec(
            (100.0f64..30_000.0, 0.0f64..20.0, 200.0f64..20_000.0),
            1..12,
        ),
        horizon in 1.0f64..40.0,
    ) {
        let link = SharedBottleneck::new(capacity).unwrap();
        let mut arrivals: Vec<(f64, f64, f64)> = flows;
        arrivals.sort_by(|x, y| x.1.total_cmp(&y.1));
        let mut begun = 0.0;
        let earliest = arrivals[0].1;
        let latest = arrivals.last().unwrap().1;
        for (id, (size, at, cap)) in arrivals.iter().enumerate() {
            link.begin_flow(id as u64, *at, *size, *cap).unwrap();
            begun += size;
        }
        link.advance_to(latest + horizon);
        // Nothing was delivered before the first arrival, so the active
        // window is [earliest, now].
        let window = link.now() - earliest;
        let delivered = begun - link.remaining_kbits();
        prop_assert!(
            delivered <= capacity * window + 1e-6,
            "delivered {delivered} kbits in {window}s at {capacity} kbps"
        );
        // Per-flow cap: effective rate of every completed flow is at most
        // min(cap, capacity).
        while let Some(end) = link.pop_completion() {
            let cap = arrivals[end.id as usize].2;
            prop_assert!(
                end.kbps <= cap.min(capacity) + 1e-6,
                "flow {} ran at {} over cap {}",
                end.id, end.kbps, cap
            );
        }
    }

    /// The kernel is a pure function of its inputs: replaying the same
    /// arrivals yields identical completions.
    #[test]
    fn bottleneck_deterministic(
        capacity in 500.0f64..50_000.0,
        flows in proptest::collection::vec(
            (100.0f64..30_000.0, 0.0f64..20.0),
            1..10,
        ),
    ) {
        let run = || {
            let link = SharedBottleneck::new(capacity).unwrap();
            let mut sorted = flows.clone();
            sorted.sort_by(|x, y| x.1.total_cmp(&y.1));
            for (id, (size, at)) in sorted.iter().enumerate() {
                link.begin_flow(id as u64, *at, *size, f64::INFINITY).unwrap();
            }
            let mut ends = Vec::new();
            while let Some(end) = link.pop_completion() {
                ends.push(end);
            }
            ends
        };
        prop_assert_eq!(run(), run());
    }
}
