//! Property-based equivalence of the timer wheel and the reference heap.
//!
//! The fleet contention kernel's determinism rests on its arrival queue
//! popping events in exact `(time, id)` order. [`BinaryHeapQueue`] is
//! trivially correct; these properties force [`TimerWheel`] to agree with
//! it event-for-event on arbitrary workloads — random times spanning
//! sub-tick spacing through past-the-horizon outliers, tie storms at a
//! single timestamp, and interleaved push/pop schedules that exercise
//! late pushes behind the wheel cursor.

use lingxi_net::{BinaryHeapQueue, EventQueue, TimerWheel};
use proptest::prelude::*;

/// Event times that stress every wheel path: dense sub-tick clusters,
/// mid-range slots, far-future overflow, and exact duplicates (ties).
fn arb_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => 0.0f64..2.0,          // dense: many events per tick
        4 => 0.0f64..5_000.0,      // typical kernel range
        1 => 1.0e6f64..3.0e6,      // beyond the wheel horizon
        1 => Just(1.25f64),        // guaranteed tie storms
        1 => Just(0.0f64),
    ]
}

fn drain_all<Q: EventQueue<usize>>(q: &mut Q) -> Vec<(f64, u64, usize)> {
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push(e);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk load then full drain: identical pop sequences.
    #[test]
    fn wheel_pops_in_heap_order(times in proptest::collection::vec(arb_time(), 1..200)) {
        let mut heap = BinaryHeapQueue::new();
        let mut wheel = TimerWheel::new();
        for (i, &at) in times.iter().enumerate() {
            // Unique (at, id) keys: ids are distinct even when times tie.
            heap.push(at, i as u64, i);
            wheel.push(at, i as u64, i);
        }
        prop_assert_eq!(heap.len(), wheel.len());
        prop_assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    /// Interleaved schedule: after every operation the two queues expose
    /// the same peek key, and late pushes (earlier than events already
    /// popped) keep the orders aligned.
    #[test]
    fn wheel_matches_heap_under_interleaving(
        ops in proptest::collection::vec((arb_time(), 0u8..4), 1..150),
    ) {
        let mut heap = BinaryHeapQueue::new();
        let mut wheel = TimerWheel::new();
        let mut id = 0u64;
        for &(at, kind) in &ops {
            if kind == 0 {
                // Pop from both (may be empty — must agree on that too).
                prop_assert_eq!(heap.pop(), wheel.pop());
            } else {
                heap.push(at, id, id as usize);
                wheel.push(at, id, id as usize);
                id += 1;
            }
            prop_assert_eq!(heap.peek(), wheel.peek());
            prop_assert_eq!(heap.len(), wheel.len());
        }
        prop_assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    /// Tie storm: every event at the same timestamp pops in ascending id
    /// order regardless of push order.
    #[test]
    fn tie_storms_resolve_by_id(
        n in 1usize..150,
        at in 0.0f64..1.0e5,
        seed_shuffle in 0u64..u64::MAX,
    ) {
        let mut ids: Vec<u64> = (0..n as u64).collect();
        // Deterministic pseudo-shuffle from the seed (no RNG dependency).
        let m = ids.len();
        for i in (1..m).rev() {
            let j = (seed_shuffle.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64)
                % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        let mut wheel = TimerWheel::new();
        for &uid in &ids {
            wheel.push(at, uid, uid as usize);
        }
        for want in 0..n as u64 {
            let (got_at, got_id, _) = wheel.pop().unwrap();
            prop_assert_eq!((got_at, got_id), (at, want));
        }
        prop_assert!(wheel.is_empty());
    }
}
