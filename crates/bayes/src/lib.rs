//! Online Bayesian optimization (paper §3.1).
//!
//! LingXi treats per-user QoE-parameter tuning as online black-box
//! minimization of the predicted exit rate: a Gaussian-process surrogate is
//! fit over past `(parameters, exit rate)` trials, an acquisition function
//! proposes the next candidate, and the loop warm-starts from the
//! previously optimal parameters whenever the QoE-adjustment trigger fires
//! ("leverages previously optimized configurations as initialization points
//! for subsequent iterations").
//!
//! Everything works on the unit cube; callers map physical parameters
//! through `QoeParams::to_unit`/`from_unit`.
//!
//! ```
//! use lingxi_bayes::{ObOptimizer, ObserverConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Warm-start from the previous optimum (§3.1), then propose on [0,1].
//! let mut opt = ObOptimizer::new(ObserverConfig::for_dim(1)).unwrap();
//! opt.init_with(&[0.5]).unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = opt.next_candidate(&mut rng);
//! assert_eq!(x.len(), 1);
//! assert!((0.0..=1.0).contains(&x[0]));
//! opt.update(x, 0.12).unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod acquisition;
pub mod gp;
pub mod kernel;
pub mod linalg;
pub mod optimizer;

pub use acquisition::Acquisition;
pub use gp::{GpConfig, GpModel};
pub use kernel::Kernel;
pub use linalg::{cholesky_solve, Cholesky};
pub use optimizer::{ObOptimizer, ObserverConfig};

/// Errors from surrogate fitting or optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// Invalid configuration or input.
    InvalidConfig(String),
    /// The kernel matrix was not positive definite even with jitter.
    NotPositiveDefinite,
    /// Operation requires observations that are not there yet.
    NoObservations,
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            BayesError::NotPositiveDefinite => write!(f, "kernel matrix not PD"),
            BayesError::NoObservations => write!(f, "no observations"),
        }
    }
}

impl std::error::Error for BayesError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BayesError>;
