//! The online Bayesian optimizer: ask/tell loop with warm starts
//! (Algorithm 1's `OBO.init`, `OBO.next_candidate`, `OBO.update`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::acquisition::Acquisition;
use crate::gp::{GpConfig, GpModel};
use crate::{BayesError, Result};

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObserverConfig {
    /// Search-space dimension (unit cube).
    pub dim: usize,
    /// GP surrogate settings.
    pub gp: GpConfig,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// Random candidates scored per `next_candidate` call.
    pub n_candidates: usize,
    /// Pure-random warmup proposals before the surrogate kicks in.
    pub warmup: usize,
    /// Local-perturbation radius around the warm start for the first
    /// proposals (exploit the previous optimum, §3.1).
    pub warm_radius: f64,
}

impl ObserverConfig {
    /// Standard settings for `dim`-dimensional tuning.
    pub fn for_dim(dim: usize) -> Self {
        Self {
            dim,
            gp: GpConfig::default(),
            acquisition: Acquisition::default_ei(),
            n_candidates: 256,
            warmup: 3,
            warm_radius: 0.15,
        }
    }
}

/// Online Bayesian optimizer over the unit cube (minimization).
#[derive(Debug, Clone)]
pub struct ObOptimizer {
    config: ObserverConfig,
    observations: Vec<(Vec<f64>, f64)>,
    warm_start: Option<Vec<f64>>,
}

impl ObOptimizer {
    /// Fresh optimizer.
    pub fn new(config: ObserverConfig) -> Result<Self> {
        if config.dim == 0 {
            return Err(BayesError::InvalidConfig("dim must be positive".into()));
        }
        if config.n_candidates == 0 {
            return Err(BayesError::InvalidConfig(
                "need at least one candidate".into(),
            ));
        }
        Ok(Self {
            config,
            observations: Vec::new(),
            warm_start: None,
        })
    }

    /// Warm-start at a previously optimal point (`OBO.init(x*, ...)`).
    pub fn init_with(&mut self, x0: &[f64]) -> Result<()> {
        if x0.len() != self.config.dim {
            return Err(BayesError::InvalidConfig("warm start dim mismatch".into()));
        }
        self.warm_start = Some(x0.iter().map(|v| v.clamp(0.0, 1.0)).collect());
        Ok(())
    }

    /// Record an evaluated trial (`OBO.update(x, R_exit)`).
    pub fn update(&mut self, x: Vec<f64>, y: f64) -> Result<()> {
        if x.len() != self.config.dim {
            return Err(BayesError::InvalidConfig("observation dim mismatch".into()));
        }
        if !y.is_finite() {
            return Err(BayesError::InvalidConfig("objective must be finite".into()));
        }
        self.observations.push((x, y));
        Ok(())
    }

    /// Best observation so far.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.observations
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(x, y)| (x.as_slice(), *y))
    }

    /// Number of recorded trials.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Propose the next candidate (`OBO.next_candidate()`).
    ///
    /// Strategy: during warmup, perturb the warm start (or sample
    /// uniformly); afterwards, fit the GP surrogate and return the best of
    /// `n_candidates` random points under the acquisition function.
    pub fn next_candidate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.config.dim;
        if self.observations.len() < self.config.warmup {
            return match &self.warm_start {
                Some(x0) => x0
                    .iter()
                    .map(|&v| {
                        (v + (rng.gen::<f64>() * 2.0 - 1.0) * self.config.warm_radius)
                            .clamp(0.0, 1.0)
                    })
                    .collect(),
                None => (0..d).map(|_| rng.gen()).collect(),
            };
        }
        let xs: Vec<Vec<f64>> = self.observations.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = self.observations.iter().map(|(_, y)| *y).collect();
        let best = self.best().map(|(_, y)| y).unwrap_or(0.0);
        let gp = match GpModel::fit(self.config.gp, &xs, &ys) {
            Ok(g) => g,
            // Surrogate failure: degrade gracefully to random search.
            Err(_) => return (0..d).map(|_| rng.gen()).collect(),
        };
        let mut best_x: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.config.n_candidates {
            // Mix global uniform candidates with local ones near the
            // incumbent (classic BO candidate pool).
            let cand: Vec<f64> = if i % 4 == 0 {
                if let Some((bx, _)) = self.best() {
                    bx.iter()
                        .map(|&v| (v + (rng.gen::<f64>() * 2.0 - 1.0) * 0.1).clamp(0.0, 1.0))
                        .collect()
                } else {
                    (0..d).map(|_| rng.gen()).collect()
                }
            } else {
                (0..d).map(|_| rng.gen()).collect()
            };
            if let Ok((mean, var)) = gp.predict(&cand) {
                let score = self.config.acquisition.score(mean, var, best);
                if score > best_score {
                    best_score = score;
                    best_x = cand;
                }
            }
        }
        best_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Quadratic bowl with minimum at (0.7, 0.3).
    fn objective(x: &[f64]) -> f64 {
        (x[0] - 0.7).powi(2) + (x[1] - 0.3).powi(2)
    }

    #[test]
    fn optimizer_finds_bowl_minimum() {
        let mut opt = ObOptimizer::new(ObserverConfig::for_dim(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let x = opt.next_candidate(&mut rng);
            let y = objective(&x);
            opt.update(x, y).unwrap();
        }
        let (bx, by) = opt.best().unwrap();
        assert!(by < 0.02, "best objective {by}");
        assert!((bx[0] - 0.7).abs() < 0.2, "x0 {}", bx[0]);
        assert!((bx[1] - 0.3).abs() < 0.2, "x1 {}", bx[1]);
    }

    #[test]
    fn beats_pure_random_on_budget() {
        // With the same evaluation budget, BO should do at least as well
        // as uniform random search (averaged over seeds).
        let mut bo_total = 0.0;
        let mut rand_total = 0.0;
        for seed in 0..5 {
            let mut opt = ObOptimizer::new(ObserverConfig::for_dim(2)).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let x = opt.next_candidate(&mut rng);
                let y = objective(&x);
                opt.update(x, y).unwrap();
            }
            bo_total += opt.best().unwrap().1;

            let mut rng2 = StdRng::seed_from_u64(seed + 100);
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let x: Vec<f64> = (0..2).map(|_| rng2.gen()).collect();
                best = best.min(objective(&x));
            }
            rand_total += best;
        }
        assert!(
            bo_total <= rand_total * 1.2,
            "BO {bo_total} vs random {rand_total}"
        );
    }

    #[test]
    fn warm_start_biases_first_proposals() {
        let mut opt = ObOptimizer::new(ObserverConfig::for_dim(3)).unwrap();
        opt.init_with(&[0.5, 0.5, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let x = opt.next_candidate(&mut rng);
            for v in &x {
                assert!((v - 0.5).abs() <= 0.15 + 1e-12, "warmup strays: {v}");
            }
        }
    }

    #[test]
    fn validation() {
        assert!(ObOptimizer::new(ObserverConfig::for_dim(0)).is_err());
        let mut opt = ObOptimizer::new(ObserverConfig::for_dim(2)).unwrap();
        assert!(opt.init_with(&[0.5]).is_err());
        assert!(opt.update(vec![0.5], 1.0).is_err());
        assert!(opt.update(vec![0.5, 0.5], f64::NAN).is_err());
        assert!(opt.best().is_none());
        assert_eq!(opt.n_observations(), 0);
    }

    #[test]
    fn candidates_stay_in_unit_cube() {
        let mut opt = ObOptimizer::new(ObserverConfig::for_dim(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..25 {
            let x = opt.next_candidate(&mut rng);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "iter {i}: {x:?}");
            let y = objective(&x);
            opt.update(x, y).unwrap();
        }
    }
}
