//! Acquisition functions (minimization convention: the objective is the
//! predicted exit rate, lower is better).

use lingxi_stats::{norm_cdf, norm_pdf};
use serde::{Deserialize, Serialize};

/// Acquisition functions for minimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Acquisition {
    /// Expected improvement below the incumbent best.
    ExpectedImprovement {
        /// Exploration bonus ξ added to the improvement threshold.
        xi: f64,
    },
    /// Probability of improvement below the incumbent best.
    ProbabilityOfImprovement {
        /// Exploration bonus ξ.
        xi: f64,
    },
    /// Lower confidence bound `mean − κ·σ` (scored negated so that larger
    /// is better, consistent with the other variants).
    LowerConfidenceBound {
        /// Exploration weight κ.
        kappa: f64,
    },
}

impl Acquisition {
    /// Default: EI with a small exploration bonus.
    pub fn default_ei() -> Self {
        Acquisition::ExpectedImprovement { xi: 0.01 }
    }

    /// Score a candidate with posterior `(mean, var)` against the incumbent
    /// `best` (current minimum). Larger scores are more attractive.
    pub fn score(&self, mean: f64, var: f64, best: f64) -> f64 {
        let sigma = var.max(1e-18).sqrt();
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                let improvement = best - mean - xi;
                let z = improvement / sigma;
                improvement * norm_cdf(z) + sigma * norm_pdf(z)
            }
            Acquisition::ProbabilityOfImprovement { xi } => norm_cdf((best - mean - xi) / sigma),
            Acquisition::LowerConfidenceBound { kappa } => -(mean - kappa * sigma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_prefers_lower_mean_same_variance() {
        let a = Acquisition::default_ei();
        let best = 0.5;
        assert!(a.score(0.3, 0.01, best) > a.score(0.45, 0.01, best));
    }

    #[test]
    fn ei_prefers_higher_variance_same_mean() {
        let a = Acquisition::default_ei();
        let best = 0.5;
        assert!(a.score(0.5, 0.04, best) > a.score(0.5, 0.0001, best));
    }

    #[test]
    fn ei_nonnegative() {
        let a = Acquisition::default_ei();
        for mean in [0.0, 0.5, 1.0, 2.0] {
            for var in [1e-6, 0.01, 0.25] {
                assert!(a.score(mean, var, 0.5) >= -1e-12);
            }
        }
    }

    #[test]
    fn pi_bounded_and_monotone() {
        let a = Acquisition::ProbabilityOfImprovement { xi: 0.0 };
        let s_better = a.score(0.2, 0.01, 0.5);
        let s_worse = a.score(0.8, 0.01, 0.5);
        assert!(s_better > 0.99);
        assert!(s_worse < 0.01);
        assert!((0.0..=1.0).contains(&s_better));
    }

    #[test]
    fn lcb_trades_exploration() {
        let explore = Acquisition::LowerConfidenceBound { kappa: 3.0 };
        let exploit = Acquisition::LowerConfidenceBound { kappa: 0.1 };
        // High-variance candidate vs low-mean candidate.
        let hv = (0.5, 0.09);
        let lm = (0.4, 0.0001);
        let pick = |a: &Acquisition| {
            if a.score(hv.0, hv.1, 0.5) > a.score(lm.0, lm.1, 0.5) {
                "hv"
            } else {
                "lm"
            }
        };
        assert_eq!(pick(&explore), "hv");
        assert_eq!(pick(&exploit), "lm");
    }
}
