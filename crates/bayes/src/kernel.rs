//! Covariance kernels for the GP surrogate.

use serde::{Deserialize, Serialize};

/// Stationary kernels over unit-cube points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Squared-exponential `σ² exp(−r²/(2ℓ²))`.
    Rbf {
        /// Output variance σ².
        variance: f64,
        /// Length scale ℓ.
        length_scale: f64,
    },
    /// Matérn 5/2 — the standard BO kernel (less smooth than RBF).
    Matern52 {
        /// Output variance σ².
        variance: f64,
        /// Length scale ℓ.
        length_scale: f64,
    },
}

impl Kernel {
    /// A sensible default for unit-cube BO.
    pub fn default_bo() -> Self {
        Kernel::Matern52 {
            variance: 1.0,
            length_scale: 0.35,
        }
    }

    /// Covariance between two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        match *self {
            Kernel::Rbf {
                variance,
                length_scale,
            } => variance * (-r2 / (2.0 * length_scale * length_scale)).exp(),
            Kernel::Matern52 {
                variance,
                length_scale,
            } => {
                let r = r2.sqrt() / length_scale;
                let s5 = 5.0f64.sqrt();
                variance * (1.0 + s5 * r + 5.0 * r * r / 3.0) * (-s5 * r).exp()
            }
        }
    }

    /// Variance at zero distance.
    pub fn variance(&self) -> f64 {
        match *self {
            Kernel::Rbf { variance, .. } | Kernel::Matern52 { variance, .. } => variance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_covariance_is_variance() {
        let x = [0.3, 0.7];
        for k in [
            Kernel::Rbf {
                variance: 2.0,
                length_scale: 0.5,
            },
            Kernel::Matern52 {
                variance: 2.0,
                length_scale: 0.5,
            },
        ] {
            assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
            assert_eq!(k.variance(), 2.0);
        }
    }

    #[test]
    fn covariance_decays_with_distance() {
        let k = Kernel::default_bo();
        let a = [0.0, 0.0];
        let near = [0.1, 0.0];
        let far = [0.9, 0.9];
        assert!(k.eval(&a, &near) > k.eval(&a, &far));
        assert!(k.eval(&a, &far) > 0.0);
    }

    #[test]
    fn symmetric() {
        let k = Kernel::Rbf {
            variance: 1.0,
            length_scale: 0.3,
        };
        let a = [0.1, 0.9, 0.4];
        let b = [0.7, 0.2, 0.5];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn matern_less_smooth_than_rbf_mid_range() {
        // At moderate distance the Matérn kernel retains more covariance
        // tail than an RBF of the same scale.
        let rbf = Kernel::Rbf {
            variance: 1.0,
            length_scale: 0.3,
        };
        let mat = Kernel::Matern52 {
            variance: 1.0,
            length_scale: 0.3,
        };
        let a = [0.0];
        let b = [0.9];
        assert!(mat.eval(&a, &b) > rbf.eval(&a, &b));
    }
}
