//! Minimal dense linear algebra: Cholesky factorization and triangular
//! solves — all a Gaussian process needs.

use crate::{BayesError, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Factor a symmetric matrix given row-major (only the lower triangle
    /// is read). Fails if a pivot is non-positive.
    pub fn factor(a: &[f64], n: usize) -> Result<Self> {
        if a.len() != n * n || n == 0 {
            return Err(BayesError::InvalidConfig(format!("matrix must be {n}x{n}")));
        }
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(BayesError::NotPositiveDefinite);
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Self { n, l })
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(BayesError::InvalidConfig("rhs length mismatch".into()));
        }
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[i * self.n + k] * yk;
            }
            y[i] = sum / self.l[i * self.n + i];
        }
        Ok(y)
    }

    /// Solve `Lᵀ x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.n {
            return Err(BayesError::InvalidConfig("rhs length mismatch".into()));
        }
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[k * self.n + i] * xk;
            }
            x[i] = sum / self.l[i * self.n + i];
        }
        Ok(x)
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_upper(&self.solve_lower(b)?)
    }

    /// Log-determinant of `A` (`2 Σ ln L_ii`).
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// One-shot solve `A x = b` with jitter escalation: retries with growing
/// diagonal jitter until the factorization succeeds (standard GP practice).
pub fn cholesky_solve(a: &[f64], n: usize, b: &[f64]) -> Result<Vec<f64>> {
    let mut jitter = 0.0;
    for attempt in 0..6 {
        let mut aj = a.to_vec();
        if jitter > 0.0 {
            for i in 0..n {
                aj[i * n + i] += jitter;
            }
        }
        match Cholesky::factor(&aj, n) {
            Ok(ch) => return ch.solve(b),
            Err(BayesError::NotPositiveDefinite) => {
                jitter = if attempt == 0 { 1e-10 } else { jitter * 100.0 };
            }
            Err(e) => return Err(e),
        }
    }
    Err(BayesError::NotPositiveDefinite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_matrix() {
        // A = [[4,2],[2,3]] → L = [[2,0],[1,sqrt(2)]].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let ch = Cholesky::factor(&a, 2).unwrap();
        assert!((ch.l[0] - 2.0).abs() < 1e-12);
        assert!((ch.l[2] - 1.0).abs() < 1e-12);
        assert!((ch.l[3] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_solution() {
        // A x = b with known x.
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let x_true = [1.0, -2.0];
        let b = [4.0 * 1.0 + 2.0 * -2.0, 2.0 * 1.0 + 3.0 * -2.0];
        let ch = Cholesky::factor(&a, 2).unwrap();
        let x = ch.solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn non_pd_detected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert_eq!(
            Cholesky::factor(&a, 2).unwrap_err(),
            BayesError::NotPositiveDefinite
        );
    }

    #[test]
    fn jittered_solve_handles_near_singular() {
        // Nearly rank-1 matrix.
        let a = vec![1.0, 1.0, 1.0, 1.0 + 1e-14];
        let b = [1.0, 1.0];
        let x = cholesky_solve(&a, 2, &b).unwrap();
        // Residual should be small.
        let r0 = a[0] * x[0] + a[1] * x[1] - b[0];
        assert!(r0.abs() < 1e-6, "residual {r0}");
    }

    #[test]
    fn log_det_matches() {
        let a = vec![4.0, 2.0, 2.0, 3.0]; // det = 8
        let ch = Cholesky::factor(&a, 2).unwrap();
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn dimension_validation() {
        assert!(Cholesky::factor(&[1.0], 2).is_err());
        assert!(Cholesky::factor(&[], 0).is_err());
        let ch = Cholesky::factor(&[4.0], 1).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn larger_system_random_spd() {
        // Build SPD as B Bᵀ + I.
        let n = 6;
        let mut b_mat = vec![0.0; n * n];
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in b_mat.iter_mut() {
            *v = next();
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[i * n + k] * b_mat[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * x_true[j];
            }
        }
        let ch = Cholesky::factor(&a, n).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
