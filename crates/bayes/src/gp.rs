//! Gaussian-process regression — the OBO surrogate model.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::linalg::Cholesky;
use crate::{BayesError, Result};

/// GP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Covariance kernel.
    pub kernel: Kernel,
    /// Observation noise variance (also numerical jitter).
    pub noise: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::default_bo(),
            noise: 1e-4,
        }
    }
}

/// A fitted GP posterior over observations `(X, y)`.
///
/// Internally standardizes `y` (zero mean, unit variance) so kernel
/// hyper-parameters stay meaningful whatever the objective's scale.
#[derive(Debug, Clone)]
pub struct GpModel {
    config: GpConfig,
    x: Vec<Vec<f64>>,
    /// Standardisation constants.
    y_mean: f64,
    y_std: f64,
    /// `K⁻¹ (y − mean)` in standardized space.
    alpha: Vec<f64>,
    chol: Cholesky,
}

impl GpModel {
    /// Fit a GP to observations. Requires at least one point; all points
    /// must share a dimension.
    pub fn fit(config: GpConfig, x: &[Vec<f64>], y: &[f64]) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(BayesError::InvalidConfig(
                "need equal, non-zero numbers of points and targets".into(),
            ));
        }
        let dim = x[0].len();
        if dim == 0 || x.iter().any(|p| p.len() != dim) {
            return Err(BayesError::InvalidConfig("inconsistent dimensions".into()));
        }
        if !(config.noise > 0.0) {
            return Err(BayesError::InvalidConfig("noise must be positive".into()));
        }
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-9);
        let y_st: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = config.kernel.eval(&x[i], &x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += config.noise;
        }
        // Jitter escalation on PD failure.
        let mut jitter = 0.0;
        let chol = loop {
            let mut kj = k.clone();
            if jitter > 0.0 {
                for i in 0..n {
                    kj[i * n + i] += jitter;
                }
            }
            match Cholesky::factor(&kj, n) {
                Ok(c) => break c,
                Err(BayesError::NotPositiveDefinite) if jitter < 1e-2 => {
                    jitter = if jitter == 0.0 { 1e-8 } else { jitter * 100.0 };
                }
                Err(e) => return Err(e),
            }
        };
        let alpha = chol.solve(&y_st)?;
        Ok(Self {
            config,
            x: x.to_vec(),
            y_mean,
            y_std,
            alpha,
            chol,
        })
    }

    /// Posterior mean and variance at `q` (in the original `y` scale).
    pub fn predict(&self, q: &[f64]) -> Result<(f64, f64)> {
        if q.len() != self.x[0].len() {
            return Err(BayesError::InvalidConfig("query dimension mismatch".into()));
        }
        let kq: Vec<f64> = self
            .x
            .iter()
            .map(|p| self.config.kernel.eval(p, q))
            .collect();
        let mean_st: f64 = kq.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // var = k(q,q) − kqᵀ K⁻¹ kq via v = L⁻¹ kq.
        let v = self.chol.solve_lower(&kq)?;
        let var_st =
            (self.config.kernel.variance() - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        Ok((
            mean_st * self.y_std + self.y_mean,
            var_st * self.y_std * self.y_std,
        ))
    }

    /// Number of observations.
    pub fn n_observations(&self) -> usize {
        self.x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_sine(n: usize) -> (GpModel, Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (2.0 * std::f64::consts::PI * p[0]).sin())
            .collect();
        let gp = GpModel::fit(GpConfig::default(), &x, &y).unwrap();
        (gp, x, y)
    }

    #[test]
    fn interpolates_training_points() {
        let (gp, x, y) = fit_sine(9);
        for (p, target) in x.iter().zip(&y) {
            let (mean, var) = gp.predict(p).unwrap();
            assert!((mean - target).abs() < 0.05, "mean {mean} vs {target}");
            assert!(var < 0.05, "var {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.2], vec![0.3]];
        let y = vec![1.0, 1.2];
        let gp = GpModel::fit(GpConfig::default(), &x, &y).unwrap();
        let (_, var_near) = gp.predict(&[0.25]).unwrap();
        let (_, var_far) = gp.predict(&[0.95]).unwrap();
        assert!(var_far > var_near * 3.0, "near {var_near} far {var_far}");
    }

    #[test]
    fn predictions_reasonable_between_points() {
        let (gp, _, _) = fit_sine(15);
        let (mean, _) = gp.predict(&[0.25]).unwrap();
        assert!((mean - 1.0).abs() < 0.1, "sin peak ~1, got {mean}");
    }

    #[test]
    fn constant_targets_handled() {
        // Zero variance targets: standardization must not blow up.
        let x = vec![vec![0.1], vec![0.5], vec![0.9]];
        let y = vec![3.0, 3.0, 3.0];
        let gp = GpModel::fit(GpConfig::default(), &x, &y).unwrap();
        let (mean, var) = gp.predict(&[0.3]).unwrap();
        assert!((mean - 3.0).abs() < 1e-6);
        assert!(var.is_finite());
    }

    #[test]
    fn validation_errors() {
        assert!(GpModel::fit(GpConfig::default(), &[], &[]).is_err());
        assert!(GpModel::fit(GpConfig::default(), &[vec![0.1]], &[1.0, 2.0]).is_err());
        assert!(GpModel::fit(
            GpConfig::default(),
            &[vec![0.1], vec![0.1, 0.2]],
            &[1.0, 2.0]
        )
        .is_err());
        let bad = GpConfig {
            noise: 0.0,
            ..GpConfig::default()
        };
        assert!(GpModel::fit(bad, &[vec![0.1]], &[1.0]).is_err());
        let gp = GpModel::fit(GpConfig::default(), &[vec![0.1]], &[1.0]).unwrap();
        assert!(gp.predict(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn duplicate_points_fit_with_jitter() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GpModel::fit(GpConfig::default(), &x, &y).unwrap();
        let (mean, _) = gp.predict(&[0.5]).unwrap();
        assert!((mean - 1.0).abs() < 0.1);
    }
}
