//! Property-based invariants for the Bayesian-optimization crate.

use lingxi_bayes::*;
use proptest::prelude::*;

proptest! {
    // GP fits per case: moderate count keeps CI time bounded while
    // staying deterministic. Override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cholesky solve residuals stay small on generated SPD systems.
    #[test]
    fn cholesky_solves_spd_systems(
        n in 1usize..8,
        seed in 0u64..2000,
    ) {
        // Build SPD A = B Bᵀ + I from a deterministic pseudo-random B.
        let mut state = seed.wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = cholesky_solve(&a, n, &rhs).unwrap();
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j] * x[j];
            }
            prop_assert!((acc - rhs[i]).abs() < 1e-6, "row {i} residual {}", acc - rhs[i]);
        }
    }

    /// Kernels are symmetric with covariance bounded by the variance.
    #[test]
    fn kernels_symmetric_and_bounded(
        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
        bx in 0.0f64..1.0, by in 0.0f64..1.0,
        variance in 0.1f64..5.0,
        ell in 0.05f64..2.0,
    ) {
        for k in [
            Kernel::Rbf { variance, length_scale: ell },
            Kernel::Matern52 { variance, length_scale: ell },
        ] {
            let a = [ax, ay];
            let b = [bx, by];
            let kab = k.eval(&a, &b);
            prop_assert!((kab - k.eval(&b, &a)).abs() < 1e-12);
            prop_assert!(kab <= variance + 1e-9);
            prop_assert!(kab >= 0.0);
        }
    }

    /// GP interpolation error at training points is bounded by the noise.
    #[test]
    fn gp_interpolates_within_noise(
        ys in proptest::collection::vec(-5.0f64..5.0, 2..10),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64 / ys.len() as f64])
            .collect();
        let gp = GpModel::fit(GpConfig::default(), &xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x).unwrap();
            prop_assert!(var >= 0.0);
            // Within a few posterior standard deviations + slack.
            let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ys.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(
                (mean - y).abs() <= 0.3 * spread.max(1e-3) + 3.0 * var.sqrt() + 1e-6,
                "mean {mean} vs y {y}"
            );
        }
    }

    /// EI is non-negative and LCB trades off mean vs sigma monotonically.
    #[test]
    fn acquisition_properties(
        mean in -2.0f64..2.0,
        var in 1e-6f64..1.0,
        best in -2.0f64..2.0,
    ) {
        let ei = Acquisition::default_ei();
        prop_assert!(ei.score(mean, var, best) >= -1e-12);
        let lcb1 = Acquisition::LowerConfidenceBound { kappa: 1.0 };
        let lcb2 = Acquisition::LowerConfidenceBound { kappa: 2.0 };
        // More exploration never lowers the score of an uncertain point.
        prop_assert!(lcb2.score(mean, var, best) >= lcb1.score(mean, var, best) - 1e-12);
    }
}
