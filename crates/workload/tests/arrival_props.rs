//! Property-based invariants for arrival processes.
//!
//! The fleet's determinism contract needs schedules that are pure in
//! `(parameters, horizon, seed)`; the statistical contracts (Poisson mean
//! count, Replay fidelity) make the processes usable as models, not just
//! as RNG wrappers.

use lingxi_workload::{
    ArrivalEvent, ArrivalKind, ArrivalProcess, ClassRegistry, Diurnal, FlashRamp, Poisson, Replay,
};
use proptest::prelude::*;

fn registry() -> ClassRegistry {
    ClassRegistry::default_heterogeneous()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every process kind is seed-stable (same inputs → identical events)
    /// and emits time-sorted, in-horizon events with valid class indices.
    #[test]
    fn processes_are_seed_stable_and_well_formed(
        seed in 0u64..1_000_000,
        horizon in 10.0f64..500.0,
        rate in 0.0f64..2.0,
        users in 0usize..200,
        window in 0.5f64..60.0,
    ) {
        let reg = registry();
        let kinds = [
            ArrivalKind::Poisson(Poisson { rate_per_sec: rate }),
            ArrivalKind::Diurnal(Diurnal {
                base_rate: rate,
                amplitude: 0.8,
                peak_s: horizon / 3.0,
                period_s: horizon,
            }),
            ArrivalKind::FlashRamp(FlashRamp::uniform(users, window)),
        ];
        for kind in &kinds {
            kind.validate().unwrap();
            let a = kind.events(horizon, seed, &reg);
            let b = kind.events(horizon, seed, &reg);
            prop_assert_eq!(&a, &b, "not seed-stable: {:?}", kind);
            prop_assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "unsorted");
            prop_assert!(a.iter().all(|e| e.at >= 0.0 && e.at < horizon), "out of horizon");
            prop_assert!(a.iter().all(|e| (e.class as usize) < reg.users.len()), "bad class");
        }
    }

    /// Poisson counts concentrate around `rate × horizon`: the mean over
    /// independent seeds lands within 5σ of the expectation.
    #[test]
    fn poisson_mean_count_within_tolerance(
        rate in 0.2f64..3.0,
        horizon in 50.0f64..300.0,
        seed0 in 0u64..1_000_000,
    ) {
        let p = Poisson { rate_per_sec: rate };
        let runs = 24u64;
        let total: usize = (0..runs).map(|k| p.events(horizon, seed0 ^ (k << 20), &registry()).len()).sum();
        let mean = total as f64 / runs as f64;
        let expect = rate * horizon;
        // SE of the mean of `runs` Poisson counts is sqrt(expect / runs).
        let tol = 5.0 * (expect / runs as f64).sqrt() + 1.0;
        prop_assert!((mean - expect).abs() < tol, "mean {} vs {} (tol {})", mean, expect, tol);
    }

    /// Replay round-trips any sorted in-horizon schedule verbatim, and
    /// truncating the horizon only drops the tail.
    #[test]
    fn replay_round_trips(
        times in proptest::collection::vec(0.0f64..100.0, 0..50),
        classes in proptest::collection::vec(0u16..3, 50..51),
        cut in 0.0f64..100.0,
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        let schedule: Vec<ArrivalEvent> = sorted
            .iter()
            .zip(&classes)
            .map(|(&at, &class)| ArrivalEvent { at, class })
            .collect();
        let r = Replay { schedule: schedule.clone() };
        r.validate().unwrap();
        prop_assert_eq!(r.events(100.0, 0, &registry()), schedule.clone());
        let truncated = r.events(cut, 1, &registry());
        let expect: Vec<ArrivalEvent> = schedule.iter().filter(|e| e.at < cut).cloned().collect();
        prop_assert_eq!(truncated, expect);
    }

    /// FlashRamp emits exactly `users` arrivals inside the window whenever
    /// the horizon covers it — the old flashcrowd contract.
    #[test]
    fn flash_ramp_count_exact(
        users in 1usize..300,
        window in 1.0f64..40.0,
        shape in 0.25f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let f = FlashRamp { users, start_s: 0.0, window_s: window, shape };
        let events = f.events(window + 1.0, seed, &registry());
        prop_assert_eq!(events.len(), users);
        prop_assert!(events.iter().all(|e| e.at < window));
    }
}
