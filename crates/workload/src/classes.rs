//! The heterogeneity registry: user classes (device/access caps, patience,
//! per-class bandwidth mixture, engagement) and link classes (capacity),
//! sampled as categorical mixtures.

use lingxi_net::ProductionMixture;
use lingxi_user::profile::sample_profile;
use lingxi_user::UserRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{mix64, Result, WorkloadError};

/// One user class: the per-class knobs production heterogeneity turns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserClass {
    /// Class label (reports key per-class metrics on it).
    pub name: String,
    /// Mixture weight (normalised against the registry total).
    pub weight: f64,
    /// Bandwidth-population mixture this class draws its network profile
    /// from (the per-class bandwidth model).
    pub mixture: ProductionMixture,
    /// Device decode/display cap (kbps): the sampled mean bandwidth is
    /// clamped below it. `f64::INFINITY` disables the cap.
    pub device_cap_kbps: f64,
    /// Per-flow access-link cap (kbps) applied on shared bottlenecks.
    /// `f64::INFINITY` disables the cap.
    pub access_cap_kbps: f64,
    /// Patience multiplier on the stall-tolerance τ of sampled exit
    /// profiles: `< 1` exits earlier, `> 1` tolerates more stall.
    pub patience: f64,
    /// Mean sessions per simulated day for this class.
    pub mean_sessions_per_day: f64,
}

impl UserClass {
    /// Validate the class parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.weight >= 0.0) || !self.weight.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "class {:?}: weight must be finite and non-negative",
                self.name
            )));
        }
        if !(self.device_cap_kbps > 0.0) || !(self.access_cap_kbps > 0.0) {
            return Err(WorkloadError::InvalidConfig(format!(
                "class {:?}: caps must be positive (use f64::INFINITY to disable)",
                self.name
            )));
        }
        if !(self.patience > 0.0) || !self.patience.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "class {:?}: patience must be positive and finite",
                self.name
            )));
        }
        if !(self.mean_sessions_per_day > 0.0) || !self.mean_sessions_per_day.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "class {:?}: mean sessions must be positive and finite",
                self.name
            )));
        }
        self.mixture
            .validate()
            .map_err(|e| WorkloadError::InvalidConfig(format!("class {:?}: {e}", self.name)))
    }

    /// Materialise one user of this class. Deterministic in `(seed, id)`
    /// alone — never in the shard layout — so dynamic populations are
    /// identical across shard counts.
    pub fn sample_user(&self, seed: u64, id: u64) -> UserRecord {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ mix64(id ^ 0xC1A5_5E5A_11D0_77E1)));
        let mut net = self.mixture.sample_profile(&mut rng);
        net.mean_kbps = net.mean_kbps.min(self.device_cap_kbps);
        let mut stall = sample_profile(&mut rng);
        stall.tolerance = (stall.tolerance * self.patience).max(0.25);
        // Log-normal engagement jitter around the class mean, matching the
        // static population generator's spread.
        let sigma: f64 = 0.5;
        let mu = self.mean_sessions_per_day.ln() - sigma * sigma / 2.0;
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sessions_per_day = (mu + sigma * z).exp().max(1.0);
        UserRecord {
            id,
            net,
            stall,
            sessions_per_day,
        }
    }
}

/// One link class: shared-bottleneck links hash onto these, giving the
/// topology heterogeneous capacities (congested cells next to fiber).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkClass {
    /// Class label.
    pub name: String,
    /// Mixture weight (normalised against the registry total).
    pub weight: f64,
    /// Shared capacity of links in this class (kbps).
    pub capacity_kbps: f64,
}

impl LinkClass {
    /// Validate the class parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.weight >= 0.0) || !self.weight.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "link class {:?}: weight must be finite and non-negative",
                self.name
            )));
        }
        if !(self.capacity_kbps > 0.0) || !self.capacity_kbps.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "link class {:?}: capacity must be positive and finite",
                self.name
            )));
        }
        Ok(())
    }
}

/// The heterogeneity registry: categorical mixtures of user and link
/// classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRegistry {
    /// User classes (at least one; weights need not sum to 1).
    pub users: Vec<UserClass>,
    /// Link classes (at least one; weights need not sum to 1).
    pub links: Vec<LinkClass>,
}

impl ClassRegistry {
    /// Validate the registry.
    pub fn validate(&self) -> Result<()> {
        if self.users.is_empty() || self.links.is_empty() {
            return Err(WorkloadError::InvalidConfig(
                "registry needs at least one user class and one link class".into(),
            ));
        }
        for c in &self.users {
            c.validate()?;
        }
        for l in &self.links {
            l.validate()?;
        }
        if !(self.users.iter().map(|c| c.weight).sum::<f64>() > 0.0)
            || !(self.links.iter().map(|l| l.weight).sum::<f64>() > 0.0)
        {
            return Err(WorkloadError::InvalidConfig(
                "class weights must sum to a positive total".into(),
            ));
        }
        if self.users.len() > u16::MAX as usize {
            return Err(WorkloadError::InvalidConfig(
                "at most 65535 user classes".into(),
            ));
        }
        Ok(())
    }

    /// Sample a user-class index from the categorical weight mixture.
    pub fn sample_user_class<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let total: f64 = self.users.iter().map(|c| c.weight).sum();
        let mut u = rng.gen::<f64>() * total;
        for (i, c) in self.users.iter().enumerate() {
            u -= c.weight;
            if u < 0.0 {
                return i as u16;
            }
        }
        (self.users.len() - 1) as u16
    }

    /// The link class a given link belongs to: a weighted hash of
    /// `(seed, link_id)`, stable under any shard layout.
    pub fn link_class_of(&self, seed: u64, link_id: u64) -> &LinkClass {
        let total: f64 = self.links.iter().map(|l| l.weight).sum();
        let h = mix64(seed ^ mix64(link_id ^ 0x71CC_BA5E_D00D_FEED));
        let mut u = (h >> 11) as f64 / (1u64 << 53) as f64 * total;
        for l in &self.links {
            u -= l.weight;
            if u < 0.0 {
                return l;
            }
        }
        self.links.last().expect("validated non-empty")
    }

    /// The link's capacity weight relative to a reference capacity:
    /// `link_class_of(seed, link_id).capacity_kbps / reference_kbps`.
    /// This is how a load-aware dispatcher learns the registry's
    /// heterogeneity — a fiber link with 4.8× the reference capacity
    /// should absorb 4.8× the placements of a weight-1 cell link.
    /// Stable under any shard layout, like [`Self::link_class_of`].
    pub fn capacity_weight_of(&self, seed: u64, link_id: u64, reference_kbps: f64) -> f64 {
        self.link_class_of(seed, link_id).capacity_kbps / reference_kbps
    }

    /// A single-class registry: every user draws from `mixture` with no
    /// caps and neutral patience, every link has `capacity_kbps`. The
    /// degenerate registry that reproduces the pre-workload fleet
    /// behaviour (used by the flash-crowd experiment).
    pub fn single(
        mixture: ProductionMixture,
        mean_sessions_per_day: f64,
        capacity_kbps: f64,
    ) -> Self {
        Self {
            users: vec![UserClass {
                name: "all".into(),
                weight: 1.0,
                mixture,
                device_cap_kbps: f64::INFINITY,
                access_cap_kbps: f64::INFINITY,
                patience: 1.0,
                mean_sessions_per_day,
            }],
            links: vec![LinkClass {
                name: "link".into(),
                weight: 1.0,
                capacity_kbps,
            }],
        }
    }

    /// A production-flavoured heterogeneous registry: mobile users on
    /// bursty cellular mixtures with tight device/access caps and low
    /// patience, desktops on WiFi-heavy mixtures, living-room TVs on
    /// broadband with high patience; cell links next to fiber links.
    pub fn default_heterogeneous() -> Self {
        Self {
            users: vec![
                UserClass {
                    name: "mobile".into(),
                    weight: 0.55,
                    mixture: ProductionMixture {
                        p_constrained: 0.25,
                        p_cellular: 0.45,
                        p_wifi: 0.25,
                    },
                    device_cap_kbps: 8_000.0,
                    access_cap_kbps: 12_000.0,
                    patience: 0.7,
                    mean_sessions_per_day: 3.0,
                },
                UserClass {
                    name: "desktop".into(),
                    weight: 0.30,
                    mixture: ProductionMixture::default(),
                    device_cap_kbps: 25_000.0,
                    access_cap_kbps: 40_000.0,
                    patience: 1.0,
                    mean_sessions_per_day: 2.0,
                },
                UserClass {
                    name: "tv".into(),
                    weight: 0.15,
                    mixture: ProductionMixture {
                        p_constrained: 0.02,
                        p_cellular: 0.08,
                        p_wifi: 0.35,
                    },
                    device_cap_kbps: f64::INFINITY,
                    access_cap_kbps: f64::INFINITY,
                    patience: 1.5,
                    mean_sessions_per_day: 1.5,
                },
            ],
            links: vec![
                LinkClass {
                    name: "cell".into(),
                    weight: 0.6,
                    capacity_kbps: 25_000.0,
                },
                LinkClass {
                    name: "fiber".into(),
                    weight: 0.4,
                    capacity_kbps: 120_000.0,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_registry_validates_and_samples_by_weight() {
        let reg = ClassRegistry::default_heterogeneous();
        reg.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut counts = vec![0usize; reg.users.len()];
        for _ in 0..n {
            counts[reg.sample_user_class(&mut rng) as usize] += 1;
        }
        let total: f64 = reg.users.iter().map(|c| c.weight).sum();
        for (i, c) in reg.users.iter().enumerate() {
            let frac = counts[i] as f64 / n as f64;
            assert!(
                (frac - c.weight / total).abs() < 0.02,
                "{}: {frac} vs {}",
                c.name,
                c.weight / total
            );
        }
    }

    #[test]
    fn sampled_users_honor_class_knobs() {
        let reg = ClassRegistry::default_heterogeneous();
        let mobile = &reg.users[0];
        for id in 0..500u64 {
            let u = mobile.sample_user(42, id);
            assert_eq!(u.id, id);
            assert!(u.net.mean_kbps <= mobile.device_cap_kbps + 1e-9);
            assert!(u.sessions_per_day >= 1.0);
            // Deterministic in (seed, id).
            assert_eq!(u, mobile.sample_user(42, id));
        }
        // Patience shifts the tolerance distribution.
        let patient = UserClass {
            patience: 4.0,
            ..mobile.clone()
        };
        let mean_tol = |c: &UserClass| {
            (0..300u64)
                .map(|i| c.sample_user(7, i).stall.tolerance)
                .sum::<f64>()
                / 300.0
        };
        assert!(mean_tol(&patient) > 2.0 * mean_tol(mobile));
    }

    #[test]
    fn link_classes_hash_stably_by_weight() {
        let reg = ClassRegistry::default_heterogeneous();
        let n = 10_000u64;
        let mut cell = 0usize;
        for link in 0..n {
            let class = reg.link_class_of(9, link);
            assert_eq!(class.name, reg.link_class_of(9, link).name, "stable");
            if class.name == "cell" {
                cell += 1;
            }
        }
        let frac = cell as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.03, "cell fraction {frac}");
    }

    #[test]
    fn capacity_weights_mirror_link_classes() {
        let reg = ClassRegistry::default_heterogeneous();
        for link in 0..200u64 {
            let w = reg.capacity_weight_of(9, link, 25_000.0);
            let expected = reg.link_class_of(9, link).capacity_kbps / 25_000.0;
            assert_eq!(w, expected);
            // The default registry: cell links at the reference weight,
            // fiber links at 120/25 = 4.8x.
            assert!(w == 1.0 || w == 4.8, "unexpected weight {w}");
        }
    }

    #[test]
    fn invalid_registries_rejected() {
        let mut reg = ClassRegistry::default_heterogeneous();
        reg.users.clear();
        assert!(reg.validate().is_err());

        let mut zero_w = ClassRegistry::default_heterogeneous();
        for c in &mut zero_w.users {
            c.weight = 0.0;
        }
        assert!(zero_w.validate().is_err());

        let mut bad_patience = ClassRegistry::default_heterogeneous();
        bad_patience.users[0].patience = 0.0;
        assert!(bad_patience.validate().is_err());

        let mut bad_link = ClassRegistry::default_heterogeneous();
        bad_link.links[0].capacity_kbps = -5.0;
        assert!(bad_link.validate().is_err());

        assert!(
            ClassRegistry::single(ProductionMixture::default(), 2.0, 30_000.0)
                .validate()
                .is_ok()
        );
    }
}
