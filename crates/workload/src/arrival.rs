//! Arrival processes: deterministic, seed-stable schedules of user
//! arrivals over a simulation horizon.
//!
//! Every impl is a pure function of `(parameters, horizon, seed)` — no
//! global state, no dependence on thread schedule — so the fleet can
//! regenerate the identical schedule on any shard layout. Time-varying
//! processes ([`Diurnal`]) are sampled by *thinning*: candidate arrivals
//! are drawn from a homogeneous Poisson process at the peak rate and each
//! is kept with probability `rate(t) / max_rate`, which realises any
//! bounded rate function exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::classes::ClassRegistry;
use crate::{mix64, Result, WorkloadError};

/// One arrival: a user of class `class` (index into the registry's user
/// classes) shows up at simulation time `at` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Arrival time (seconds from epoch start).
    pub at: f64,
    /// Index into [`ClassRegistry::users`].
    pub class: u16,
}

/// A deterministic arrival schedule generator.
pub trait ArrivalProcess {
    /// The arrival events over `[0, horizon_s)`, sorted by time, each
    /// tagged with a user class sampled from `registry`. Pure in
    /// `(self, horizon_s, seed, registry)`.
    fn events(&self, horizon_s: f64, seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent>;

    /// Validate the process parameters.
    fn validate(&self) -> Result<()>;
}

/// Derive the process's own RNG stream from the caller's seed; the salt
/// keeps it independent of every other stream derived from that seed.
fn arrival_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ 0xA221_7A15_0C3E_D155))
}

/// Homogeneous Poisson arrivals at `rate_per_sec`; also the candidate
/// generator behind every thinned (time-varying) process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    /// Mean arrivals per second.
    pub rate_per_sec: f64,
}

/// Exponential inter-arrival sampling at `rate`, thinned by
/// `keep(t) ∈ [0, 1]`: the standard construction for a non-homogeneous
/// Poisson process with bounded rate `rate · keep(t)`.
fn thinned_times(
    rate: f64,
    horizon_s: f64,
    rng: &mut StdRng,
    mut keep: impl FnMut(f64) -> f64,
) -> Vec<f64> {
    let mut times = Vec::new();
    if !(rate > 0.0) {
        return times;
    }
    let mut t = 0.0f64;
    loop {
        // Exponential gap; `u` bounded away from 0 so ln() is finite.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        if t >= horizon_s {
            return times;
        }
        let p = keep(t);
        if rng.gen::<f64>() < p {
            times.push(t);
        }
    }
}

impl ArrivalProcess for Poisson {
    fn events(&self, horizon_s: f64, seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent> {
        let mut rng = arrival_rng(seed);
        let times = thinned_times(self.rate_per_sec, horizon_s, &mut rng, |_| 1.0);
        attach_classes(times, registry, &mut rng)
    }

    fn validate(&self) -> Result<()> {
        if !(self.rate_per_sec >= 0.0) || !self.rate_per_sec.is_finite() {
            return Err(WorkloadError::InvalidConfig(
                "Poisson rate must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Sinusoidal time-of-day arrival curve, realised by thinning:
/// `rate(t) = base_rate · (1 + amplitude · cos(2π (t − peak_s) / period_s))`.
///
/// `amplitude = 0` degenerates to [`Poisson`]; `amplitude = 1` silences
/// the trough entirely. The defaults put the peak at 21:00 of an 86 400 s
/// day — the evening prime time of a short-video service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diurnal {
    /// Mean arrivals per second averaged over a full period.
    pub base_rate: f64,
    /// Relative swing of the day curve, in `[0, 1]`.
    pub amplitude: f64,
    /// Time of the daily peak (seconds into the period).
    pub peak_s: f64,
    /// Period length (seconds); a simulated day.
    pub period_s: f64,
}

impl Default for Diurnal {
    fn default() -> Self {
        Self {
            base_rate: 0.1,
            amplitude: 0.7,
            peak_s: 21.0 * 3600.0,
            period_s: 86_400.0,
        }
    }
}

impl Diurnal {
    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t - self.peak_s) / self.period_s;
        self.base_rate * (1.0 + self.amplitude * phase.cos())
    }
}

impl ArrivalProcess for Diurnal {
    fn events(&self, horizon_s: f64, seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent> {
        let mut rng = arrival_rng(seed);
        let max_rate = self.base_rate * (1.0 + self.amplitude);
        let times = thinned_times(max_rate, horizon_s, &mut rng, |t| {
            if max_rate > 0.0 {
                self.rate_at(t) / max_rate
            } else {
                0.0
            }
        });
        attach_classes(times, registry, &mut rng)
    }

    fn validate(&self) -> Result<()> {
        if !(self.base_rate >= 0.0) || !self.base_rate.is_finite() {
            return Err(WorkloadError::InvalidConfig(
                "Diurnal base rate must be finite and non-negative".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.amplitude) {
            return Err(WorkloadError::InvalidConfig(
                "Diurnal amplitude must be in [0, 1]".into(),
            ));
        }
        if !(self.period_s > 0.0) || !self.period_s.is_finite() || !self.peak_s.is_finite() {
            return Err(WorkloadError::InvalidConfig(
                "Diurnal period must be positive and peak finite".into(),
            ));
        }
        Ok(())
    }
}

/// A flash crowd: exactly `users` arrivals inside
/// `[start_s, start_s + window_s)`, spread as `start + window · uᵍ` for
/// uniform `u` — `shape = 1` is the uniform ramp the `flashcrowd`
/// experiment used to hard-code, `shape > 1` front-loads the crowd,
/// `shape < 1` back-loads it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashRamp {
    /// Crowd size.
    pub users: usize,
    /// Ramp start (seconds).
    pub start_s: f64,
    /// Ramp width (seconds).
    pub window_s: f64,
    /// Ramp shape exponent (1 = uniform).
    pub shape: f64,
}

impl FlashRamp {
    /// A uniform ramp of `users` arrivals over the first `window_s`
    /// seconds — exactly the old hard-coded flash-crowd arrival model.
    pub fn uniform(users: usize, window_s: f64) -> Self {
        Self {
            users,
            start_s: 0.0,
            window_s,
            shape: 1.0,
        }
    }
}

impl ArrivalProcess for FlashRamp {
    fn events(&self, horizon_s: f64, seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent> {
        let mut rng = arrival_rng(seed);
        let mut times: Vec<f64> = (0..self.users)
            .map(|_| {
                let u: f64 = rng.gen();
                self.start_s + self.window_s * u.powf(self.shape)
            })
            .filter(|&t| t < horizon_s)
            .collect();
        times.sort_by(f64::total_cmp);
        attach_classes(times, registry, &mut rng)
    }

    fn validate(&self) -> Result<()> {
        if !(self.window_s >= 0.0) || !self.window_s.is_finite() || !(self.start_s >= 0.0) {
            return Err(WorkloadError::InvalidConfig(
                "FlashRamp window and start must be finite and non-negative".into(),
            ));
        }
        if !(self.shape > 0.0) || !self.shape.is_finite() {
            return Err(WorkloadError::InvalidConfig(
                "FlashRamp shape must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Replay an explicit, pre-classed arrival schedule (e.g. recorded
/// production timestamps). Events beyond the horizon are dropped; the
/// schedule is re-sorted defensively so downstream kernels can rely on
/// time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replay {
    /// The schedule to replay.
    pub schedule: Vec<ArrivalEvent>,
}

impl ArrivalProcess for Replay {
    fn events(&self, horizon_s: f64, _seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent> {
        let n_classes = registry.users.len().max(1) as u16;
        let mut events: Vec<ArrivalEvent> = self
            .schedule
            .iter()
            .filter(|e| e.at >= 0.0 && e.at < horizon_s)
            .map(|e| ArrivalEvent {
                at: e.at,
                class: e.class % n_classes,
            })
            .collect();
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.class.cmp(&b.class)));
        events
    }

    fn validate(&self) -> Result<()> {
        if self.schedule.iter().any(|e| !e.at.is_finite()) {
            return Err(WorkloadError::InvalidConfig(
                "Replay timestamps must be finite".into(),
            ));
        }
        Ok(())
    }
}

/// Tag sorted arrival times with user classes drawn from the registry's
/// categorical mixture. Classes are sampled *after* the times are final,
/// in time order, so the (time, class) pairing is deterministic.
fn attach_classes(
    times: Vec<f64>,
    registry: &ClassRegistry,
    rng: &mut StdRng,
) -> Vec<ArrivalEvent> {
    times
        .into_iter()
        .map(|at| ArrivalEvent {
            at,
            class: registry.sample_user_class(rng),
        })
        .collect()
}

/// Plain-data wrapper over the arrival processes so configs that embed a
/// workload stay `Clone + PartialEq` without trait objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Homogeneous Poisson arrivals.
    Poisson(Poisson),
    /// Sinusoidal time-of-day curve.
    Diurnal(Diurnal),
    /// A flash crowd over a short window.
    FlashRamp(FlashRamp),
    /// An explicit recorded schedule.
    Replay(Replay),
}

impl ArrivalProcess for ArrivalKind {
    fn events(&self, horizon_s: f64, seed: u64, registry: &ClassRegistry) -> Vec<ArrivalEvent> {
        match self {
            ArrivalKind::Poisson(p) => p.events(horizon_s, seed, registry),
            ArrivalKind::Diurnal(d) => d.events(horizon_s, seed, registry),
            ArrivalKind::FlashRamp(f) => f.events(horizon_s, seed, registry),
            ArrivalKind::Replay(r) => r.events(horizon_s, seed, registry),
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            ArrivalKind::Poisson(p) => p.validate(),
            ArrivalKind::Diurnal(d) => d.validate(),
            ArrivalKind::FlashRamp(f) => f.validate(),
            ArrivalKind::Replay(r) => r.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ClassRegistry {
        ClassRegistry::default_heterogeneous()
    }

    #[test]
    fn poisson_mean_count_tracks_rate() {
        let p = Poisson { rate_per_sec: 2.0 };
        p.validate().unwrap();
        let mut total = 0usize;
        let runs = 40;
        for seed in 0..runs {
            total += p.events(500.0, seed, &registry()).len();
        }
        let mean = total as f64 / runs as f64;
        // E[count] = 1000; √1000 ≈ 32, so ±10% over 40 runs is generous.
        assert!((mean - 1000.0).abs() < 100.0, "mean count {mean}");
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let d = Diurnal {
            base_rate: 1.0,
            amplitude: 0.9,
            peak_s: 0.0,
            period_s: 1000.0,
        };
        d.validate().unwrap();
        let mut peak = 0usize;
        let mut trough = 0usize;
        for seed in 0..30 {
            let events = d.events(1000.0, seed, &registry());
            // Peak quarter [0, 125) ∪ [875, 1000) vs trough [375, 625).
            peak += events
                .iter()
                .filter(|e| e.at < 125.0 || e.at >= 875.0)
                .count();
            trough += events
                .iter()
                .filter(|e| (375.0..625.0).contains(&e.at))
                .count();
        }
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn flash_ramp_respects_window_and_count() {
        let f = FlashRamp::uniform(200, 30.0);
        f.validate().unwrap();
        let events = f.events(1000.0, 9, &registry());
        assert_eq!(events.len(), 200);
        assert!(events.iter().all(|e| (0.0..30.0).contains(&e.at)));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // Front-loaded shape pushes the median arrival earlier.
        let median = |evs: &[ArrivalEvent]| evs[evs.len() / 2].at;
        let front = FlashRamp {
            shape: 3.0,
            ..FlashRamp::uniform(200, 30.0)
        };
        assert!(median(&front.events(1000.0, 9, &registry())) < median(&events));
    }

    #[test]
    fn replay_round_trips_sorted_in_range_schedules() {
        let schedule = vec![
            ArrivalEvent { at: 1.0, class: 0 },
            ArrivalEvent { at: 2.5, class: 2 },
            ArrivalEvent { at: 7.0, class: 1 },
        ];
        let r = Replay {
            schedule: schedule.clone(),
        };
        r.validate().unwrap();
        assert_eq!(r.events(10.0, 123, &registry()), schedule);
        // Horizon truncates; out-of-order input is sorted.
        assert_eq!(r.events(3.0, 0, &registry()).len(), 2);
        let shuffled = Replay {
            schedule: vec![schedule[2], schedule[0], schedule[1]],
        };
        assert_eq!(shuffled.events(10.0, 0, &registry()), schedule);
    }

    #[test]
    fn all_kinds_are_seed_stable() {
        let kinds = [
            ArrivalKind::Poisson(Poisson { rate_per_sec: 0.8 }),
            ArrivalKind::Diurnal(Diurnal::default()),
            ArrivalKind::FlashRamp(FlashRamp::uniform(50, 10.0)),
            ArrivalKind::Replay(Replay {
                schedule: vec![ArrivalEvent { at: 3.0, class: 0 }],
            }),
        ];
        for kind in &kinds {
            kind.validate().unwrap();
            let a = kind.events(200.0, 77, &registry());
            let b = kind.events(200.0, 77, &registry());
            assert_eq!(a, b, "{kind:?} not seed-stable");
            assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        }
        // Different seeds give different Poisson draws.
        let p = &kinds[0];
        assert_ne!(
            p.events(200.0, 1, &registry()),
            p.events(200.0, 2, &registry())
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Poisson {
            rate_per_sec: f64::NAN
        }
        .validate()
        .is_err());
        assert!(Poisson { rate_per_sec: -1.0 }.validate().is_err());
        assert!(Diurnal {
            amplitude: 1.5,
            ..Diurnal::default()
        }
        .validate()
        .is_err());
        assert!(Diurnal {
            period_s: 0.0,
            ..Diurnal::default()
        }
        .validate()
        .is_err());
        assert!(FlashRamp {
            shape: 0.0,
            ..FlashRamp::uniform(10, 5.0)
        }
        .validate()
        .is_err());
        assert!(Replay {
            schedule: vec![ArrivalEvent {
                at: f64::INFINITY,
                class: 0
            }]
        }
        .validate()
        .is_err());
    }
}
