//! Population-dynamics workload layer: who shows up, when, and on what.
//!
//! The fleet engine (`lingxi-fleet`) can co-simulate many users, but a
//! fixed cohort observed over one synthetic epoch is not how production
//! populations behave: users *arrive* (following time-of-day structure,
//! flash crowds, or recorded schedules), belong to heterogeneous device /
//! access classes, and *leave*, freeing capacity behind them. This crate
//! supplies the two missing ingredients:
//!
//! * [`ArrivalProcess`] — deterministic, seed-stable arrival schedules.
//!   Impls: [`Poisson`] (homogeneous, and the thinning substrate for any
//!   rate function), [`Diurnal`] (sinusoidal day curve via thinning),
//!   [`FlashRamp`] (a fixed crowd over a short window — the generalised
//!   flash-crowd ramp), and [`Replay`] (explicit timestamps). Each emits
//!   `(arrival_time, user-class)` events; [`ArrivalKind`] wraps them in a
//!   plain-data enum so engine configs stay `Clone + PartialEq`.
//! * [`ClassRegistry`] — a categorical mixture of [`UserClass`]es (device
//!   caps, access-link caps, patience multipliers, per-class bandwidth
//!   mixture, engagement) and [`LinkClass`]es (per-link capacity), sampled
//!   deterministically from `(seed, id)` alone so populations are
//!   identical for any shard layout.
//!
//! ```
//! use lingxi_workload::{ArrivalProcess, ClassRegistry, Poisson};
//!
//! let registry = ClassRegistry::default_heterogeneous();
//! let events = Poisson { rate_per_sec: 0.5 }.events(120.0, 7, &registry);
//! // Seed-stable: the same call yields the same schedule.
//! assert_eq!(events, Poisson { rate_per_sec: 0.5 }.events(120.0, 7, &registry));
//! assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
//! assert!(events.iter().all(|e| (e.class as usize) < registry.users.len()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod classes;

pub use arrival::{ArrivalEvent, ArrivalKind, ArrivalProcess, Diurnal, FlashRamp, Poisson, Replay};
pub use classes::{ClassRegistry, LinkClass, UserClass};

/// Errors from workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Invalid process or registry parameters.
    InvalidConfig(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidConfig(m) => write!(f, "invalid workload config: {m}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// SplitMix64 finalizer, the same mixing step the fleet uses for its
/// derived streams — kept local so workload sampling never depends on
/// fleet internals.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
