//! A/B experimentation engine: cohorts, daily metric aggregation, AA/AB
//! scheduling and difference-in-differences reporting.
//!
//! §5.3 of the paper runs a 10-day difference-in-differences test on 8% of
//! production traffic: days 1–5 are an AA phase (both groups run the
//! baseline, measuring cohort bias), the intervention lands on day 6, and
//! the effect is `mean(post differences) − mean(pre differences)` tested
//! across days. This crate reproduces that pipeline over simulated
//! populations; the experiment harness (`lingxi-exp`) supplies the arms.

//!
//! ```
//! use lingxi_abtest::{did_report, AbSchedule, DayMetrics};
//!
//! // A +10% watch-time lift landing on the intervention day is recovered
//! // by the DiD estimate over per-day cohort metrics.
//! let day = |w: f64| DayMetrics { watch_time: w, sessions: 10, ..DayMetrics::default() };
//! let control: Vec<_> = (0..10).map(|d| day(100.0 + (d % 3) as f64)).collect();
//! let treatment: Vec<_> = (0..10)
//!     .map(|d| day(if d >= 5 { 110.0 } else { 100.0 } + (d % 3) as f64))
//!     .collect();
//! let report = did_report(AbSchedule::paper_default(), control, treatment).unwrap();
//! assert!(report.watch_time.did.effect > 5.0);
//! ```

#![forbid(unsafe_code)]

pub mod experiment;
pub mod metrics;

pub use experiment::{did_report, AbReport, AbSchedule, AbTest, ArmRunner, MetricSeries};
pub use metrics::{aggregate_day, relative_diff_pct, DayAccum, DayMetrics};

/// Errors from experiment orchestration.
#[derive(Debug, Clone, PartialEq)]
pub enum AbError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// A statistical routine failed (too few days, etc.).
    Stats(String),
}

impl std::fmt::Display for AbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            AbError::Stats(m) => write!(f, "stats failure: {m}"),
        }
    }
}

impl std::error::Error for AbError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AbError>;
