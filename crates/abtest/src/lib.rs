//! A/B experimentation engine: cohorts, daily metric aggregation, AA/AB
//! scheduling and difference-in-differences reporting.
//!
//! §5.3 of the paper runs a 10-day difference-in-differences test on 8% of
//! production traffic: days 1–5 are an AA phase (both groups run the
//! baseline, measuring cohort bias), the intervention lands on day 6, and
//! the effect is `mean(post differences) − mean(pre differences)` tested
//! across days. This crate reproduces that pipeline over simulated
//! populations; the experiment harness (`lingxi-exp`) supplies the arms.

pub mod experiment;
pub mod metrics;

pub use experiment::{AbReport, AbSchedule, AbTest, ArmRunner, MetricSeries};
pub use metrics::{aggregate_day, relative_diff_pct, DayMetrics};

/// Errors from experiment orchestration.
#[derive(Debug, Clone, PartialEq)]
pub enum AbError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// A statistical routine failed (too few days, etc.).
    Stats(String),
}

impl std::fmt::Display for AbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            AbError::Stats(m) => write!(f, "stats failure: {m}"),
        }
    }
}

impl std::error::Error for AbError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AbError>;
