//! The AA/AB difference-in-differences experiment orchestrator.

use lingxi_player::SessionSummary;
use lingxi_stats::{did_estimate, DidResult};
use lingxi_user::UserRecord;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::metrics::{aggregate_day, relative_diff_pct, DayMetrics};
use crate::{AbError, Result};

/// A stateful per-user arm runner: created once per (arm, user), invoked
/// once per experiment day. Statefulness lets LingXi's long-term state
/// persist across days, as it does in production.
pub trait ArmRunner: Send {
    /// Run all of this user's sessions for `day`; `intervened` is true on
    /// AB-phase days for the treatment arm.
    fn run_user_day(
        &mut self,
        user: &UserRecord,
        day: usize,
        intervened: bool,
        rng: &mut dyn RngCore,
    ) -> Vec<SessionSummary>;
}

/// Experiment schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbSchedule {
    /// Total days.
    pub days: usize,
    /// First day (0-based) on which the treatment arm is intervened —
    /// days before this form the AA phase.
    pub intervention_day: usize,
}

impl AbSchedule {
    /// The paper's 10-day design: AA on days 0–4, AB on days 5–9.
    pub fn paper_default() -> Self {
        Self {
            days: 10,
            intervention_day: 5,
        }
    }

    /// Validate.
    pub fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(AbError::InvalidConfig("need at least one day".into()));
        }
        if self.intervention_day >= self.days {
            return Err(AbError::InvalidConfig(
                "intervention must fall inside the schedule".into(),
            ));
        }
        if self.intervention_day < 2 || self.days - self.intervention_day < 2 {
            return Err(AbError::InvalidConfig(
                "need >= 2 days in each phase for the DiD t-test".into(),
            ));
        }
        Ok(())
    }
}

/// One metric's daily series and DiD verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Metric name.
    pub name: String,
    /// Per-day relative difference (treatment vs control), percent.
    pub daily_rel_diff_pct: Vec<f64>,
    /// Difference-in-differences estimate over the relative differences.
    pub did: DidResult,
}

/// Full experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbReport {
    /// Schedule used.
    pub schedule: AbSchedule,
    /// Control-arm daily metrics.
    pub control: Vec<DayMetrics>,
    /// Treatment-arm daily metrics.
    pub treatment: Vec<DayMetrics>,
    /// Watch-time series + DiD (Fig. 12a).
    pub watch_time: MetricSeries,
    /// Bitrate series + DiD (Fig. 12b).
    pub bitrate: MetricSeries,
    /// Stall-time series + DiD (Fig. 12c).
    pub stall_time: MetricSeries,
}

/// The experiment driver.
pub struct AbTest {
    /// Schedule.
    pub schedule: AbSchedule,
    /// Base RNG seed; every (arm, user, day) derives its own stream.
    pub seed: u64,
    /// Worker threads for the user loop.
    pub threads: usize,
    /// Common random numbers: both arms share per-(user, day) RNG streams,
    /// so paired (twin) cohorts see identical workloads until the policies
    /// diverge — a standard simulation variance-reduction technique that
    /// stands in for the statistical power of the paper's 30M-user cohort.
    pub common_random_numbers: bool,
}

impl AbTest {
    /// New driver with the paper's schedule.
    pub fn new(seed: u64) -> Self {
        Self {
            schedule: AbSchedule::paper_default(),
            seed,
            threads: 4,
            common_random_numbers: false,
        }
    }

    /// Run the experiment.
    ///
    /// `control_users` / `treatment_users` are the two cohorts;
    /// `make_control` / `make_treatment` build one stateful runner per
    /// user. Users are processed in parallel; each runs its days in order
    /// so cross-day state behaves like production.
    pub fn run<FC, FT>(
        &self,
        control_users: &[UserRecord],
        treatment_users: &[UserRecord],
        make_control: FC,
        make_treatment: FT,
    ) -> Result<AbReport>
    where
        FC: Fn(&UserRecord) -> Box<dyn ArmRunner> + Sync,
        FT: Fn(&UserRecord) -> Box<dyn ArmRunner> + Sync,
    {
        self.schedule.validate()?;
        if control_users.is_empty() || treatment_users.is_empty() {
            return Err(AbError::InvalidConfig("empty cohort".into()));
        }
        let control_daily = self.run_arm(control_users, &make_control, false)?;
        let treatment_daily = self.run_arm(treatment_users, &make_treatment, true)?;

        let control: Vec<DayMetrics> = control_daily.iter().map(|d| aggregate_day(d)).collect();
        let treatment: Vec<DayMetrics> = treatment_daily.iter().map(|d| aggregate_day(d)).collect();
        did_report(self.schedule, control, treatment)
    }

    /// Run one arm, returning per-day session summaries.
    fn run_arm<F>(
        &self,
        users: &[UserRecord],
        make_runner: &F,
        is_treatment: bool,
    ) -> Result<Vec<Vec<SessionSummary>>>
    where
        F: Fn(&UserRecord) -> Box<dyn ArmRunner> + Sync,
    {
        let days = self.schedule.days;
        // One slot per user, written by exactly one worker. The final merge
        // walks users in cohort order, so day buckets — and therefore every
        // float reduction downstream — are byte-identical for any thread
        // count (completion-order `extend` into shared day buckets is not:
        // float sums aren't associative).
        let slots: Vec<Mutex<Vec<Vec<SessionSummary>>>> =
            users.iter().map(|_| Mutex::new(Vec::new())).collect();
        let n_threads = self.threads.max(1);
        let chunk = users.len().div_ceil(n_threads);
        let arm_tag = if self.common_random_numbers {
            0
        } else {
            u64::from(is_treatment)
        };
        let panicked = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker_users, worker_slots) in
                users.chunks(chunk.max(1)).zip(slots.chunks(chunk.max(1)))
            {
                handles.push(scope.spawn(move || {
                    for (user, slot) in worker_users.iter().zip(worker_slots) {
                        let mut runner = make_runner(user);
                        let mut user_days = Vec::with_capacity(days);
                        for day in 0..days {
                            let intervened = is_treatment && day >= self.schedule.intervention_day;
                            // Derive a deterministic stream per (arm, user,
                            // day) so thread scheduling can't change results.
                            let mut rng = StdRng::seed_from_u64(
                                self.seed
                                    ^ (user.id.wrapping_mul(0x9E3779B97F4A7C15))
                                    ^ ((day as u64) << 32)
                                    ^ (arm_tag << 63),
                            );
                            user_days.push(runner.run_user_day(user, day, intervened, &mut rng));
                        }
                        *slot.lock() = user_days;
                    }
                }));
            }
            // Join every handle before judging: `any` alone would
            // short-circuit on the first panic and leave later panicked
            // threads to re-panic out of the scope instead of mapping to
            // an error.
            handles
                .into_iter()
                .map(|h| h.join().is_err())
                .collect::<Vec<_>>()
                .into_iter()
                .any(|e| e)
        });
        if panicked {
            return Err(AbError::InvalidConfig("worker thread panicked".into()));
        }
        let mut per_day: Vec<Vec<SessionSummary>> = (0..days).map(|_| Vec::new()).collect();
        for slot in slots {
            for (day, summaries) in slot.into_inner().into_iter().enumerate() {
                per_day[day].extend(summaries);
            }
        }
        Ok(per_day)
    }
}

/// Build the full [`AbReport`] — the paper's three metric series with their
/// difference-in-differences verdicts (Fig. 12) — from per-day cohort
/// metrics.
///
/// [`AbTest::run`] calls this with its own day aggregates; the fleet engine
/// calls it with per-epoch metrics merged across shards, which is how a
/// population-scale simulation feeds the same DiD pipeline as the
/// session-level driver.
pub fn did_report(
    schedule: AbSchedule,
    control: Vec<DayMetrics>,
    treatment: Vec<DayMetrics>,
) -> Result<AbReport> {
    schedule.validate()?;
    if control.len() != schedule.days || treatment.len() != schedule.days {
        return Err(AbError::InvalidConfig(format!(
            "need {} day metrics per cohort, got {} control / {} treatment",
            schedule.days,
            control.len(),
            treatment.len()
        )));
    }
    let series = |name: &str, f: &dyn Fn(&DayMetrics) -> f64| -> Result<MetricSeries> {
        let rel: Vec<f64> = (0..schedule.days)
            .map(|d| relative_diff_pct(f(&treatment[d]), f(&control[d])))
            .collect();
        let (pre, post) = rel.split_at(schedule.intervention_day);
        let did = did_estimate(pre, post).map_err(|e| AbError::Stats(e.to_string()))?;
        Ok(MetricSeries {
            name: name.to_string(),
            daily_rel_diff_pct: rel,
            did,
        })
    };
    Ok(AbReport {
        schedule,
        watch_time: series("watch_time", &|m| m.watch_time)?,
        bitrate: series("bitrate", &|m| m.mean_bitrate)?,
        stall_time: series("stall_time", &|m| m.stall_time)?,
        control,
        treatment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_net::{NetClass, UserNetProfile};
    use lingxi_user::{SensitivityKind, StallProfile};
    use rand::Rng;

    fn user(id: u64) -> UserRecord {
        UserRecord {
            id,
            net: UserNetProfile {
                class: NetClass::Wifi,
                mean_kbps: 8000.0,
                cv: 0.3,
            },
            stall: StallProfile::new(SensitivityKind::Sensitive, 3.0, 0.3).unwrap(),
            sessions_per_day: 5.0,
        }
    }

    /// A synthetic arm producing watch times around `base`, plus `boost`
    /// once intervened.
    struct SyntheticArm {
        base: f64,
        boost: f64,
    }

    impl ArmRunner for SyntheticArm {
        fn run_user_day(
            &mut self,
            _user: &UserRecord,
            _day: usize,
            intervened: bool,
            rng: &mut dyn RngCore,
        ) -> Vec<SessionSummary> {
            let mut rng = StdRng::seed_from_u64(rng.next_u64());
            (0..5)
                .map(|_| {
                    let noise: f64 = rng.gen::<f64>() * 2.0;
                    let watch = self.base + noise + if intervened { self.boost } else { 0.0 };
                    SessionSummary {
                        user_id: 0,
                        watch_time: watch,
                        total_stall: 1.0,
                        stall_count: 1,
                        mean_bitrate: 2000.0,
                        switch_count: 0,
                        completed: true,
                        segments: 20,
                    }
                })
                .collect()
        }
    }

    #[test]
    fn did_recovers_injected_effect() {
        let users: Vec<UserRecord> = (0..40).map(user).collect();
        let test = AbTest::new(7);
        let report = test
            .run(
                &users[..20],
                &users[20..],
                |_| {
                    Box::new(SyntheticArm {
                        base: 30.0,
                        boost: 0.0,
                    })
                },
                |_| {
                    Box::new(SyntheticArm {
                        base: 30.0,
                        boost: 1.5,
                    })
                },
            )
            .unwrap();
        // ~5% injected watch-time effect.
        assert!(
            report.watch_time.did.effect > 2.0 && report.watch_time.did.effect < 8.0,
            "effect {}",
            report.watch_time.did.effect
        );
        assert!(report.watch_time.did.p_two_sided < 0.05);
        // AA phase differences stay small.
        assert!(report.watch_time.did.pre_mean.abs() < 3.0);
        // Bitrate had no injected effect.
        assert!(report.bitrate.did.effect.abs() < 1.0);
        assert_eq!(report.watch_time.daily_rel_diff_pct.len(), 10);
        assert_eq!(report.control.len(), 10);
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let users: Vec<UserRecord> = (0..12).map(user).collect();
        let run = |threads: usize| {
            let mut test = AbTest::new(9);
            test.threads = threads;
            test.run(
                &users[..6],
                &users[6..],
                |_| {
                    Box::new(SyntheticArm {
                        base: 30.0,
                        boost: 0.0,
                    })
                },
                |_| {
                    Box::new(SyntheticArm {
                        base: 30.0,
                        boost: 1.0,
                    })
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(
            a.watch_time.daily_rel_diff_pct,
            b.watch_time.daily_rel_diff_pct
        );
    }

    #[test]
    fn did_report_validates_lengths() {
        let schedule = AbSchedule::paper_default();
        let ok: Vec<DayMetrics> = (0..10)
            .map(|d| DayMetrics {
                watch_time: 100.0 + d as f64,
                mean_bitrate: 2000.0,
                stall_time: 5.0,
                sessions: 10,
                ..DayMetrics::default()
            })
            .collect();
        assert!(did_report(schedule, ok.clone(), ok.clone()).is_ok());
        assert!(did_report(schedule, ok[..9].to_vec(), ok).is_err());
    }

    #[test]
    fn schedule_validation() {
        assert!(AbSchedule {
            days: 0,
            intervention_day: 0
        }
        .validate()
        .is_err());
        assert!(AbSchedule {
            days: 5,
            intervention_day: 5
        }
        .validate()
        .is_err());
        assert!(AbSchedule {
            days: 5,
            intervention_day: 1
        }
        .validate()
        .is_err());
        assert!(AbSchedule {
            days: 5,
            intervention_day: 4
        }
        .validate()
        .is_err());
        assert!(AbSchedule::paper_default().validate().is_ok());
    }

    #[test]
    fn empty_cohorts_rejected() {
        let users: Vec<UserRecord> = (0..4).map(user).collect();
        let test = AbTest::new(1);
        assert!(test
            .run(
                &[],
                &users,
                |_| Box::new(SyntheticArm {
                    base: 1.0,
                    boost: 0.0
                }) as Box<dyn ArmRunner>,
                |_| Box::new(SyntheticArm {
                    base: 1.0,
                    boost: 0.0
                }) as Box<dyn ArmRunner>,
            )
            .is_err());
    }
}
