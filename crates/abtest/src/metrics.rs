//! Daily metric aggregation over session summaries.

use lingxi_player::SessionSummary;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one cohort-day — the three panels of Fig. 12
/// plus supporting counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DayMetrics {
    /// Total watch time (seconds) — the primary QoE metric (§5.3.1).
    pub watch_time: f64,
    /// Total stall time (seconds).
    pub stall_time: f64,
    /// Session-weighted mean bitrate (kbps).
    pub mean_bitrate: f64,
    /// Sessions played.
    pub sessions: usize,
    /// Sessions completed.
    pub completions: usize,
    /// Stall events.
    pub stall_count: usize,
    /// Quality switches.
    pub switches: usize,
}

impl DayMetrics {
    /// Completion rate in `[0, 1]`.
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completions as f64 / self.sessions as f64
        }
    }
}

/// Aggregate one day's session summaries. A batch fold over [`DayAccum`],
/// so the batch and streaming paths cannot drift apart.
pub fn aggregate_day(summaries: &[SessionSummary]) -> DayMetrics {
    let mut acc = DayAccum::new();
    for s in summaries {
        acc.push(s);
    }
    acc.metrics()
}

/// Streaming accumulator for [`DayMetrics`]: fold session summaries one at
/// a time in O(1) memory instead of materialising the whole day's
/// summaries before calling [`aggregate_day`].
///
/// The fleet engine keeps one `DayAccum` per user (sessions folded in play
/// order) and merges the per-user partials in ascending user-id order at
/// the epoch barrier — an order that is a pure function of the population,
/// never of the shard layout, so the merged [`DayMetrics`] are
/// bit-identical for any shard count.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DayAccum {
    watch_time: f64,
    stall_time: f64,
    sessions: usize,
    completions: usize,
    stall_count: usize,
    switches: usize,
    segments: usize,
    bitrate_sum: f64,
    bitrate_weight: f64,
}

impl DayAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one session summary.
    pub fn push(&mut self, s: &SessionSummary) {
        self.watch_time += s.watch_time;
        self.stall_time += s.total_stall;
        self.sessions += 1;
        self.completions += usize::from(s.completed);
        self.stall_count += s.stall_count;
        self.switches += s.switch_count;
        self.segments += s.segments;
        let w = s.segments.max(1) as f64;
        self.bitrate_sum += s.mean_bitrate * w;
        self.bitrate_weight += w;
    }

    /// Fold another accumulator into this one. Float sums make the result
    /// order-sensitive in the last bits; merge partials in a canonical
    /// order when bit-identical cross-partition results are required.
    pub fn merge(&mut self, other: &Self) {
        self.watch_time += other.watch_time;
        self.stall_time += other.stall_time;
        self.sessions += other.sessions;
        self.completions += other.completions;
        self.stall_count += other.stall_count;
        self.switches += other.switches;
        self.segments += other.segments;
        self.bitrate_sum += other.bitrate_sum;
        self.bitrate_weight += other.bitrate_weight;
    }

    /// Sessions folded so far.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Segments folded so far (not part of [`DayMetrics`]; kept for
    /// engine throughput accounting).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Finish into [`DayMetrics`] (identical to [`aggregate_day`] over the
    /// same summaries in the same order).
    pub fn metrics(&self) -> DayMetrics {
        DayMetrics {
            watch_time: self.watch_time,
            stall_time: self.stall_time,
            mean_bitrate: if self.bitrate_weight > 0.0 {
                self.bitrate_sum / self.bitrate_weight
            } else {
                0.0
            },
            sessions: self.sessions,
            completions: self.completions,
            stall_count: self.stall_count,
            switches: self.switches,
        }
    }
}

/// Relative difference in percent: `100 · (treatment − control) / control`.
/// Returns 0 when the control value is 0.
pub fn relative_diff_pct(treatment: f64, control: f64) -> f64 {
    if control == 0.0 {
        0.0
    } else {
        100.0 * (treatment - control) / control
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(
        watch: f64,
        stall: f64,
        bitrate: f64,
        completed: bool,
        segs: usize,
    ) -> SessionSummary {
        SessionSummary {
            user_id: 0,
            watch_time: watch,
            total_stall: stall,
            stall_count: usize::from(stall > 0.0),
            mean_bitrate: bitrate,
            switch_count: 1,
            completed,
            segments: segs,
        }
    }

    #[test]
    fn aggregation_sums_and_weights() {
        let day = aggregate_day(&[
            summary(30.0, 1.0, 1000.0, true, 10),
            summary(10.0, 0.0, 3000.0, false, 30),
        ]);
        assert_eq!(day.watch_time, 40.0);
        assert_eq!(day.stall_time, 1.0);
        assert_eq!(day.sessions, 2);
        assert_eq!(day.completions, 1);
        assert_eq!(day.stall_count, 1);
        assert_eq!(day.switches, 2);
        // Weighted by segments: (1000*10 + 3000*30)/40 = 2500.
        assert!((day.mean_bitrate - 2500.0).abs() < 1e-9);
        assert_eq!(day.completion_rate(), 0.5);
    }

    #[test]
    fn accum_matches_aggregate_day() {
        let sessions = [
            summary(30.0, 1.0, 1000.0, true, 10),
            summary(10.0, 0.0, 3000.0, false, 30),
            summary(5.0, 2.5, 800.0, false, 4),
        ];
        let batch = aggregate_day(&sessions);
        let mut acc = DayAccum::new();
        for s in &sessions {
            acc.push(s);
        }
        assert_eq!(acc.metrics(), batch);
        assert_eq!(acc.sessions(), 3);
        // Split + ordered merge reproduces the single-stream result.
        let mut a = DayAccum::new();
        a.push(&sessions[0]);
        let mut b = DayAccum::new();
        b.push(&sessions[1]);
        b.push(&sessions[2]);
        a.merge(&b);
        assert_eq!(a.metrics().sessions, batch.sessions);
        assert!((a.metrics().watch_time - batch.watch_time).abs() < 1e-12);
        assert_eq!(DayAccum::new().metrics(), aggregate_day(&[]));
    }

    #[test]
    fn empty_day_is_zero() {
        let day = aggregate_day(&[]);
        assert_eq!(day.sessions, 0);
        assert_eq!(day.completion_rate(), 0.0);
        assert_eq!(day.mean_bitrate, 0.0);
    }

    #[test]
    fn relative_diff() {
        assert!((relative_diff_pct(101.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((relative_diff_pct(99.0, 100.0) + 1.0).abs() < 1e-12);
        assert_eq!(relative_diff_pct(5.0, 0.0), 0.0);
    }
}
