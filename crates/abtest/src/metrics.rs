//! Daily metric aggregation over session summaries.

use lingxi_player::SessionSummary;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one cohort-day — the three panels of Fig. 12
/// plus supporting counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DayMetrics {
    /// Total watch time (seconds) — the primary QoE metric (§5.3.1).
    pub watch_time: f64,
    /// Total stall time (seconds).
    pub stall_time: f64,
    /// Session-weighted mean bitrate (kbps).
    pub mean_bitrate: f64,
    /// Sessions played.
    pub sessions: usize,
    /// Sessions completed.
    pub completions: usize,
    /// Stall events.
    pub stall_count: usize,
    /// Quality switches.
    pub switches: usize,
}

impl DayMetrics {
    /// Completion rate in `[0, 1]`.
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completions as f64 / self.sessions as f64
        }
    }
}

/// Aggregate one day's session summaries.
pub fn aggregate_day(summaries: &[SessionSummary]) -> DayMetrics {
    let mut m = DayMetrics::default();
    if summaries.is_empty() {
        return m;
    }
    let mut bitrate_weight = 0.0;
    let mut bitrate_sum = 0.0;
    for s in summaries {
        m.watch_time += s.watch_time;
        m.stall_time += s.total_stall;
        m.sessions += 1;
        m.completions += usize::from(s.completed);
        m.stall_count += s.stall_count;
        m.switches += s.switch_count;
        let w = s.segments.max(1) as f64;
        bitrate_sum += s.mean_bitrate * w;
        bitrate_weight += w;
    }
    m.mean_bitrate = if bitrate_weight > 0.0 {
        bitrate_sum / bitrate_weight
    } else {
        0.0
    };
    m
}

/// Relative difference in percent: `100 · (treatment − control) / control`.
/// Returns 0 when the control value is 0.
pub fn relative_diff_pct(treatment: f64, control: f64) -> f64 {
    if control == 0.0 {
        0.0
    } else {
        100.0 * (treatment - control) / control
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(
        watch: f64,
        stall: f64,
        bitrate: f64,
        completed: bool,
        segs: usize,
    ) -> SessionSummary {
        SessionSummary {
            user_id: 0,
            watch_time: watch,
            total_stall: stall,
            stall_count: usize::from(stall > 0.0),
            mean_bitrate: bitrate,
            switch_count: 1,
            completed,
            segments: segs,
        }
    }

    #[test]
    fn aggregation_sums_and_weights() {
        let day = aggregate_day(&[
            summary(30.0, 1.0, 1000.0, true, 10),
            summary(10.0, 0.0, 3000.0, false, 30),
        ]);
        assert_eq!(day.watch_time, 40.0);
        assert_eq!(day.stall_time, 1.0);
        assert_eq!(day.sessions, 2);
        assert_eq!(day.completions, 1);
        assert_eq!(day.stall_count, 1);
        assert_eq!(day.switches, 2);
        // Weighted by segments: (1000*10 + 3000*30)/40 = 2500.
        assert!((day.mean_bitrate - 2500.0).abs() < 1e-9);
        assert_eq!(day.completion_rate(), 0.5);
    }

    #[test]
    fn empty_day_is_zero() {
        let day = aggregate_day(&[]);
        assert_eq!(day.sessions, 0);
        assert_eq!(day.completion_rate(), 0.0);
        assert_eq!(day.mean_bitrate, 0.0);
    }

    #[test]
    fn relative_diff() {
        assert!((relative_diff_pct(101.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((relative_diff_pct(99.0, 100.0) + 1.0).abs() < 1e-12);
        assert_eq!(relative_diff_pct(5.0, 0.0), 0.0);
    }
}
