//! Bitrate ladders and the four quality tiers of the paper's analyses.

use serde::{Deserialize, Serialize};

use crate::{MediaError, Result};

/// The four user-facing quality tiers used throughout §2 of the paper
/// (Fig. 3a, Fig. 4a): Low / Standard / High / Full-High definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityTier {
    /// Low definition.
    Ld,
    /// Standard definition.
    Sd,
    /// High definition.
    Hd,
    /// Full HD.
    FullHd,
}

impl QualityTier {
    /// All tiers, ascending.
    pub const ALL: [QualityTier; 4] = [
        QualityTier::Ld,
        QualityTier::Sd,
        QualityTier::Hd,
        QualityTier::FullHd,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            QualityTier::Ld => "LD",
            QualityTier::Sd => "SD",
            QualityTier::Hd => "HD",
            QualityTier::FullHd => "Full HD",
        }
    }
}

/// An ascending ladder of bitrate levels (kbps) with tier assignments.
///
/// The default ladder mirrors a short-video production ladder with one
/// level per tier: 350 / 800 / 1850 / 4300 kbps. `Q_max` (the top bitrate)
/// doubles as the stall-penalty weight μ in `QoE_lin` ("we set \[μ\] to the
/// maximum video quality value", §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitrateLadder {
    levels_kbps: Vec<f64>,
    tiers: Vec<QualityTier>,
}

impl BitrateLadder {
    /// Build a ladder from ascending strictly-positive bitrates and a tier
    /// per level.
    pub fn new(levels_kbps: Vec<f64>, tiers: Vec<QualityTier>) -> Result<Self> {
        if levels_kbps.is_empty() {
            return Err(MediaError::InvalidLadder("empty ladder".into()));
        }
        if levels_kbps.len() != tiers.len() {
            return Err(MediaError::InvalidLadder(
                "tier count must match level count".into(),
            ));
        }
        if levels_kbps.iter().any(|&b| !(b > 0.0) || !b.is_finite()) {
            return Err(MediaError::InvalidLadder(
                "bitrates must be positive and finite".into(),
            ));
        }
        if levels_kbps.windows(2).any(|w| w[1] <= w[0]) {
            return Err(MediaError::InvalidLadder(
                "bitrates must be strictly ascending".into(),
            ));
        }
        Ok(Self { levels_kbps, tiers })
    }

    /// The default 4-level production-style ladder (kbps).
    pub fn default_short_video() -> Self {
        Self::new(
            vec![350.0, 800.0, 1850.0, 4300.0],
            vec![
                QualityTier::Ld,
                QualityTier::Sd,
                QualityTier::Hd,
                QualityTier::FullHd,
            ],
        )
        .expect("static ladder is valid")
    }

    /// A finer 6-level ladder used by some experiments/stress tests.
    pub fn six_level() -> Self {
        Self::new(
            vec![250.0, 500.0, 1000.0, 1850.0, 2850.0, 4300.0],
            vec![
                QualityTier::Ld,
                QualityTier::Ld,
                QualityTier::Sd,
                QualityTier::Hd,
                QualityTier::Hd,
                QualityTier::FullHd,
            ],
        )
        .expect("static ladder is valid")
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels_kbps.len()
    }

    /// Ladders are never empty by construction.
    pub fn is_empty(&self) -> bool {
        self.levels_kbps.is_empty()
    }

    /// Bitrate of `level` in kbps.
    pub fn bitrate(&self, level: usize) -> Result<f64> {
        self.levels_kbps
            .get(level)
            .copied()
            .ok_or_else(|| MediaError::OutOfRange(format!("level {level}")))
    }

    /// All bitrates, ascending (kbps).
    pub fn bitrates(&self) -> &[f64] {
        &self.levels_kbps
    }

    /// Quality tier of `level`.
    pub fn tier(&self, level: usize) -> Result<QualityTier> {
        self.tiers
            .get(level)
            .copied()
            .ok_or_else(|| MediaError::OutOfRange(format!("level {level}")))
    }

    /// Highest bitrate (kbps) — the `Q_max` of the pruning rule (§4).
    pub fn max_bitrate(&self) -> f64 {
        *self.levels_kbps.last().expect("non-empty")
    }

    /// Lowest bitrate (kbps).
    pub fn min_bitrate(&self) -> f64 {
        self.levels_kbps[0]
    }

    /// Highest level index.
    pub fn top_level(&self) -> usize {
        self.levels_kbps.len() - 1
    }

    /// Highest level whose bitrate does not exceed `kbps` (level 0 if all
    /// exceed it).
    pub fn highest_level_at_most(&self, kbps: f64) -> usize {
        let mut best = 0;
        for (i, &b) in self.levels_kbps.iter().enumerate() {
            if b <= kbps {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_sane() {
        let l = BitrateLadder::default_short_video();
        assert_eq!(l.len(), 4);
        assert_eq!(l.max_bitrate(), 4300.0);
        assert_eq!(l.min_bitrate(), 350.0);
        assert_eq!(l.tier(0).unwrap(), QualityTier::Ld);
        assert_eq!(l.tier(3).unwrap(), QualityTier::FullHd);
        assert_eq!(l.top_level(), 3);
    }

    #[test]
    fn rejects_bad_ladders() {
        assert!(BitrateLadder::new(vec![], vec![]).is_err());
        assert!(BitrateLadder::new(vec![100.0, 100.0], vec![QualityTier::Ld; 2]).is_err());
        assert!(BitrateLadder::new(vec![200.0, 100.0], vec![QualityTier::Ld; 2]).is_err());
        assert!(BitrateLadder::new(vec![-5.0], vec![QualityTier::Ld]).is_err());
        assert!(BitrateLadder::new(vec![100.0], vec![]).is_err());
    }

    #[test]
    fn level_lookup() {
        let l = BitrateLadder::default_short_video();
        assert_eq!(l.highest_level_at_most(100.0), 0);
        assert_eq!(l.highest_level_at_most(800.0), 1);
        assert_eq!(l.highest_level_at_most(2000.0), 2);
        assert_eq!(l.highest_level_at_most(99_999.0), 3);
        assert!(l.bitrate(9).is_err());
        assert!(l.tier(9).is_err());
    }

    #[test]
    fn tier_labels() {
        assert_eq!(QualityTier::Ld.label(), "LD");
        assert_eq!(QualityTier::FullHd.label(), "Full HD");
        assert_eq!(QualityTier::ALL.len(), 4);
    }
}
