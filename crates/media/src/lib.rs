//! Video/media substrate: bitrate ladders, quality mappings, VBR segment
//! sizes and a short-video catalog.
//!
//! The paper's player (Eq. 3) consumes per-segment sizes `d_k(Q_k)` for the
//! selected bitrate level `Q_k ∈ Q`; its QoE objective (Eq. 1) consumes a
//! quality mapping `q(·)`; its analyses bucket levels into the four tiers
//! LD / SD / HD / Full HD (Fig. 3, 4a). This crate owns all three, plus a
//! generator for short-video catalogs whose duration distribution feeds the
//! Monte-Carlo `T_sample` ("average length of online videos", §3.2).
//!
//! ```
//! use lingxi_media::{BitrateLadder, SegmentSizes, VbrModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // CBR sizes are exactly bitrate × duration: 350 kbps × 2 s = 700 kbit.
//! let ladder = BitrateLadder::default_short_video();
//! let mut rng = StdRng::seed_from_u64(1);
//! let sizes = SegmentSizes::generate(&ladder, 10, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
//! assert_eq!(sizes.size_kbits(0, 0).unwrap(), 700.0);
//! ```

#![forbid(unsafe_code)]

pub mod catalog;
pub mod ladder;
pub mod quality;
pub mod segment;

pub use catalog::{Catalog, CatalogConfig, Video};
pub use ladder::{BitrateLadder, QualityTier};
pub use quality::QualityMap;
pub use segment::{SegmentSizes, VbrModel};

/// Errors from media-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaError {
    /// The ladder needs at least one strictly-positive, ascending bitrate.
    InvalidLadder(String),
    /// Configuration parameter out of range.
    InvalidConfig(String),
    /// Index (level/segment) out of range.
    OutOfRange(String),
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::InvalidLadder(m) => write!(f, "invalid ladder: {m}"),
            MediaError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            MediaError::OutOfRange(m) => write!(f, "out of range: {m}"),
        }
    }
}

impl std::error::Error for MediaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MediaError>;
