//! Short-video catalog generation.
//!
//! The Monte-Carlo sampler (§3.2) sets its per-sample horizon `T_sample` to
//! "the average length of online videos"; sessions in the analyses play
//! videos drawn from a heavy-tailed short-video duration distribution. This
//! module generates such catalogs deterministically.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ladder::BitrateLadder;
use crate::segment::{SegmentSizes, VbrModel};
use crate::{MediaError, Result};

/// One video: an id, its segmentation and per-level sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// Stable identifier within the catalog.
    pub id: u64,
    /// Per-segment sizes.
    pub sizes: SegmentSizes,
}

impl Video {
    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.sizes.n_segments() as f64 * self.sizes.segment_duration()
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.sizes.n_segments()
    }
}

/// Catalog generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of videos to generate.
    pub n_videos: usize,
    /// Segment duration in seconds (the `L` of Eq. 3).
    pub segment_duration: f64,
    /// Mean video duration in seconds (short-video platforms: ~40–60 s).
    pub mean_duration: f64,
    /// Relative deviation of duration (log-normal; heavy-tailed like real
    /// UGC catalogs).
    pub duration_spread: f64,
    /// Minimum video duration in seconds.
    pub min_duration: f64,
    /// VBR model for segment sizes.
    pub vbr: VbrModel,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            n_videos: 100,
            segment_duration: 2.0,
            mean_duration: 48.0,
            duration_spread: 0.6,
            min_duration: 6.0,
            vbr: VbrModel::default_vbr(),
        }
    }
}

/// A generated collection of videos sharing one bitrate ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    ladder: BitrateLadder,
    videos: Vec<Video>,
}

impl Catalog {
    /// Generate a catalog.
    pub fn generate<R: Rng + ?Sized>(
        ladder: BitrateLadder,
        config: &CatalogConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if config.n_videos == 0 {
            return Err(MediaError::InvalidConfig("need at least one video".into()));
        }
        if !(config.mean_duration > 0.0)
            || !(config.min_duration > 0.0)
            || config.min_duration > config.mean_duration
        {
            return Err(MediaError::InvalidConfig(
                "durations must be positive with min <= mean".into(),
            ));
        }
        if !(config.duration_spread >= 0.0) {
            return Err(MediaError::InvalidConfig(
                "duration spread must be non-negative".into(),
            ));
        }
        // Log-normal duration with the requested linear-space mean.
        let sigma = (config.duration_spread.powi(2) + 1.0).ln().sqrt();
        let mu = config.mean_duration.ln() - sigma * sigma / 2.0;
        let mut videos = Vec::with_capacity(config.n_videos);
        for id in 0..config.n_videos {
            let duration = loop {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let d = (mu + sigma * z).exp();
                if d >= config.min_duration {
                    break d;
                }
            };
            let n_segments = (duration / config.segment_duration).ceil().max(1.0) as usize;
            let sizes = SegmentSizes::generate(
                &ladder,
                n_segments,
                config.segment_duration,
                &config.vbr,
                rng,
            )?;
            videos.push(Video {
                id: id as u64,
                sizes,
            });
        }
        Ok(Self { ladder, videos })
    }

    /// The shared bitrate ladder.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// All videos.
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Catalogs are never empty by construction.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Video by index (wrapping), for round-robin session generation.
    pub fn video_cyclic(&self, idx: usize) -> &Video {
        &self.videos[idx % self.videos.len()]
    }

    /// Draw a random video.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &Video {
        &self.videos[rng.gen_range(0..self.videos.len())]
    }

    /// Mean duration across the catalog — the `T_sample` of Algorithm 2.
    pub fn mean_duration(&self) -> f64 {
        self.videos.iter().map(|v| v.duration()).sum::<f64>() / self.videos.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_respects_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CatalogConfig {
            n_videos: 50,
            ..CatalogConfig::default()
        };
        let cat = Catalog::generate(BitrateLadder::default_short_video(), &cfg, &mut rng).unwrap();
        assert_eq!(cat.len(), 50);
        for v in cat.videos() {
            assert!(v.duration() >= cfg.min_duration);
            assert!(v.n_segments() >= 1);
            assert_eq!(v.sizes.segment_duration(), 2.0);
        }
    }

    #[test]
    fn mean_duration_close_to_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CatalogConfig {
            n_videos: 3000,
            ..CatalogConfig::default()
        };
        let cat = Catalog::generate(BitrateLadder::default_short_video(), &cfg, &mut rng).unwrap();
        let m = cat.mean_duration();
        // Truncation at min_duration pushes the mean slightly above target.
        assert!(m > 42.0 && m < 58.0, "mean duration {m}");
    }

    #[test]
    fn cyclic_and_sample_access() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CatalogConfig {
            n_videos: 5,
            ..CatalogConfig::default()
        };
        let cat = Catalog::generate(BitrateLadder::default_short_video(), &cfg, &mut rng).unwrap();
        assert_eq!(cat.video_cyclic(0).id, cat.video_cyclic(5).id);
        let v = cat.sample(&mut rng);
        assert!(v.id < 5);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = BitrateLadder::default_short_video;
        let bad0 = CatalogConfig {
            n_videos: 0,
            ..CatalogConfig::default()
        };
        assert!(Catalog::generate(l(), &bad0, &mut rng).is_err());
        let bad1 = CatalogConfig {
            min_duration: 100.0,
            mean_duration: 10.0,
            ..CatalogConfig::default()
        };
        assert!(Catalog::generate(l(), &bad1, &mut rng).is_err());
        let bad2 = CatalogConfig {
            duration_spread: -0.5,
            ..CatalogConfig::default()
        };
        assert!(Catalog::generate(l(), &bad2, &mut rng).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let cfg = CatalogConfig {
            n_videos: 10,
            ..CatalogConfig::default()
        };
        let a = Catalog::generate(
            BitrateLadder::default_short_video(),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        let b = Catalog::generate(
            BitrateLadder::default_short_video(),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
