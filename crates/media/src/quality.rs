//! Quality mappings `q(·)` for the `QoE_lin` objective (paper Eq. 1).
//!
//! `QoE_lin = Σ q(Q_k) − μ Σ T_k − Σ |q(Q_{k+1}) − q(Q_k)|`
//!
//! The literature uses linear (`q = bitrate`), logarithmic (diminishing
//! returns, as in BOLA) and normalized-level mappings; RobustMPC sweeps all
//! three. The stall weight μ defaults to the maximum video quality value,
//! exactly as §2.1 sets it.

use serde::{Deserialize, Serialize};

use crate::ladder::BitrateLadder;
use crate::Result;

/// The quality function family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityMap {
    /// `q(b) = b / 1000` (Mbps-scaled linear quality).
    LinearMbps,
    /// `q(b) = ln(b / b_min)` — diminishing returns at high bitrates.
    LogRelative {
        /// The reference (lowest) bitrate in kbps.
        min_bitrate_kbps: f64,
    },
    /// `q(level) = level + 1` — the normalized-level mapping.
    LevelIndex,
}

impl QualityMap {
    /// Log mapping anchored at the ladder's lowest rung.
    pub fn log_for(ladder: &BitrateLadder) -> Self {
        QualityMap::LogRelative {
            min_bitrate_kbps: ladder.min_bitrate(),
        }
    }

    /// Quality value of `level` in `ladder`.
    pub fn q(&self, ladder: &BitrateLadder, level: usize) -> Result<f64> {
        let b = ladder.bitrate(level)?;
        Ok(match self {
            QualityMap::LinearMbps => b / 1000.0,
            QualityMap::LogRelative { min_bitrate_kbps } => (b / min_bitrate_kbps).ln(),
            QualityMap::LevelIndex => level as f64 + 1.0,
        })
    }

    /// Quality of the top rung — the paper's default stall-penalty weight μ.
    pub fn q_max(&self, ladder: &BitrateLadder) -> f64 {
        self.q(ladder, ladder.top_level())
            .expect("top level is always valid")
    }

    /// Absolute quality switch magnitude between consecutive segments.
    pub fn switch_penalty(&self, ladder: &BitrateLadder, from: usize, to: usize) -> Result<f64> {
        Ok((self.q(ladder, to)? - self.q(ladder, from)?).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::BitrateLadder;

    #[test]
    fn linear_map_values() {
        let l = BitrateLadder::default_short_video();
        let q = QualityMap::LinearMbps;
        assert!((q.q(&l, 0).unwrap() - 0.35).abs() < 1e-12);
        assert!((q.q(&l, 3).unwrap() - 4.3).abs() < 1e-12);
        assert!((q.q_max(&l) - 4.3).abs() < 1e-12);
    }

    #[test]
    fn log_map_monotone_concave() {
        let l = BitrateLadder::default_short_video();
        let q = QualityMap::log_for(&l);
        let v: Vec<f64> = (0..4).map(|i| q.q(&l, i).unwrap()).collect();
        assert_eq!(v[0], 0.0);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
        // Concavity in bitrate: the per-kbps slope decreases up the ladder.
        let slope_low = (v[1] - v[0]) / (800.0 - 350.0);
        let slope_high = (v[3] - v[2]) / (4300.0 - 1850.0);
        assert!(slope_low > slope_high);
    }

    #[test]
    fn level_index_map() {
        let l = BitrateLadder::default_short_video();
        let q = QualityMap::LevelIndex;
        assert_eq!(q.q(&l, 0).unwrap(), 1.0);
        assert_eq!(q.q_max(&l), 4.0);
    }

    #[test]
    fn switch_penalty_symmetric() {
        let l = BitrateLadder::default_short_video();
        let q = QualityMap::LinearMbps;
        let up = q.switch_penalty(&l, 0, 3).unwrap();
        let down = q.switch_penalty(&l, 3, 0).unwrap();
        assert_eq!(up, down);
        assert_eq!(q.switch_penalty(&l, 2, 2).unwrap(), 0.0);
        assert!(q.switch_penalty(&l, 0, 9).is_err());
    }
}
