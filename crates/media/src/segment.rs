//! Variable-bitrate (VBR) segment-size models.
//!
//! Real encoders do not emit constant-size segments: a segment's size is its
//! nominal `bitrate × duration` scaled by content complexity. The player
//! model (Eq. 3) downloads `d_k(Q_k)`; this module generates those sizes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ladder::BitrateLadder;
use crate::{MediaError, Result};

/// Log-normal multiplicative VBR deviation around the nominal segment size.
///
/// A `spread` of 0 gives constant-bitrate segments; production short-video
/// encoders typically land around 0.2–0.35 relative deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VbrModel {
    /// Relative standard deviation of segment size around nominal (>= 0).
    pub spread: f64,
    /// Correlation between *levels* of the same segment: the same content
    /// complexity scales every level of a segment identically, which is how
    /// real ladders behave (a complex scene is large at every level).
    pub shared_complexity: bool,
}

impl VbrModel {
    /// Constant-bitrate model (zero spread).
    pub fn cbr() -> Self {
        Self {
            spread: 0.0,
            shared_complexity: true,
        }
    }

    /// Typical short-video VBR model.
    pub fn default_vbr() -> Self {
        Self {
            spread: 0.25,
            shared_complexity: true,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.spread >= 0.0) || !self.spread.is_finite() {
            return Err(MediaError::InvalidConfig(
                "VBR spread must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Draw one multiplicative complexity factor with mean 1.
    fn factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.spread == 0.0 {
            return 1.0;
        }
        // Log-normal with E[X] = 1: mu = -sigma^2/2.
        let sigma = (self.spread * self.spread + 1.0).ln().sqrt();
        let mu = -sigma * sigma / 2.0;
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }
}

/// Per-segment, per-level sizes in **kilobits** for one video.
///
/// `size(k, level) = bitrate_kbps(level) × segment_duration × complexity_k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentSizes {
    segment_duration: f64,
    /// Levels per segment (the flat table's row stride).
    levels: usize,
    /// `sizes[k * levels + level]`, kilobits — row-major flat layout, so
    /// the ABR select loop's per-level lookups walk one contiguous row
    /// instead of chasing a pointer per segment.
    sizes: Vec<f64>,
}

impl SegmentSizes {
    /// Generate sizes for `n_segments` segments of `segment_duration`
    /// seconds across all levels of `ladder`.
    pub fn generate<R: Rng + ?Sized>(
        ladder: &BitrateLadder,
        n_segments: usize,
        segment_duration: f64,
        vbr: &VbrModel,
        rng: &mut R,
    ) -> Result<Self> {
        let mut sizes = Self {
            segment_duration,
            levels: 0,
            sizes: Vec::new(),
        };
        sizes.refill(ladder, n_segments, segment_duration, vbr, rng)?;
        Ok(sizes)
    }

    /// Regenerate this size table in place for a (possibly different)
    /// segment count, reusing the existing row allocations. The LingXi
    /// Monte-Carlo hot path builds one virtual video per parameter
    /// evaluation; refilling an owned table instead of calling
    /// [`SegmentSizes::generate`] keeps that path allocation-free after
    /// the first evaluation.
    pub fn refill<R: Rng + ?Sized>(
        &mut self,
        ladder: &BitrateLadder,
        n_segments: usize,
        segment_duration: f64,
        vbr: &VbrModel,
        rng: &mut R,
    ) -> Result<()> {
        if n_segments == 0 {
            return Err(MediaError::InvalidConfig(
                "need at least one segment".into(),
            ));
        }
        if !(segment_duration > 0.0) || !segment_duration.is_finite() {
            return Err(MediaError::InvalidConfig(
                "segment duration must be positive".into(),
            ));
        }
        vbr.validate()?;
        self.segment_duration = segment_duration;
        let levels = ladder.bitrates().len();
        self.levels = levels;
        self.sizes.resize(n_segments * levels, 0.0);
        for row in self.sizes.chunks_exact_mut(levels) {
            let shared = vbr.factor(rng);
            for (slot, &b) in row.iter_mut().zip(ladder.bitrates()) {
                let f = if vbr.shared_complexity {
                    shared
                } else {
                    vbr.factor(rng)
                };
                *slot = b * segment_duration * f;
            }
        }
        Ok(())
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.sizes.len().checked_div(self.levels).unwrap_or(0)
    }

    /// Segment duration in seconds (the `L` of Eq. 3).
    pub fn segment_duration(&self) -> f64 {
        self.segment_duration
    }

    /// Size of segment `k` at `level`, kilobits.
    pub fn size_kbits(&self, k: usize, level: usize) -> Result<f64> {
        if level >= self.levels {
            return Err(MediaError::OutOfRange(format!("segment {k} level {level}")));
        }
        k.checked_mul(self.levels)
            .and_then(|base| self.sizes.get(base + level))
            .copied()
            .ok_or_else(|| MediaError::OutOfRange(format!("segment {k} level {level}")))
    }

    /// Effective bitrate (kbps) of segment `k` at `level`
    /// (size / duration) — what a throughput rule divides by.
    pub fn effective_bitrate(&self, k: usize, level: usize) -> Result<f64> {
        Ok(self.size_kbits(k, level)? / self.segment_duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refill_matches_generate_and_reshapes() {
        let l = BitrateLadder::default_short_video();
        let vbr = VbrModel::default_vbr();
        let fresh = SegmentSizes::generate(&l, 24, 2.0, &vbr, &mut StdRng::seed_from_u64(9));
        let mut reused =
            SegmentSizes::generate(&l, 7, 4.0, &vbr, &mut StdRng::seed_from_u64(1)).unwrap();
        reused
            .refill(&l, 24, 2.0, &vbr, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(Some(&reused), fresh.as_ref().ok(), "same seed, same table");
        // Shrinking works too, and validation still applies.
        reused
            .refill(&l, 3, 2.0, &vbr, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(reused.n_segments(), 3);
        assert!(reused
            .refill(&l, 0, 2.0, &vbr, &mut StdRng::seed_from_u64(9))
            .is_err());
    }

    #[test]
    fn cbr_sizes_exact() {
        let l = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(1);
        let s = SegmentSizes::generate(&l, 10, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        assert_eq!(s.n_segments(), 10);
        assert_eq!(s.size_kbits(0, 0).unwrap(), 700.0); // 350 kbps * 2 s
        assert_eq!(s.size_kbits(9, 3).unwrap(), 8600.0);
        assert_eq!(s.effective_bitrate(3, 1).unwrap(), 800.0);
    }

    #[test]
    fn vbr_sizes_average_to_nominal() {
        let l = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(2);
        let s =
            SegmentSizes::generate(&l, 20_000, 2.0, &VbrModel::default_vbr(), &mut rng).unwrap();
        let mean: f64 = (0..s.n_segments())
            .map(|k| s.size_kbits(k, 2).unwrap())
            .sum::<f64>()
            / s.n_segments() as f64;
        let nominal = 1850.0 * 2.0;
        assert!(
            (mean - nominal).abs() / nominal < 0.02,
            "mean {mean} vs nominal {nominal}"
        );
    }

    #[test]
    fn shared_complexity_scales_all_levels_together() {
        let l = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(3);
        let s = SegmentSizes::generate(&l, 50, 2.0, &VbrModel::default_vbr(), &mut rng).unwrap();
        for k in 0..50 {
            let r0 = s.size_kbits(k, 0).unwrap() / (350.0 * 2.0);
            let r3 = s.size_kbits(k, 3).unwrap() / (4300.0 * 2.0);
            assert!((r0 - r3).abs() < 1e-9, "segment {k} factors differ");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let l = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(SegmentSizes::generate(&l, 0, 2.0, &VbrModel::cbr(), &mut rng).is_err());
        assert!(SegmentSizes::generate(&l, 5, 0.0, &VbrModel::cbr(), &mut rng).is_err());
        let bad = VbrModel {
            spread: -1.0,
            shared_complexity: true,
        };
        assert!(SegmentSizes::generate(&l, 5, 2.0, &bad, &mut rng).is_err());
    }

    #[test]
    fn out_of_range_lookup_errors() {
        let l = BitrateLadder::default_short_video();
        let mut rng = StdRng::seed_from_u64(5);
        let s = SegmentSizes::generate(&l, 3, 2.0, &VbrModel::cbr(), &mut rng).unwrap();
        assert!(s.size_kbits(3, 0).is_err());
        assert!(s.size_kbits(0, 4).is_err());
    }
}
