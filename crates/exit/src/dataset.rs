//! Dataset assembly for predictor training.
//!
//! Fig. 9(a) compares predictors trained on three dataset compositions:
//! ALL (every segment), EVENT (segments with a stall *or* a quality
//! switch) and STALL (only stalled segments — the paper's production
//! choice). Entries pair a [`StateMatrix`] with the observed exit label.

use rand::Rng;
use serde::{Deserialize, Serialize};

use lingxi_stats::sampling::{balanced_undersample, stratified_split};

use crate::features::StateMatrix;
use crate::{ExitError, Result};

/// One labelled training entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExitEntry {
    /// User state at decision time.
    pub state: StateMatrix,
    /// Did the segment stall?
    pub stalled: bool,
    /// Did the segment carry a quality switch?
    pub switched: bool,
    /// Did the user exit after it?
    pub exited: bool,
}

/// Which segments a dataset keeps — the Fig. 9(a) ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetFlavor {
    /// Every segment.
    All,
    /// Only segments with a stall or switch ("relevant events").
    Event,
    /// Only stalled segments (the deployed choice).
    Stall,
}

impl DatasetFlavor {
    /// Does this flavor keep the entry?
    pub fn keeps(&self, e: &ExitEntry) -> bool {
        match self {
            DatasetFlavor::All => true,
            DatasetFlavor::Event => e.stalled || e.switched,
            DatasetFlavor::Stall => e.stalled,
        }
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetFlavor::All => "ALL",
            DatasetFlavor::Event => "Event",
            DatasetFlavor::Stall => "Stall",
        }
    }
}

/// A labelled dataset with split/sampling utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitDataset {
    entries: Vec<ExitEntry>,
}

impl ExitDataset {
    /// Build from raw entries filtered by `flavor`.
    pub fn new(raw: &[ExitEntry], flavor: DatasetFlavor) -> Result<Self> {
        let entries: Vec<ExitEntry> = raw.iter().filter(|e| flavor.keeps(e)).cloned().collect();
        if entries.is_empty() {
            return Err(ExitError::BadDataset(format!(
                "flavor {:?} keeps no entries",
                flavor
            )));
        }
        Ok(Self { entries })
    }

    /// All entries.
    pub fn entries(&self) -> &[ExitEntry] {
        &self.entries
    }

    /// Dataset size.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Datasets are never empty by construction.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exit fraction (class balance diagnostic; the paper reports ~4:1
    /// continue:exit even among stalls).
    pub fn exit_fraction(&self) -> f64 {
        self.entries.iter().filter(|e| e.exited).count() as f64 / self.entries.len() as f64
    }

    /// Stratified 80:20 split (paper's ratio). Returns (train, test) index
    /// sets into `entries()`.
    pub fn split<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<(Vec<usize>, Vec<usize>)> {
        let labels: Vec<bool> = self.entries.iter().map(|e| e.exited).collect();
        stratified_split(&labels, 0.8, rng).map_err(|e| ExitError::BadDataset(e.to_string()))
    }

    /// Balanced undersampling of a subset (by indices): majority class
    /// randomly reduced to minority size.
    pub fn balance<R: Rng + ?Sized>(&self, indices: &[usize], rng: &mut R) -> Result<Vec<usize>> {
        let labels: Vec<bool> = indices.iter().map(|&i| self.entries[i].exited).collect();
        let picked =
            balanced_undersample(&labels, rng).map_err(|e| ExitError::BadDataset(e.to_string()))?;
        Ok(picked.into_iter().map(|j| indices[j]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(stalled: bool, switched: bool, exited: bool) -> ExitEntry {
        ExitEntry {
            state: StateMatrix::zeros(),
            stalled,
            switched,
            exited,
        }
    }

    fn raw() -> Vec<ExitEntry> {
        let mut v = Vec::new();
        for i in 0..1000 {
            let stalled = i % 5 == 0; // 200 stalled
            let switched = i % 3 == 0;
            let exited = stalled && i % 10 == 0; // 100 exits, all stalled
            v.push(entry(stalled, switched, exited));
        }
        v
    }

    #[test]
    fn flavors_filter_correctly() {
        let raw = raw();
        let all = ExitDataset::new(&raw, DatasetFlavor::All).unwrap();
        let event = ExitDataset::new(&raw, DatasetFlavor::Event).unwrap();
        let stall = ExitDataset::new(&raw, DatasetFlavor::Stall).unwrap();
        assert_eq!(all.len(), 1000);
        assert_eq!(stall.len(), 200);
        assert!(event.len() > stall.len() && event.len() < all.len());
        assert!(stall.entries().iter().all(|e| e.stalled));
        assert!(event.entries().iter().all(|e| e.stalled || e.switched));
    }

    #[test]
    fn empty_flavor_errors() {
        let raw = vec![entry(false, false, false); 10];
        assert!(ExitDataset::new(&raw, DatasetFlavor::Stall).is_err());
        assert!(ExitDataset::new(&raw, DatasetFlavor::All).is_ok());
        assert!(ExitDataset::new(&[], DatasetFlavor::All).is_err());
    }

    #[test]
    fn split_is_stratified_80_20() {
        let raw = raw();
        let ds = ExitDataset::new(&raw, DatasetFlavor::Stall).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ds.split(&mut rng).unwrap();
        assert_eq!(train.len() + test.len(), 200);
        assert!((train.len() as f64 / 200.0 - 0.8).abs() < 0.02);
        let train_exits = train.iter().filter(|&&i| ds.entries()[i].exited).count();
        let test_exits = test.iter().filter(|&&i| ds.entries()[i].exited).count();
        assert_eq!(train_exits, 80);
        assert_eq!(test_exits, 20);
    }

    #[test]
    fn balance_equalises() {
        let raw = raw();
        let ds = ExitDataset::new(&raw, DatasetFlavor::Stall).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = ds.split(&mut rng).unwrap();
        let balanced = ds.balance(&train, &mut rng).unwrap();
        let exits = balanced.iter().filter(|&&i| ds.entries()[i].exited).count();
        assert_eq!(exits * 2, balanced.len());
    }

    #[test]
    fn exit_fraction_matches_construction() {
        let raw = raw();
        let stall = ExitDataset::new(&raw, DatasetFlavor::Stall).unwrap();
        // 100 exits of 200 stalled.
        assert!((stall.exit_fraction() - 0.5).abs() < 1e-12);
    }
}
