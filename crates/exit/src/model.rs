//! The Fig. 7 neural exit predictor: five per-row 1-D conv branches →
//! merge → FC-64 → FC-2 → softmax.

use lingxi_nn::seq::Branched;
use lingxi_nn::{
    softmax, softmax_cross_entropy, Adam, Conv1d, Dense, Layer, Matrix, Relu, Sequential,
};
use lingxi_stats::BinaryConfusion;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::ExitDataset;
use crate::features::{StateMatrix, MATRIX_LEN, N_DIMS};
use crate::{ExitError, Result};

/// Predictor hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Conv channels per branch (paper: 64).
    pub channels: usize,
    /// Conv kernel (paper: 4 → "1x4,64").
    pub kernel: usize,
    /// FC width after the merge (paper: 64).
    pub fc: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Decision threshold on the exit probability.
    pub threshold: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            channels: 64,
            kernel: 4,
            fc: 64,
            epochs: 20,
            batch: 64,
            lr: 1e-3,
            threshold: 0.5,
        }
    }
}

/// A smaller configuration for fast tests/benches.
impl PredictorConfig {
    /// Reduced size for unit tests (still the same topology).
    pub fn small() -> Self {
        Self {
            channels: 8,
            fc: 16,
            epochs: 16,
            ..Self::default()
        }
    }
}

/// Accuracy / precision / recall / F1 on a held-out set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Confusion-derived metrics.
    pub accuracy: f64,
    /// Precision on the exit class.
    pub precision: f64,
    /// Recall on the exit class.
    pub recall: f64,
    /// F1 on the exit class.
    pub f1: f64,
    /// Test-set size.
    pub n: usize,
}

/// The neural exit predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExitPredictor {
    config: PredictorConfig,
    net: Branched,
}

impl ExitPredictor {
    /// Fresh predictor with Fig. 7 topology.
    pub fn new<R: Rng + ?Sized>(config: PredictorConfig, rng: &mut R) -> Result<Self> {
        if config.channels == 0 || config.fc == 0 {
            return Err(ExitError::InvalidConfig("zero-width layers".into()));
        }
        if config.kernel == 0 || config.kernel > MATRIX_LEN {
            return Err(ExitError::InvalidConfig("kernel out of range".into()));
        }
        if !(0.0..=1.0).contains(&config.threshold) {
            return Err(ExitError::InvalidConfig(
                "threshold must be in [0,1]".into(),
            ));
        }
        let mk = |rng: &mut R| -> Result<Sequential> {
            Ok(Sequential::new()
                .push(Layer::Conv1d(
                    Conv1d::new(1, MATRIX_LEN, config.channels, config.kernel, rng)
                        .map_err(|e| ExitError::InvalidConfig(e.to_string()))?,
                ))
                .push(Layer::Relu(Relu::new())))
        };
        let branches: Vec<Sequential> = (0..N_DIMS).map(|_| mk(rng)).collect::<Result<Vec<_>>>()?;
        let out_len = MATRIX_LEN - config.kernel + 1;
        let merged = N_DIMS * config.channels * out_len;
        let head = Sequential::new()
            .push(Layer::Dense(
                Dense::new(merged, config.fc, rng)
                    .map_err(|e| ExitError::InvalidConfig(e.to_string()))?,
            ))
            .push(Layer::Relu(Relu::new()))
            .push(Layer::Dense(
                Dense::new_xavier(config.fc, 2, rng)
                    .map_err(|e| ExitError::InvalidConfig(e.to_string()))?,
            ));
        Ok(Self {
            config,
            net: Branched::new(branches, head),
        })
    }

    /// Configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    fn branch_inputs(states: &[&StateMatrix]) -> Vec<Matrix> {
        (0..N_DIMS)
            .map(|d| {
                let rows: Vec<Vec<f64>> = states.iter().map(|s| s.row(d).to_vec()).collect();
                Matrix::from_rows(&rows).expect("uniform row length")
            })
            .collect()
    }

    /// Exit probability for one state.
    pub fn predict(&mut self, state: &StateMatrix) -> f64 {
        let inputs = Self::branch_inputs(&[state]);
        let logits = self.net.forward(&inputs).expect("fixed shapes");
        softmax(&logits).get(0, 1)
    }

    /// Batched exit probabilities.
    pub fn predict_batch(&mut self, states: &[&StateMatrix]) -> Vec<f64> {
        if states.is_empty() {
            return Vec::new();
        }
        let inputs = Self::branch_inputs(states);
        let logits = self.net.forward(&inputs).expect("fixed shapes");
        let probs = softmax(&logits);
        (0..states.len()).map(|r| probs.get(r, 1)).collect()
    }

    /// Hard decision at the configured threshold.
    pub fn predict_exit(&mut self, state: &StateMatrix) -> bool {
        self.predict(state) >= self.config.threshold
    }

    /// Train on the given entry indices of `dataset` (typically the
    /// balanced training split). Returns per-epoch losses.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        dataset: &ExitDataset,
        indices: &[usize],
        rng: &mut R,
    ) -> Result<Vec<f64>> {
        if indices.is_empty() {
            return Err(ExitError::BadDataset("empty training set".into()));
        }
        let mut opt = Adam::new(self.config.lr);
        let mut order: Vec<usize> = indices.to_vec();
        let mut losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            let mut batches = 0.0f64;
            for chunk in order.chunks(self.config.batch) {
                let states: Vec<&StateMatrix> =
                    chunk.iter().map(|&i| &dataset.entries()[i].state).collect();
                let labels: Vec<usize> = chunk
                    .iter()
                    .map(|&i| usize::from(dataset.entries()[i].exited))
                    .collect();
                let inputs = Self::branch_inputs(&states);
                self.net.zero_grad();
                let logits = self
                    .net
                    .forward(&inputs)
                    .map_err(|e| ExitError::InvalidConfig(e.to_string()))?;
                let (loss, grad) = softmax_cross_entropy(&logits, &labels)
                    .map_err(|e| ExitError::InvalidConfig(e.to_string()))?;
                self.net
                    .backward(&grad)
                    .map_err(|e| ExitError::InvalidConfig(e.to_string()))?;
                self.net.step(&mut opt);
                total += loss;
                batches += 1.0;
            }
            losses.push(total / batches.max(1.0));
        }
        Ok(losses)
    }

    /// Evaluate on the given indices.
    pub fn evaluate(&mut self, dataset: &ExitDataset, indices: &[usize]) -> EvalReport {
        let mut confusion = BinaryConfusion::new();
        // Evaluate in chunks to bound memory.
        for chunk in indices.chunks(256) {
            let states: Vec<&StateMatrix> =
                chunk.iter().map(|&i| &dataset.entries()[i].state).collect();
            let probs = self.predict_batch(&states);
            for (&i, p) in chunk.iter().zip(probs) {
                confusion.record(p >= self.config.threshold, dataset.entries()[i].exited);
            }
        }
        let m = confusion.metrics();
        EvalReport {
            accuracy: m.accuracy,
            precision: m.precision,
            recall: m.recall,
            f1: m.f1,
            n: indices.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetFlavor, ExitEntry};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic learnable dataset: exit iff the stall row (row 2) carries
    /// substantial recent stall.
    fn learnable_dataset(n: usize, seed: u64) -> ExitDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<ExitEntry> = (0..n)
            .map(|_| {
                let mut s = StateMatrix::zeros();
                let stalled = rng.gen::<f64>() < 0.5;
                let big = rng.gen::<f64>() < 0.5;
                if stalled {
                    let magnitude = if big { 0.8 } else { 0.1 };
                    for t in 5..8 {
                        s.rows[2][t] = magnitude + rng.gen::<f64>() * 0.05;
                    }
                }
                for t in 0..8 {
                    s.rows[0][t] = 0.3 + rng.gen::<f64>() * 0.1;
                    s.rows[1][t] = 0.5 + rng.gen::<f64>() * 0.1;
                }
                ExitEntry {
                    state: s,
                    stalled,
                    switched: false,
                    exited: stalled && big,
                }
            })
            .collect();
        ExitDataset::new(&entries, DatasetFlavor::All).unwrap()
    }

    #[test]
    fn predictor_learns_stall_signal() {
        let ds = learnable_dataset(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = ds.split(&mut rng).unwrap();
        let balanced = ds.balance(&train, &mut rng).unwrap();
        let mut p = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        let losses = p.train(&ds, &balanced, &mut rng).unwrap();
        assert!(losses.last().unwrap() < &0.4, "loss {:?}", losses.last());
        let report = p.evaluate(&ds, &test);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        assert!(report.recall > 0.8, "recall {}", report.recall);
        assert!(report.f1 > 0.7, "f1 {}", report.f1);
    }

    #[test]
    fn predict_outputs_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        let s = StateMatrix::zeros();
        let prob = p.predict(&s);
        assert!((0.0..=1.0).contains(&prob));
        let batch = p.predict_batch(&[&s, &s, &s]);
        assert_eq!(batch.len(), 3);
        assert!((batch[0] - prob).abs() < 1e-12);
        assert!(p.predict_batch(&[]).is_empty());
    }

    #[test]
    fn batch_predictions_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        // Fully randomised states so every branch and every feature is live.
        let states: Vec<StateMatrix> = (0..9)
            .map(|_| {
                let mut s = StateMatrix::zeros();
                for d in 0..N_DIMS {
                    for t in 0..MATRIX_LEN {
                        s.rows[d][t] = rng.gen::<f64>();
                    }
                }
                s
            })
            .collect();
        let refs: Vec<&StateMatrix> = states.iter().collect();
        let batched = p.predict_batch(&refs);
        let sequential: Vec<f64> = states.iter().map(|s| p.predict(s)).collect();
        // Exact equality: batching must not move a decision across the
        // exit threshold.
        assert_eq!(batched, sequential);
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(ExitPredictor::new(
            PredictorConfig {
                kernel: 9,
                ..PredictorConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(ExitPredictor::new(
            PredictorConfig {
                channels: 0,
                ..PredictorConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(ExitPredictor::new(
            PredictorConfig {
                threshold: 1.5,
                ..PredictorConfig::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn training_empty_set_errors() {
        let ds = learnable_dataset(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        assert!(p.train(&ds, &[], &mut rng).is_err());
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        let mut s = StateMatrix::zeros();
        s.rows[2][7] = 0.5;
        let before = p.predict(&s);
        let json = serde_json::to_string(&p).unwrap();
        let mut q: ExitPredictor = serde_json::from_str(&json).unwrap();
        assert!((q.predict(&s) - before).abs() < 1e-9);
    }
}
