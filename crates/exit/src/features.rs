//! The 5×8 user-state matrix of Fig. 7.
//!
//! "We model this relationship across five dimensions: bitrate, throughput,
//! past stall time, last stall interval, and last stall-exit interval ...
//! we set the matrix length to 8. The first two dimensions correspond to
//! the last eight video segments, while the last three dimensions relate to
//! stall events and user engagement."

use serde::{Deserialize, Serialize};

/// Row length of the state matrix.
pub const MATRIX_LEN: usize = 8;
/// Number of feature dimensions (rows).
pub const N_DIMS: usize = 5;

/// Normalisation constants (kbps / seconds).
const BITRATE_SCALE: f64 = 5000.0;
const TPUT_SCALE: f64 = 10_000.0;
const STALL_SCALE: f64 = 10.0;
const INTERVAL_SCALE: f64 = 120.0;

/// A dense 5×8 state matrix, rows in the order: bitrate, throughput,
/// stall time, stall interval, stall→exit interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateMatrix {
    /// `rows[d][t]`, normalised into roughly `[0, ~3]`.
    pub rows: [[f64; MATRIX_LEN]; N_DIMS],
}

impl StateMatrix {
    /// All-zero matrix (cold start).
    pub fn zeros() -> Self {
        Self {
            rows: [[0.0; MATRIX_LEN]; N_DIMS],
        }
    }

    /// Flatten row-major (the NN branch input order).
    pub fn flat(&self) -> [f64; N_DIMS * MATRIX_LEN] {
        let mut out = [0.0; N_DIMS * MATRIX_LEN];
        for (d, row) in self.rows.iter().enumerate() {
            out[d * MATRIX_LEN..(d + 1) * MATRIX_LEN].copy_from_slice(row);
        }
        out
    }

    /// One row as a slice.
    pub fn row(&self, d: usize) -> &[f64; MATRIX_LEN] {
        &self.rows[d]
    }
}

/// Rolling tracker that maintains the state matrix across a user's
/// playback history (short-term video state + long-term engagement state,
/// persisted across sessions by LingXi's state management).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct UserStateTracker {
    bitrates: Vec<f64>,
    throughputs: Vec<f64>,
    /// Durations of the last stalls (seconds).
    stall_times: Vec<f64>,
    /// Wall-clock gaps between consecutive stalls (seconds).
    stall_intervals: Vec<f64>,
    /// Gaps between a stall and the next stall-triggered exit (seconds).
    stall_exit_intervals: Vec<f64>,
    /// Wall time of the last stall (for interval computation).
    last_stall_at: Option<f64>,
    /// Global wall-clock across sessions (seconds).
    clock: f64,
}

impl UserStateTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one played segment.
    pub fn push_segment(&mut self, bitrate_kbps: f64, throughput_kbps: f64, duration: f64) {
        push_bounded(&mut self.bitrates, bitrate_kbps, MATRIX_LEN);
        push_bounded(&mut self.throughputs, throughput_kbps, MATRIX_LEN);
        self.clock += duration;
    }

    /// Record a stall event of `duration` seconds.
    pub fn push_stall(&mut self, duration: f64) {
        push_bounded(&mut self.stall_times, duration, MATRIX_LEN);
        if let Some(prev) = self.last_stall_at {
            push_bounded(&mut self.stall_intervals, self.clock - prev, MATRIX_LEN);
        }
        self.last_stall_at = Some(self.clock);
        self.clock += duration;
    }

    /// Record that the user exited following a stall.
    pub fn push_stall_exit(&mut self) {
        if let Some(at) = self.last_stall_at {
            push_bounded(
                &mut self.stall_exit_intervals,
                (self.clock - at).max(0.0),
                MATRIX_LEN,
            );
        }
    }

    /// Advance the engagement clock without playback (between sessions).
    pub fn advance_clock(&mut self, seconds: f64) {
        self.clock += seconds.max(0.0);
    }

    /// Total stalls remembered (bounded by the window).
    pub fn recent_stall_count(&self) -> usize {
        self.stall_times.len()
    }

    /// Build the normalised state matrix (most recent sample last).
    pub fn matrix(&self) -> StateMatrix {
        let mut m = StateMatrix::zeros();
        fill_row(&mut m.rows[0], &self.bitrates, BITRATE_SCALE);
        fill_row(&mut m.rows[1], &self.throughputs, TPUT_SCALE);
        fill_row(&mut m.rows[2], &self.stall_times, STALL_SCALE);
        fill_row(&mut m.rows[3], &self.stall_intervals, INTERVAL_SCALE);
        fill_row(&mut m.rows[4], &self.stall_exit_intervals, INTERVAL_SCALE);
        m
    }
}

/// The raw persisted fields of a [`UserStateTracker`] — the wire view used
/// by binary persistence codecs (`lingxi_core::binlog`), which cannot rely
/// on serde and must round-trip every field bit-exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackerParts {
    /// Bitrates of the last played segments (kbps), oldest first.
    pub bitrates: Vec<f64>,
    /// Throughputs of the last played segments (kbps), oldest first.
    pub throughputs: Vec<f64>,
    /// Durations of the last stalls (seconds), oldest first.
    pub stall_times: Vec<f64>,
    /// Wall-clock gaps between consecutive stalls (seconds).
    pub stall_intervals: Vec<f64>,
    /// Gaps between a stall and the next stall-triggered exit (seconds).
    pub stall_exit_intervals: Vec<f64>,
    /// Wall time of the last stall (for interval computation).
    pub last_stall_at: Option<f64>,
    /// Global wall-clock across sessions (seconds).
    pub clock: f64,
}

impl UserStateTracker {
    /// Decompose into raw persisted fields (clones the windows).
    pub fn to_parts(&self) -> TrackerParts {
        TrackerParts {
            bitrates: self.bitrates.clone(),
            throughputs: self.throughputs.clone(),
            stall_times: self.stall_times.clone(),
            stall_intervals: self.stall_intervals.clone(),
            stall_exit_intervals: self.stall_exit_intervals.clone(),
            last_stall_at: self.last_stall_at,
            clock: self.clock,
        }
    }

    /// Rebuild a tracker from raw persisted fields. The inverse of
    /// [`UserStateTracker::to_parts`]: `from_parts(t.to_parts()) == t`
    /// bit-exactly, for any tracker.
    pub fn from_parts(parts: TrackerParts) -> Self {
        Self {
            bitrates: parts.bitrates,
            throughputs: parts.throughputs,
            stall_times: parts.stall_times,
            stall_intervals: parts.stall_intervals,
            stall_exit_intervals: parts.stall_exit_intervals,
            last_stall_at: parts.last_stall_at,
            clock: parts.clock,
        }
    }
}

fn push_bounded(v: &mut Vec<f64>, x: f64, cap: usize) {
    if v.len() == cap {
        v.remove(0);
    }
    v.push(x);
}

fn fill_row(row: &mut [f64; MATRIX_LEN], src: &[f64], scale: f64) {
    // Right-align: latest observation in the last slot, zeros pad the left.
    let n = src.len().min(MATRIX_LEN);
    for (i, &x) in src[src.len() - n..].iter().enumerate() {
        row[MATRIX_LEN - n + i] = (x / scale).clamp(0.0, 3.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_is_zero() {
        let t = UserStateTracker::new();
        let m = t.matrix();
        assert!(m.flat().iter().all(|&x| x == 0.0));
        assert_eq!(t.recent_stall_count(), 0);
    }

    #[test]
    fn segments_fill_right_aligned() {
        let mut t = UserStateTracker::new();
        t.push_segment(1000.0, 5000.0, 2.0);
        t.push_segment(2000.0, 6000.0, 2.0);
        let m = t.matrix();
        // Last two slots of row 0 hold the bitrates.
        assert!((m.rows[0][7] - 2000.0 / 5000.0).abs() < 1e-12);
        assert!((m.rows[0][6] - 1000.0 / 5000.0).abs() < 1e-12);
        assert_eq!(m.rows[0][0], 0.0);
        assert!((m.rows[1][7] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn windows_bounded_to_eight() {
        let mut t = UserStateTracker::new();
        for i in 0..20 {
            t.push_segment(100.0 * i as f64, 1000.0, 2.0);
        }
        let m = t.matrix();
        // Oldest remembered segment is i=12.
        assert!((m.rows[0][0] - 1200.0 / 5000.0).abs() < 1e-12);
        assert!((m.rows[0][7] - 1900.0 / 5000.0).abs() < 1e-12);
    }

    #[test]
    fn stall_intervals_computed() {
        let mut t = UserStateTracker::new();
        t.push_segment(1000.0, 5000.0, 2.0); // clock=2
        t.push_stall(1.0); // stall at 2, clock=3
        t.push_segment(1000.0, 5000.0, 2.0); // clock=5
        t.push_segment(1000.0, 5000.0, 2.0); // clock=7
        t.push_stall(2.0); // stall at 7 → interval 5
        let m = t.matrix();
        assert!((m.rows[2][7] - 2.0 / 10.0).abs() < 1e-12);
        assert!((m.rows[2][6] - 1.0 / 10.0).abs() < 1e-12);
        assert!((m.rows[3][7] - 5.0 / 120.0).abs() < 1e-12);
        assert_eq!(t.recent_stall_count(), 2);
    }

    #[test]
    fn stall_exit_interval_recorded() {
        let mut t = UserStateTracker::new();
        t.push_segment(1000.0, 5000.0, 2.0);
        t.push_stall(1.5); // at clock=2
        t.push_segment(1000.0, 5000.0, 2.0); // clock=5.5
        t.push_stall_exit(); // interval = 5.5 - 2 = 3.5
        let m = t.matrix();
        assert!((m.rows[4][7] - 3.5 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn exit_without_stall_is_noop() {
        let mut t = UserStateTracker::new();
        t.push_segment(1000.0, 5000.0, 2.0);
        t.push_stall_exit();
        let m = t.matrix();
        assert!(m.rows[4].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn values_clamped() {
        let mut t = UserStateTracker::new();
        t.push_segment(1e9, 1e9, 2.0);
        t.push_stall(1e6);
        let m = t.matrix();
        assert!(m.flat().iter().all(|&x| x <= 3.0));
    }

    #[test]
    fn flat_layout_row_major() {
        let mut t = UserStateTracker::new();
        t.push_segment(5000.0, 10_000.0, 2.0);
        let f = t.matrix().flat();
        assert_eq!(f.len(), 40);
        assert!((f[7] - 1.0).abs() < 1e-12); // bitrate row end
        assert!((f[15] - 1.0).abs() < 1e-12); // throughput row end
    }
}
