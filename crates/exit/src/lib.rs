//! The exit-rate predictor (paper §3.3) and its data pipeline.
//!
//! The predictor is *hybrid* (Eq. 4): a personalized neural network handles
//! stall responses (the 1e-1 effect that is learnable per user), while
//! overall statistics (OS) handle video quality and smoothness (1e-3 and
//! 1e-2 effects that per-user noise would swamp — Takeaway 1):
//!
//! ```text
//! R_exit = NN(stall) + OS(quality, smoothness)   if the segment stalled
//! R_exit = OS(quality, smoothness)               otherwise
//! ```
//!
//! The NN consumes a 5×8 state matrix — bitrate, throughput, past stall
//! times, stall intervals, stall→exit intervals, each of length 8 — through
//! five per-row 1-D convolutions (kernel 4, 64 channels), a merge, an
//! FC-64 and an FC-2 softmax head (Fig. 7), trained with cross-entropy on
//! balanced-undersampled stall events (§3.3 "Dataset and Preprocessing").
//!
//! ```
//! use lingxi_exit::UserStateTracker;
//!
//! // The tracker turns live playback into the 5×8 state matrix the
//! // predictor consumes (§3.3).
//! let mut tracker = UserStateTracker::new();
//! tracker.push_segment(800.0, 1500.0, 2.0);
//! tracker.push_stall(2.5);
//! assert_eq!(tracker.recent_stall_count(), 1);
//! let matrix = tracker.matrix();
//! assert_eq!(matrix.rows.len(), lingxi_exit::N_DIMS);
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod features;
pub mod hybrid;
pub mod model;

pub use dataset::{DatasetFlavor, ExitDataset, ExitEntry};
pub use features::{StateMatrix, TrackerParts, UserStateTracker, MATRIX_LEN, N_DIMS};
pub use hybrid::{HybridPredictor, OsTable};
pub use model::{EvalReport, ExitPredictor, PredictorConfig};

/// Errors from the predictor pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ExitError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// The dataset is unusable (empty / single class).
    BadDataset(String),
}

impl std::fmt::Display for ExitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExitError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            ExitError::BadDataset(m) => write!(f, "bad dataset: {m}"),
        }
    }
}

impl std::error::Error for ExitError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ExitError>;
