//! The hybrid predictor of Eq. 4: personalized NN for stalls + overall
//! statistics (OS) for quality and smoothness.

use lingxi_media::QualityTier;
use serde::{Deserialize, Serialize};

use crate::features::StateMatrix;
use crate::model::ExitPredictor;
use crate::{ExitError, Result};

/// Overall-statistics table: empirical exit rates by quality tier and
/// switch bucket, fitted by counting over the whole population (the effects
/// too small for per-user modelling — Takeaway 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsTable {
    /// Base exit rate per segment with no switch, per tier (LD..FullHD).
    tier_rates: [f64; 4],
    /// Additional rate per switch granularity bucket: index 0 holds
    /// granularity −2 (or lower), then −1, +1, +2 (or higher). No-switch
    /// contributes nothing.
    switch_rates: [f64; 4],
    /// Observations absorbed.
    n: u64,
}

impl OsTable {
    fn tier_idx(tier: QualityTier) -> usize {
        match tier {
            QualityTier::Ld => 0,
            QualityTier::Sd => 1,
            QualityTier::Hd => 2,
            QualityTier::FullHd => 3,
        }
    }

    fn switch_idx(granularity: i64) -> Option<usize> {
        match granularity {
            g if g <= -2 => Some(0),
            -1 => Some(1),
            1 => Some(2),
            g if g >= 2 => Some(3),
            _ => None,
        }
    }

    /// Fit from observations: `(tier, switch granularity, exited)`.
    pub fn fit(observations: &[(QualityTier, i64, bool)]) -> Result<Self> {
        if observations.is_empty() {
            return Err(ExitError::BadDataset("no OS observations".into()));
        }
        let mut tier_counts = [[0u64; 2]; 4]; // [tier][exited]
        let mut switch_counts = [[0u64; 2]; 4];
        for &(tier, gran, exited) in observations {
            match Self::switch_idx(gran) {
                // Switch observations feed the switch buckets; tier base
                // rates come from switch-free segments only, so the two
                // effects stay separable.
                Some(s) => switch_counts[s][usize::from(exited)] += 1,
                None => tier_counts[Self::tier_idx(tier)][usize::from(exited)] += 1,
            }
        }
        let mut tier_rates = [0.0; 4];
        let mut total_rate = 0.0;
        let mut tiers_seen = 0.0;
        for (t, counts) in tier_counts.iter().enumerate() {
            let n = counts[0] + counts[1];
            if n > 0 {
                tier_rates[t] = counts[1] as f64 / n as f64;
                total_rate += tier_rates[t];
                tiers_seen += 1.0;
            }
        }
        // Unseen tiers fall back to the mean observed rate.
        let fallback = if tiers_seen > 0.0 {
            total_rate / tiers_seen
        } else {
            0.0
        };
        for r in tier_rates.iter_mut() {
            if *r == 0.0 && fallback > 0.0 {
                *r = fallback;
            }
        }
        // Switch rates are *excess* over the tier baseline; clamp at 0.
        let mut switch_rates = [0.0; 4];
        for (s, counts) in switch_counts.iter().enumerate() {
            let n = counts[0] + counts[1];
            if n > 0 {
                let rate = counts[1] as f64 / n as f64;
                switch_rates[s] = (rate - fallback).max(0.0);
            }
        }
        Ok(Self {
            tier_rates,
            switch_rates,
            n: observations.len() as u64,
        })
    }

    /// Expected exit rate from quality/smoothness alone.
    pub fn rate(&self, tier: QualityTier, switch_granularity: i64) -> f64 {
        let base = self.tier_rates[Self::tier_idx(tier)];
        let extra = Self::switch_idx(switch_granularity)
            .map(|s| self.switch_rates[s])
            .unwrap_or(0.0);
        (base + extra).clamp(0.0, 1.0)
    }

    /// Observations used for the fit.
    pub fn observations(&self) -> u64 {
        self.n
    }
}

/// The Eq. 4 hybrid: `NN(stall) + OS(quality, smoothness)` when the segment
/// stalled, `OS(...)` otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridPredictor {
    /// The stall-specialist network.
    pub nn: ExitPredictor,
    /// The population statistics table.
    pub os: OsTable,
    /// Weight of the NN term (1.0 = paper's plain sum; kept explicit so the
    /// ablation bench can sweep it).
    pub nn_weight: f64,
}

impl HybridPredictor {
    /// Standard hybrid (weight 1).
    pub fn new(nn: ExitPredictor, os: OsTable) -> Self {
        Self {
            nn,
            os,
            nn_weight: 1.0,
        }
    }

    /// Predict the segment-level exit rate.
    ///
    /// `stalled` says whether the *current* segment carried a stall; `tier`
    /// and `switch_granularity` describe its quality context; `state` is
    /// the user-state matrix for the NN.
    pub fn predict(
        &mut self,
        state: &StateMatrix,
        stalled: bool,
        tier: QualityTier,
        switch_granularity: i64,
    ) -> f64 {
        let os = self.os.rate(tier, switch_granularity);
        if stalled {
            (self.nn_weight * self.nn.predict(state) + os).clamp(0.0, 1.0)
        } else {
            os
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PredictorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observations() -> Vec<(QualityTier, i64, bool)> {
        let mut v = Vec::new();
        // LD: 3% exit; SD 2.5%; HD 2.2%; FullHD 2.1% (Fig. 4a shape).
        let spec = [
            (QualityTier::Ld, 30),
            (QualityTier::Sd, 25),
            (QualityTier::Hd, 22),
            (QualityTier::FullHd, 21),
        ];
        for (tier, exits_per_k) in spec {
            for i in 0..1000 {
                v.push((tier, 0, i < exits_per_k));
            }
        }
        // Switches: downward worse.
        for i in 0..500 {
            v.push((QualityTier::Hd, -1, i < 20)); // 4%
            v.push((QualityTier::Hd, 1, i < 17)); // 3.4%
        }
        v
    }

    #[test]
    fn os_table_recovers_rates() {
        let os = OsTable::fit(&observations()).unwrap();
        assert!((os.rate(QualityTier::Ld, 0) - 0.030).abs() < 1e-9);
        assert!((os.rate(QualityTier::FullHd, 0) - 0.021).abs() < 1e-9);
        // Monotone decreasing with tier.
        assert!(os.rate(QualityTier::Ld, 0) > os.rate(QualityTier::Sd, 0));
        assert!(os.rate(QualityTier::Sd, 0) > os.rate(QualityTier::Hd, 0));
        // Switches add on top; downward more.
        assert!(os.rate(QualityTier::Hd, -1) > os.rate(QualityTier::Hd, 0));
        assert!(os.rate(QualityTier::Hd, -1) > os.rate(QualityTier::Hd, 1));
        assert!(os.observations() > 0);
    }

    #[test]
    fn os_table_empty_errors() {
        assert!(OsTable::fit(&[]).is_err());
    }

    #[test]
    fn os_unseen_bucket_falls_back() {
        // Only LD data; other tiers should fall back to the mean, not 0.
        let obs: Vec<(QualityTier, i64, bool)> =
            (0..100).map(|i| (QualityTier::Ld, 0, i < 5)).collect();
        let os = OsTable::fit(&obs).unwrap();
        assert!(os.rate(QualityTier::FullHd, 0) > 0.0);
    }

    #[test]
    fn hybrid_adds_nn_only_on_stall() {
        let mut rng = StdRng::seed_from_u64(1);
        let nn = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        let os = OsTable::fit(&observations()).unwrap();
        let mut h = HybridPredictor::new(nn, os);
        let state = StateMatrix::zeros();
        let p_quiet = h.predict(&state, false, QualityTier::Hd, 0);
        let p_stall = h.predict(&state, true, QualityTier::Hd, 0);
        assert!((p_quiet - h.os.rate(QualityTier::Hd, 0)).abs() < 1e-12);
        assert!(p_stall > p_quiet, "stall path must add the NN term");
        assert!(p_stall <= 1.0);
    }

    #[test]
    fn nn_weight_zero_disables_nn_term() {
        let mut rng = StdRng::seed_from_u64(2);
        let nn = ExitPredictor::new(PredictorConfig::small(), &mut rng).unwrap();
        let os = OsTable::fit(&observations()).unwrap();
        let mut h = HybridPredictor::new(nn, os);
        h.nn_weight = 0.0;
        let state = StateMatrix::zeros();
        let p_stall = h.predict(&state, true, QualityTier::Hd, 0);
        assert!((p_stall - h.os.rate(QualityTier::Hd, 0)).abs() < 1e-12);
    }
}
