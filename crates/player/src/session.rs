//! Generic session driver coupling a video, a bandwidth trace, an ABR
//! decision function and a user exit model.
//!
//! The ABR and the user model are injected as closures so this crate stays
//! below both `lingxi-abr` and `lingxi-user` in the dependency graph; those
//! crates provide adapters that wrap their richer trait objects into these
//! closures.

use lingxi_media::{BitrateLadder, Video};
use lingxi_net::BandwidthTrace;
use rand::Rng;

use crate::config::PlayerConfig;
use crate::env::PlayerEnv;
use crate::log::{SegmentRecord, SessionEnd, SessionLog};
use crate::Result;

/// Everything needed to play one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionSetup<'a> {
    /// Owner of the session.
    pub user_id: u64,
    /// The video being played.
    pub video: &'a Video,
    /// The bitrate ladder of the catalog.
    pub ladder: &'a BitrateLadder,
    /// Bandwidth timeline.
    pub trace: &'a BandwidthTrace,
    /// Player configuration.
    pub config: PlayerConfig,
}

/// The user model's verdict after each segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitDecision {
    /// Keep watching.
    Continue,
    /// Leave the video now.
    Exit,
}

/// Play one full session.
///
/// - `select(env)` returns the level for the next segment (clamped into the
///   ladder);
/// - `exit(env, record, rng)` is consulted *after every segment* — the
///   segment-level exit behaviour §2.2 measures.
///
/// On completion the session's watch time is the full video duration (the
/// tail of the buffer plays out); on exit it is the playback position when
/// the decision fired.
pub fn run_session<F, G, R>(
    setup: &SessionSetup<'_>,
    mut select: F,
    mut exit: G,
    rng: &mut R,
) -> Result<SessionLog>
where
    F: FnMut(&PlayerEnv) -> usize,
    G: FnMut(&PlayerEnv, &SegmentRecord, &mut R) -> ExitDecision,
    R: Rng + ?Sized,
{
    let mut env = PlayerEnv::new(setup.config)?;
    let n_segments = setup.video.n_segments();
    let seg_duration = setup.video.sizes.segment_duration();
    let mut segments = Vec::with_capacity(n_segments);
    let mut end = SessionEnd::Completed;
    let mut exit_segment = None;

    for k in 0..n_segments {
        let wanted = select(&env);
        let level = wanted.min(setup.ladder.top_level());
        let size = setup
            .video
            .sizes
            .size_kbits(k, level)
            .expect("segment and level verified in range");
        // Effective throughput over this download, integrated on the trace.
        let dl = setup.trace.download_time(env.wall_time(), size);
        let bandwidth = if dl > 0.0 {
            size / dl
        } else {
            setup.trace.at(env.wall_time())
        };
        let switched_from = env.last_level();
        let outcome = env.step(size, level, bandwidth, seg_duration, rng)?;
        let bitrate = setup.ladder.bitrate(level).expect("level clamped");
        let record = env.record(&outcome, level, bitrate, size, switched_from);
        segments.push(record);
        if exit(&env, &record, rng) == ExitDecision::Exit {
            end = SessionEnd::Exited;
            exit_segment = Some(k);
            break;
        }
    }

    let video_duration = setup.video.duration();
    // Watch time is content-based: the exit decision fires after the user
    // has experienced segment k, so they watched (k+1)·L seconds of
    // content. (Wall-clock playback position would under-credit sessions
    // holding deeper buffers, biasing comparisons between ABR policies.)
    let watch_time = match (end, exit_segment) {
        (SessionEnd::Completed, _) => video_duration,
        (_, Some(k)) => ((k + 1) as f64 * seg_duration).min(video_duration),
        (_, None) => env.playback_time().min(video_duration),
    };

    Ok(SessionLog {
        user_id: setup.user_id,
        video_id: setup.video.id,
        video_duration,
        segments,
        watch_time,
        end,
        exit_segment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{Catalog, CatalogConfig, VbrModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig {
                n_videos: 3,
                vbr: VbrModel::cbr(),
                ..CatalogConfig::default()
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn completed_session_watches_everything() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            trace: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let log = run_session(&setup, |_| 3, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert_eq!(log.end, SessionEnd::Completed);
        assert_eq!(log.watch_time, log.video_duration);
        assert_eq!(log.segments.len(), setup.video.n_segments());
        assert!(log.completed());
        // Fat pipe: at most the startup stall.
        assert!(log.stall_count() <= 1);
    }

    #[test]
    fn exit_stops_session_early() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            trace: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let log = run_session(
            &setup,
            |_| 0,
            |env, _, _| {
                if env.segment_index() >= 3 {
                    ExitDecision::Exit
                } else {
                    ExitDecision::Continue
                }
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(log.end, SessionEnd::Exited);
        assert_eq!(log.segments.len(), 3);
        assert_eq!(log.exit_segment, Some(2));
        assert!(log.watch_time < log.video_duration);
    }

    #[test]
    fn slow_link_generates_stalls() {
        let cat = catalog();
        // 350 kbps ladder floor vs 200 kbps link: guaranteed stalls.
        let trace = BandwidthTrace::constant(200.0, 1000, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(1),
            ladder: cat.ladder(),
            trace: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let log = run_session(&setup, |_| 0, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert!(log.total_stall() > 0.0);
        assert!(log.stall_count() > 1);
    }

    #[test]
    fn out_of_range_level_clamped() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(2),
            ladder: cat.ladder(),
            trace: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let log = run_session(&setup, |_| 99, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert!(log.segments.iter().all(|s| s.level == 3));
    }

    #[test]
    fn abr_sees_player_state() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(5000.0, 1000, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            trace: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(6);
        // Simple buffer-based rule exercising env accessors.
        let log = run_session(
            &setup,
            |env| {
                if env.buffer() > 6.0 {
                    3
                } else if env.buffer() > 3.0 {
                    2
                } else {
                    0
                }
            },
            |_, _, _| ExitDecision::Continue,
            &mut rng,
        )
        .unwrap();
        // Rule starts conservative then climbs.
        assert_eq!(log.segments[0].level, 0);
        assert!(log.segments.iter().any(|s| s.level > 0));
    }
}
