//! Generic session driver coupling a video, a bandwidth process, an ABR
//! decision function and a user exit model.
//!
//! The ABR and the user model are injected as closures so this crate stays
//! below both `lingxi-abr` and `lingxi-user` in the dependency graph; those
//! crates provide adapters that wrap their richer trait objects into these
//! closures.
//!
//! Two layers: [`SessionStream`] is a resumable per-segment stepper —
//! *request* the next download, *complete* it with whatever duration the
//! bandwidth process produced — and [`run_session`] is the linear driver
//! that plays a stream against one [`BandwidthProcess`] start to finish.
//! The fleet engine's contention kernel drives many streams concurrently
//! over a shared link, interleaving their requests in virtual time.

use lingxi_media::{BitrateLadder, Video};
use lingxi_net::{BandwidthProcess, Download};
use rand::Rng;

use crate::config::PlayerConfig;
use crate::env::PlayerEnv;
use crate::log::{SegmentRecord, SessionEnd, SessionLog};
use crate::{PlayerError, Result};

/// Everything needed to play one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionSetup<'a> {
    /// Owner of the session.
    pub user_id: u64,
    /// The video being played.
    pub video: &'a Video,
    /// The bitrate ladder of the catalog.
    pub ladder: &'a BitrateLadder,
    /// Bandwidth source the downloads stream over (a trace, a sampled
    /// model, or a shared link).
    pub process: &'a dyn BandwidthProcess,
    /// Player configuration.
    pub config: PlayerConfig,
}

/// The user model's verdict after each segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitDecision {
    /// Keep watching.
    Continue,
    /// Leave the video now.
    Exit,
}

/// One segment download a session wants to issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentRequest {
    /// Session-local wall-clock time the request is issued (seconds).
    pub at: f64,
    /// Size requested, in kbits.
    pub size_kbits: f64,
    /// Ladder level selected for the segment.
    pub level: usize,
}

/// Content-based watch time of a session.
///
/// The exit decision fires after the user has experienced segment `k`, so
/// they watched `(k+1)·L` seconds of content. (Wall-clock playback
/// position would under-credit sessions holding deeper buffers, biasing
/// comparisons between ABR policies.) Shared by [`SessionStream::finish`]
/// and `lingxi_core`'s managed-session finalizer so the two paths cannot
/// drift.
pub fn content_watch_time(
    end: SessionEnd,
    exit_segment: Option<usize>,
    segment_duration: f64,
    video_duration: f64,
    playback_time: f64,
) -> f64 {
    match (end, exit_segment) {
        (SessionEnd::Completed, _) => video_duration,
        (_, Some(k)) => ((k + 1) as f64 * segment_duration).min(video_duration),
        (_, None) => playback_time.min(video_duration),
    }
}

/// A session as a resumable per-segment state machine.
///
/// Alternate [`SessionStream::next_request`] (which runs the ABR and
/// announces the next download) with [`SessionStream::complete`] (which
/// applies the download's outcome to the player and consults the exit
/// model), then call [`SessionStream::finish`] for the log. The linear
/// driver [`run_session`] is exactly this loop against one bandwidth
/// process; the fleet contention kernel interleaves many streams on a
/// shared link.
#[derive(Debug)]
pub struct SessionStream<'a> {
    user_id: u64,
    video: &'a Video,
    ladder: &'a BitrateLadder,
    env: PlayerEnv,
    pending: Option<(usize, f64)>,
    segments: Vec<SegmentRecord>,
    end: SessionEnd,
    exit_segment: Option<usize>,
    finished: bool,
}

impl<'a> SessionStream<'a> {
    /// Start a session.
    pub fn new(
        user_id: u64,
        video: &'a Video,
        ladder: &'a BitrateLadder,
        config: PlayerConfig,
    ) -> Result<Self> {
        Ok(Self {
            user_id,
            video,
            ladder,
            env: PlayerEnv::new(config)?,
            pending: None,
            segments: Vec::with_capacity(video.n_segments()),
            end: SessionEnd::Completed,
            exit_segment: None,
            finished: false,
        })
    }

    /// The live player state (what ABRs and exit models observe).
    pub fn env(&self) -> &PlayerEnv {
        &self.env
    }

    /// Select the next segment via `select` and return its download
    /// request; `None` once the video is fully downloaded or the user
    /// exited.
    pub fn next_request<F>(&mut self, mut select: F) -> Option<SegmentRequest>
    where
        F: FnMut(&PlayerEnv) -> usize,
    {
        if self.finished || self.env.segment_index() >= self.video.n_segments() {
            self.finished = true;
            return None;
        }
        let wanted = select(&self.env);
        let level = wanted.min(self.ladder.top_level());
        let size = self
            .video
            .sizes
            .size_kbits(self.env.segment_index(), level)
            .expect("segment and level verified in range");
        self.pending = Some((level, size));
        Some(SegmentRequest {
            at: self.env.wall_time(),
            size_kbits: size,
            level,
        })
    }

    /// Apply a completed download to the player, record the segment and
    /// consult `exit`. Returns `false` once the session is over (user
    /// exited); calling without a pending request is an error.
    pub fn complete<G, R>(&mut self, download: Download, mut exit: G, rng: &mut R) -> Result<bool>
    where
        G: FnMut(&PlayerEnv, &SegmentRecord, &mut R) -> ExitDecision,
        R: Rng + ?Sized,
    {
        let (level, size) = self.pending.take().ok_or_else(|| {
            PlayerError::InvalidStep("complete() without a pending request".into())
        })?;
        // Effective throughput over this download, as the process saw it.
        let bandwidth = download.kbps;
        let seg_duration = self.video.sizes.segment_duration();
        let switched_from = self.env.last_level();
        let outcome = self.env.step(size, level, bandwidth, seg_duration, rng)?;
        let bitrate = self.ladder.bitrate(level).expect("level clamped");
        let record = self
            .env
            .record(&outcome, level, bitrate, size, switched_from);
        self.segments.push(record);
        if exit(&self.env, &record, rng) == ExitDecision::Exit {
            self.end = SessionEnd::Exited;
            self.exit_segment = Some(self.env.segment_index() - 1);
            self.finished = true;
            return Ok(false);
        }
        Ok(true)
    }

    /// Close the session and build its log.
    pub fn finish(self) -> SessionLog {
        let video_duration = self.video.duration();
        let seg_duration = self.video.sizes.segment_duration();
        let watch_time = content_watch_time(
            self.end,
            self.exit_segment,
            seg_duration,
            video_duration,
            self.env.playback_time(),
        );
        SessionLog {
            user_id: self.user_id,
            video_id: self.video.id,
            video_duration,
            segments: self.segments,
            watch_time,
            end: self.end,
            exit_segment: self.exit_segment,
        }
    }
}

/// Play one full session over `setup.process`.
///
/// - `select(env)` returns the level for the next segment (clamped into the
///   ladder);
/// - `exit(env, record, rng)` is consulted *after every segment* — the
///   segment-level exit behaviour §2.2 measures.
///
/// On completion the session's watch time is the full video duration (the
/// tail of the buffer plays out); on exit it is the playback position when
/// the decision fired.
pub fn run_session<F, G, R>(
    setup: &SessionSetup<'_>,
    mut select: F,
    mut exit: G,
    rng: &mut R,
) -> Result<SessionLog>
where
    F: FnMut(&PlayerEnv) -> usize,
    G: FnMut(&PlayerEnv, &SegmentRecord, &mut R) -> ExitDecision,
    R: Rng + ?Sized,
{
    let mut stream = SessionStream::new(setup.user_id, setup.video, setup.ladder, setup.config)?;
    while let Some(req) = stream.next_request(&mut select) {
        let download = setup.process.download(req.at, req.size_kbits);
        if !stream.complete(download, &mut exit, rng)? {
            break;
        }
    }
    Ok(stream.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::{Catalog, CatalogConfig, VbrModel};
    use lingxi_net::BandwidthTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            BitrateLadder::default_short_video(),
            &CatalogConfig {
                n_videos: 3,
                vbr: VbrModel::cbr(),
                ..CatalogConfig::default()
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn completed_session_watches_everything() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            process: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let log = run_session(&setup, |_| 3, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert_eq!(log.end, SessionEnd::Completed);
        assert_eq!(log.watch_time, log.video_duration);
        assert_eq!(log.segments.len(), setup.video.n_segments());
        assert!(log.completed());
        // Fat pipe: at most the startup stall.
        assert!(log.stall_count() <= 1);
    }

    #[test]
    fn exit_stops_session_early() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            process: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let log = run_session(
            &setup,
            |_| 0,
            |env, _, _| {
                if env.segment_index() >= 3 {
                    ExitDecision::Exit
                } else {
                    ExitDecision::Continue
                }
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(log.end, SessionEnd::Exited);
        assert_eq!(log.segments.len(), 3);
        assert_eq!(log.exit_segment, Some(2));
        assert!(log.watch_time < log.video_duration);
    }

    #[test]
    fn slow_link_generates_stalls() {
        let cat = catalog();
        // 350 kbps ladder floor vs 200 kbps link: guaranteed stalls.
        let trace = BandwidthTrace::constant(200.0, 1000, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(1),
            ladder: cat.ladder(),
            process: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let log = run_session(&setup, |_| 0, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert!(log.total_stall() > 0.0);
        assert!(log.stall_count() > 1);
    }

    #[test]
    fn out_of_range_level_clamped() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(50_000.0, 100, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(2),
            ladder: cat.ladder(),
            process: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let log = run_session(&setup, |_| 99, |_, _, _| ExitDecision::Continue, &mut rng).unwrap();
        assert!(log.segments.iter().all(|s| s.level == 3));
    }

    #[test]
    fn abr_sees_player_state() {
        let cat = catalog();
        let trace = BandwidthTrace::constant(5000.0, 1000, 1.0).unwrap();
        let setup = SessionSetup {
            user_id: 1,
            video: cat.video_cyclic(0),
            ladder: cat.ladder(),
            process: &trace,
            config: PlayerConfig::deterministic(10.0, 0.0),
        };
        let mut rng = StdRng::seed_from_u64(6);
        // Simple buffer-based rule exercising env accessors.
        let log = run_session(
            &setup,
            |env| {
                if env.buffer() > 6.0 {
                    3
                } else if env.buffer() > 3.0 {
                    2
                } else {
                    0
                }
            },
            |_, _, _| ExitDecision::Continue,
            &mut rng,
        )
        .unwrap();
        // Rule starts conservative then climbs.
        assert_eq!(log.segments[0].level, 0);
        assert!(log.segments.iter().any(|s| s.level > 0));
    }
}
