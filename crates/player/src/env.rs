//! The per-segment player environment implementing Eq. 3.

use std::collections::VecDeque;

use lingxi_stats::NormalDist;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::PlayerConfig;
use crate::log::SegmentRecord;
use crate::{PlayerError, Result};

/// One stall event: when it started (wall time) and how long it lasted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallEvent {
    /// Wall-clock time the stall began (seconds since session start).
    pub at: f64,
    /// Stall duration in seconds.
    pub duration: f64,
    /// Segment index being downloaded when the stall occurred.
    pub segment: usize,
}

/// Outcome of downloading + playing one segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentOutcome {
    /// Download time `d_k/C_k` (seconds).
    pub download_time: f64,
    /// Stall time `T_k` (seconds; 0 when the buffer covered the download).
    pub stall_time: f64,
    /// Waiting time `δt_k` (cap overflow wait + RTT).
    pub wait_time: f64,
    /// Buffer level after the update (seconds).
    pub buffer_after: f64,
    /// Observed download throughput (kbps).
    pub throughput_kbps: f64,
}

/// The player environment: buffer state, clocks and history.
///
/// Cloning an env forks the simulation — this is exactly how the
/// Monte-Carlo evaluator of Algorithm 2 seeds each rollout with the live
/// player state (`E_sim ← E_player`).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct PlayerEnv {
    config: PlayerConfig,
    /// Current playback buffer (seconds).
    buffer: f64,
    /// Wall-clock seconds since session start.
    wall_time: f64,
    /// Seconds of content played so far.
    playback_time: f64,
    /// Next segment index to download.
    segment_index: usize,
    /// Level chosen for the previous segment.
    last_level: Option<usize>,
    /// Recent observed throughputs (kbps), most recent last, bounded by
    /// `config.history_window`. A ring buffer: the steady-state
    /// push-newest/drop-oldest cycle is allocation-free.
    throughput_history: VecDeque<f64>,
    /// Recent levels, parallel to `throughput_history`.
    level_history: VecDeque<usize>,
    /// All stall events so far.
    stalls: Vec<StallEvent>,
    /// Cumulative stall seconds.
    total_stall: f64,
    /// Current `B_max` (seconds), refreshed via [`PlayerEnv::update_bmax`].
    bmax: f64,
    /// Startup (initial buffering) delay in seconds — tracked separately
    /// from rebuffer stalls, as production players do.
    startup_delay: f64,
}

impl Clone for PlayerEnv {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            buffer: self.buffer,
            wall_time: self.wall_time,
            playback_time: self.playback_time,
            segment_index: self.segment_index,
            last_level: self.last_level,
            throughput_history: self.throughput_history.clone(),
            level_history: self.level_history.clone(),
            stalls: self.stalls.clone(),
            total_stall: self.total_stall,
            bmax: self.bmax,
            startup_delay: self.startup_delay,
        }
    }

    /// Buffer-reusing fork: the Monte-Carlo evaluator re-seeds one scratch
    /// env from the live player once per rollout, so the histories' and
    /// stall log's allocations must survive the copy instead of being
    /// dropped and re-made thousands of times per optimization pass.
    fn clone_from(&mut self, source: &Self) {
        self.config = source.config;
        self.buffer = source.buffer;
        self.wall_time = source.wall_time;
        self.playback_time = source.playback_time;
        self.segment_index = source.segment_index;
        self.last_level = source.last_level;
        self.throughput_history
            .clone_from(&source.throughput_history);
        self.level_history.clone_from(&source.level_history);
        self.stalls.clone_from(&source.stalls);
        self.total_stall = source.total_stall;
        self.bmax = source.bmax;
        self.startup_delay = source.startup_delay;
    }
}

impl PlayerEnv {
    /// Fresh environment with an empty buffer.
    pub fn new(config: PlayerConfig) -> Result<Self> {
        config.validate()?;
        let bmax = match config.bmax {
            crate::config::BmaxPolicy::Fixed(c) => c,
            // Until we have observations, start from the weak-link cap.
            crate::config::BmaxPolicy::BandwidthAdaptive { cap_weak, .. } => cap_weak,
        };
        Ok(Self {
            config,
            buffer: 0.0,
            wall_time: 0.0,
            playback_time: 0.0,
            segment_index: 0,
            last_level: None,
            // One slot of headroom: `step` pushes before trimming, and a
            // ring at capacity never reallocates.
            throughput_history: VecDeque::with_capacity(config.history_window + 1),
            level_history: VecDeque::with_capacity(config.history_window + 1),
            stalls: Vec::new(),
            total_stall: 0.0,
            bmax,
            startup_delay: 0.0,
        })
    }

    /// Current buffer (seconds).
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    /// Wall-clock time (seconds).
    pub fn wall_time(&self) -> f64 {
        self.wall_time
    }

    /// Played content time (seconds).
    pub fn playback_time(&self) -> f64 {
        self.playback_time
    }

    /// Next segment index.
    pub fn segment_index(&self) -> usize {
        self.segment_index
    }

    /// Previous segment's level, if any.
    pub fn last_level(&self) -> Option<usize> {
        self.last_level
    }

    /// Recent throughputs (kbps), oldest first (ring buffer; index and
    /// iterate like a slice).
    pub fn throughput_history(&self) -> &VecDeque<f64> {
        &self.throughput_history
    }

    /// Recent levels, oldest first (parallel to throughputs).
    pub fn level_history(&self) -> &VecDeque<usize> {
        &self.level_history
    }

    /// All stall events.
    pub fn stalls(&self) -> &[StallEvent] {
        &self.stalls
    }

    /// Total stall seconds.
    pub fn total_stall(&self) -> f64 {
        self.total_stall
    }

    /// Stall count.
    pub fn stall_count(&self) -> usize {
        self.stalls.len()
    }

    /// Current buffer cap (seconds).
    pub fn bmax(&self) -> f64 {
        self.bmax
    }

    /// Startup (initial-buffering) delay in seconds.
    pub fn startup_delay(&self) -> f64 {
        self.startup_delay
    }

    /// Player configuration.
    pub fn config(&self) -> &PlayerConfig {
        &self.config
    }

    /// Fitted normal model of recent throughput (the `N(mu, sigma^2)` of
    /// Eq. 3), `None` until at least one download completed.
    pub fn bandwidth_model(&self) -> Option<NormalDist> {
        if self.throughput_history.is_empty() {
            return None;
        }
        // `fit_slices(front, back)` visits the deque's elements in the same
        // order as `fit_iter` over its iterator — bit-identical, minus the
        // counting pass and the wrap-checking cursor.
        let (front, back) = self.throughput_history.as_slices();
        NormalDist::fit_slices(front, back).ok()
    }

    /// Refresh `B_max` from the current bandwidth model (`B_max = f(N)`).
    pub fn update_bmax(&mut self) {
        // A fixed cap ignores the model, and `new` already pinned `bmax`
        // to it — fitting the history just to discard the result would be
        // pure per-step overhead.
        if matches!(self.config.bmax, crate::BmaxPolicy::Fixed(_)) {
            return;
        }
        if let Some(model) = self.bandwidth_model() {
            self.bmax = self.config.bmax.cap(&model);
        }
    }

    /// Execute one segment download of `size_kbits` at `level`, observing
    /// effective bandwidth `bandwidth_kbps`, with RTT drawn from the config.
    ///
    /// Implements Eq. 3 verbatim; also advances clocks and histories.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        size_kbits: f64,
        level: usize,
        bandwidth_kbps: f64,
        segment_duration: f64,
        rng: &mut R,
    ) -> Result<SegmentOutcome> {
        if !(bandwidth_kbps > 0.0) || !bandwidth_kbps.is_finite() {
            return Err(PlayerError::InvalidStep(format!(
                "bandwidth must be positive, got {bandwidth_kbps}"
            )));
        }
        if !(size_kbits > 0.0) || !size_kbits.is_finite() {
            return Err(PlayerError::InvalidStep(format!(
                "segment size must be positive, got {size_kbits}"
            )));
        }
        if !(segment_duration > 0.0) {
            return Err(PlayerError::InvalidStep(
                "segment duration must be positive".into(),
            ));
        }
        let rtt = self.config.rtt.sample(rng);
        let download_time = size_kbits / bandwidth_kbps;
        // Rebuffer stall: the part of the download the buffer couldn't
        // cover. The very first segment necessarily faces an empty buffer —
        // production players account that wait as *startup delay*, not a
        // stall (the paper's stall analyses concern rebuffering), so it is
        // tracked separately and excluded from stall events.
        let is_startup = self.segment_index == 0;
        let raw_wait = (download_time - self.buffer).max(0.0);
        let stall_time = if is_startup { 0.0 } else { raw_wait };
        if is_startup {
            self.startup_delay = raw_wait;
        }
        // Post-download buffer before waiting: [B_k − d/C]_+ + L.
        let after_download = (self.buffer - download_time).max(0.0) + segment_duration;
        // Waiting: overflow beyond B_max plus RTT (Eq. 3's δt_k).
        let overflow_wait = (after_download - self.bmax).max(0.0);
        let wait_time = overflow_wait + rtt;
        // Final buffer: [B' − δt]_+ clamped into [0, B_max].
        let buffer_after = (after_download - wait_time).max(0.0).min(self.bmax);

        // Advance clocks: wall time grows by download + wait; playback
        // advances by the wall time minus stall (content only plays while
        // not stalled), capped by available content.
        let wall_delta = download_time + wait_time;
        // Nothing plays while the buffer is empty (startup or rebuffer).
        let played = (wall_delta - raw_wait).max(0.0).min(
            // can't play more than what was buffered + this segment
            self.buffer + segment_duration,
        );
        if stall_time > 0.0 {
            self.stalls.push(StallEvent {
                at: self.wall_time + self.buffer, // stall begins when buffer empties
                duration: stall_time,
                segment: self.segment_index,
            });
            self.total_stall += stall_time;
        }
        self.wall_time += wall_delta;
        self.playback_time += played;
        self.buffer = buffer_after;
        self.segment_index += 1;
        self.last_level = Some(level);

        let throughput = bandwidth_kbps;
        self.throughput_history.push_back(throughput);
        self.level_history.push_back(level);
        if self.throughput_history.len() > self.config.history_window {
            self.throughput_history.pop_front();
            self.level_history.pop_front();
        }
        self.update_bmax();

        Ok(SegmentOutcome {
            download_time,
            stall_time,
            wait_time,
            buffer_after,
            throughput_kbps: throughput,
        })
    }

    /// Convenience: build a [`SegmentRecord`] out of a step.
    pub fn record(
        &self,
        outcome: &SegmentOutcome,
        level: usize,
        bitrate_kbps: f64,
        size_kbits: f64,
        switched_from: Option<usize>,
    ) -> SegmentRecord {
        SegmentRecord {
            index: self.segment_index - 1,
            level,
            bitrate_kbps,
            size_kbits,
            throughput_kbps: outcome.throughput_kbps,
            download_time: outcome.download_time,
            stall_time: outcome.stall_time,
            buffer_after: outcome.buffer_after,
            switched_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> PlayerEnv {
        PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap()
    }

    #[test]
    fn first_segment_counts_as_startup_not_stall() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(1);
        // 2000 kbits at 1000 kbps = 2 s download with empty buffer.
        let o = e.step(2000.0, 0, 1000.0, 2.0, &mut rng).unwrap();
        assert!((o.download_time - 2.0).abs() < 1e-9);
        assert_eq!(o.stall_time, 0.0, "startup wait is not a stall");
        assert!((e.startup_delay() - 2.0).abs() < 1e-9);
        assert!((o.buffer_after - 2.0).abs() < 1e-9);
        assert_eq!(e.stall_count(), 0);
        assert_eq!(e.segment_index(), 1);
        // A later slow segment IS a stall.
        let o2 = e.step(8000.0, 0, 1000.0, 2.0, &mut rng).unwrap();
        assert!(o2.stall_time > 0.0);
        assert_eq!(e.stall_count(), 1);
    }

    #[test]
    fn fast_link_builds_buffer_no_stall() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(2);
        // Tiny segments over a fat pipe: no rebuffer stalls at all (the
        // first segment's wait is startup delay).
        for k in 0..5 {
            let o = e.step(1000.0, 1, 50_000.0, 2.0, &mut rng).unwrap();
            assert_eq!(o.stall_time, 0.0, "segment {k} stalled");
        }
        // Buffer should approach 5 segments * 2 s minus tiny download times.
        assert!(e.buffer() > 9.0, "buffer {}", e.buffer());
        assert_eq!(e.stall_count(), 0);
        assert!(e.startup_delay() > 0.0);
    }

    #[test]
    fn buffer_capped_at_bmax() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            e.step(100.0, 0, 100_000.0, 2.0, &mut rng).unwrap();
        }
        assert!(e.buffer() <= 10.0 + 1e-9, "buffer {}", e.buffer());
    }

    #[test]
    fn slow_link_keeps_stalling() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(4);
        let mut stalls = 0;
        for _ in 0..10 {
            // 2 s of content taking 4 s to download: perpetual stall
            // (segment 0 is startup, the rest rebuffer).
            let o = e.step(4000.0, 0, 1000.0, 2.0, &mut rng).unwrap();
            if o.stall_time > 0.0 {
                stalls += 1;
            }
        }
        assert_eq!(stalls, 9);
        // Each rebuffering segment stalls 2 s (4 − 2 buffered).
        assert!(e.total_stall() > 17.0);
        assert!(e.startup_delay() > 3.9);
    }

    #[test]
    fn eq3_buffer_arithmetic_exact() {
        // Hand-computed case: B=3, d/C = 1.5, L=2, Bmax=10, RTT=0.
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(5);
        // Prime the buffer to exactly 3 s: download 1.5 segments instantly.
        e.buffer = 3.0;
        let o = e.step(1500.0, 0, 1000.0, 2.0, &mut rng).unwrap();
        // stall = max(1.5-3,0)=0 ; B' = (3-1.5)+2 = 3.5 ; wait = 0 ; B=3.5
        assert_eq!(o.stall_time, 0.0);
        assert!((o.buffer_after - 3.5).abs() < 1e-9);
    }

    #[test]
    fn overflow_wait_applies() {
        let mut e = PlayerEnv::new(PlayerConfig::deterministic(4.0, 0.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        e.buffer = 4.0; // full
        let o = e.step(100.0, 0, 100_000.0, 2.0, &mut rng).unwrap();
        // B' = (4 - 0.001) + 2 = 5.999 > Bmax=4 → wait 1.999, B=4.
        assert!(o.wait_time > 1.9);
        assert!((o.buffer_after - 4.0).abs() < 1e-6);
        assert_eq!(o.stall_time, 0.0);
    }

    #[test]
    fn histories_bounded_by_window() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..20 {
            e.step(1000.0, i % 3, 5000.0, 2.0, &mut rng).unwrap();
        }
        assert_eq!(e.throughput_history().len(), 8);
        assert_eq!(e.level_history().len(), 8);
        assert_eq!(e.last_level(), Some(19 % 3));
    }

    #[test]
    fn bandwidth_model_tracks_observations() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(e.bandwidth_model().is_none());
        for _ in 0..8 {
            e.step(1000.0, 0, 3000.0, 2.0, &mut rng).unwrap();
        }
        let m = e.bandwidth_model().unwrap();
        assert!((m.mu - 3000.0).abs() < 1e-6);
        assert!(m.sigma < 1e-6);
    }

    #[test]
    fn invalid_steps_rejected() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(e.step(1000.0, 0, 0.0, 2.0, &mut rng).is_err());
        assert!(e.step(0.0, 0, 1000.0, 2.0, &mut rng).is_err());
        assert!(e.step(1000.0, 0, 1000.0, 0.0, &mut rng).is_err());
        assert!(e.step(1000.0, 0, f64::NAN, 2.0, &mut rng).is_err());
    }

    #[test]
    fn clone_forks_simulation() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(10);
        e.step(1000.0, 0, 2000.0, 2.0, &mut rng).unwrap();
        let mut fork = e.clone();
        let mut rng2 = StdRng::seed_from_u64(11);
        fork.step(4000.0, 1, 500.0, 2.0, &mut rng2).unwrap();
        // Original untouched.
        assert_eq!(e.segment_index(), 1);
        assert_eq!(fork.segment_index(), 2);
        assert!(fork.total_stall() > e.total_stall());
    }

    #[test]
    fn adaptive_bmax_reacts_to_bandwidth() {
        let mut e = PlayerEnv::new(PlayerConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let initial = e.bmax();
        for _ in 0..8 {
            e.step(1000.0, 0, 40_000.0, 2.0, &mut rng).unwrap();
        }
        // Strong stable link → cap shrinks toward cap_strong.
        assert!(e.bmax() < initial, "bmax {} -> {}", initial, e.bmax());
    }
}
