//! Session logs: the per-segment trajectories every analysis in §2 of the
//! paper is computed from.
//!
//! Each production trajectory contains "user IDs, watch timestamps, total
//! video lengths, user watch time, and information regarding each video
//! segment, such as buffer size, bitrate levels, segment sizes, download
//! time, and stall time" — [`SessionLog`] carries exactly those fields.

use serde::{Deserialize, Serialize};

/// Per-segment record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Segment index within the video.
    pub index: usize,
    /// Chosen bitrate level.
    pub level: usize,
    /// Nominal bitrate of that level (kbps).
    pub bitrate_kbps: f64,
    /// Actual segment size (kilobits).
    pub size_kbits: f64,
    /// Observed download throughput (kbps).
    pub throughput_kbps: f64,
    /// Download time (seconds).
    pub download_time: f64,
    /// Stall time charged to this segment (seconds).
    pub stall_time: f64,
    /// Buffer after this segment's update (seconds).
    pub buffer_after: f64,
    /// The previous level if this segment switched quality.
    pub switched_from: Option<usize>,
}

impl SegmentRecord {
    /// Whether this segment changed quality relative to its predecessor.
    pub fn is_switch(&self) -> bool {
        self.switched_from.is_some_and(|f| f != self.level)
    }

    /// Signed switch granularity (`level - previous level`), 0 if none —
    /// the x-axis of Fig. 4(b).
    pub fn switch_granularity(&self) -> i64 {
        match self.switched_from {
            Some(f) => self.level as i64 - f as i64,
            None => 0,
        }
    }
}

/// Why a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEnd {
    /// Watched to the end of the video.
    Completed,
    /// The user-model exited mid-video.
    Exited,
    /// The driver hit its horizon (budget) before either of the above.
    Truncated,
}

/// A complete playback session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    /// User that played the session (0 when unowned).
    pub user_id: u64,
    /// Video identifier.
    pub video_id: u64,
    /// Total video duration (seconds).
    pub video_duration: f64,
    /// Per-segment records in playback order.
    pub segments: Vec<SegmentRecord>,
    /// Seconds of content actually watched.
    pub watch_time: f64,
    /// How the session ended.
    pub end: SessionEnd,
    /// Index of the segment after which the exit happened (when `end ==
    /// Exited`).
    pub exit_segment: Option<usize>,
}

impl SessionLog {
    /// Total stall seconds across the session.
    pub fn total_stall(&self) -> f64 {
        self.segments.iter().map(|s| s.stall_time).sum()
    }

    /// Number of stall events (segments with positive stall).
    pub fn stall_count(&self) -> usize {
        self.segments.iter().filter(|s| s.stall_time > 0.0).count()
    }

    /// Mean bitrate over downloaded segments (kbps); 0 for empty sessions.
    pub fn mean_bitrate(&self) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        self.segments.iter().map(|s| s.bitrate_kbps).sum::<f64>() / self.segments.len() as f64
    }

    /// Number of quality switches.
    pub fn switch_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_switch()).count()
    }

    /// Fraction of the video watched, in `[0, 1]`.
    pub fn completion_ratio(&self) -> f64 {
        if self.video_duration <= 0.0 {
            return 0.0;
        }
        (self.watch_time / self.video_duration).clamp(0.0, 1.0)
    }

    /// Whether the session completed the video — the numerator of §5.2's
    /// "video completion rate" metric.
    pub fn completed(&self) -> bool {
        self.end == SessionEnd::Completed
    }

    /// One-line summary used by metric aggregation.
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            user_id: self.user_id,
            watch_time: self.watch_time,
            total_stall: self.total_stall(),
            stall_count: self.stall_count(),
            mean_bitrate: self.mean_bitrate(),
            switch_count: self.switch_count(),
            completed: self.completed(),
            segments: self.segments.len(),
        }
    }
}

/// Aggregate numbers of one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Owner.
    pub user_id: u64,
    /// Seconds watched.
    pub watch_time: f64,
    /// Stall seconds.
    pub total_stall: f64,
    /// Stall events.
    pub stall_count: usize,
    /// Mean bitrate (kbps).
    pub mean_bitrate: f64,
    /// Quality switches.
    pub switch_count: usize,
    /// Watched to the end?
    pub completed: bool,
    /// Segments downloaded.
    pub segments: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(index: usize, level: usize, stall: f64, from: Option<usize>) -> SegmentRecord {
        SegmentRecord {
            index,
            level,
            bitrate_kbps: [350.0, 800.0, 1850.0, 4300.0][level],
            size_kbits: 1000.0,
            throughput_kbps: 2000.0,
            download_time: 0.5,
            stall_time: stall,
            buffer_after: 4.0,
            switched_from: from,
        }
    }

    fn log() -> SessionLog {
        SessionLog {
            user_id: 7,
            video_id: 1,
            video_duration: 10.0,
            segments: vec![
                seg(0, 1, 0.3, None),
                seg(1, 1, 0.0, Some(1)),
                seg(2, 2, 0.0, Some(1)),
                seg(3, 0, 1.2, Some(2)),
            ],
            watch_time: 8.0,
            end: SessionEnd::Exited,
            exit_segment: Some(3),
        }
    }

    #[test]
    fn aggregates() {
        let l = log();
        assert!((l.total_stall() - 1.5).abs() < 1e-12);
        assert_eq!(l.stall_count(), 2);
        assert_eq!(l.switch_count(), 2);
        assert!((l.mean_bitrate() - (800.0 + 800.0 + 1850.0 + 350.0) / 4.0).abs() < 1e-9);
        assert!((l.completion_ratio() - 0.8).abs() < 1e-12);
        assert!(!l.completed());
    }

    #[test]
    fn switch_granularity_signed() {
        let l = log();
        assert_eq!(l.segments[0].switch_granularity(), 0);
        assert_eq!(l.segments[2].switch_granularity(), 1);
        assert_eq!(l.segments[3].switch_granularity(), -2);
        assert!(!l.segments[1].is_switch());
        assert!(l.segments[3].is_switch());
    }

    #[test]
    fn summary_matches() {
        let l = log();
        let s = l.summary();
        assert_eq!(s.user_id, 7);
        assert_eq!(s.stall_count, 2);
        assert_eq!(s.segments, 4);
        assert!(!s.completed);
    }

    #[test]
    fn completion_ratio_edge_cases() {
        let mut l = log();
        l.video_duration = 0.0;
        assert_eq!(l.completion_ratio(), 0.0);
        l.video_duration = 5.0;
        l.watch_time = 50.0;
        assert_eq!(l.completion_ratio(), 1.0);
    }

    #[test]
    fn empty_session_mean_bitrate_zero() {
        let l = SessionLog {
            user_id: 0,
            video_id: 0,
            video_duration: 10.0,
            segments: vec![],
            watch_time: 0.0,
            end: SessionEnd::Truncated,
            exit_segment: None,
        };
        assert_eq!(l.mean_bitrate(), 0.0);
        assert_eq!(l.stall_count(), 0);
    }
}
