//! Player configuration: buffer cap policy and RTT.

use lingxi_net::RttModel;
use lingxi_stats::NormalDist;
use serde::{Deserialize, Serialize};

use crate::{PlayerError, Result};

/// How the buffer cap `B_max` adapts to the bandwidth model.
///
/// Eq. 3 writes `B_max = f(N(mu_Cpast, sigma^2_Cpast))`: production players
/// grow the prefetch window when the link is weak or bursty (insure against
/// stalls) and shrink it on strong stable links (avoid wasted downloads when
/// the user swipes away). [`BmaxPolicy::BandwidthAdaptive`] implements that
/// shape; [`BmaxPolicy::Fixed`] pins it for controlled experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BmaxPolicy {
    /// Constant cap in seconds.
    Fixed(f64),
    /// Interpolate between `cap_weak` (at/below `weak_kbps` of lower
    /// envelope μ−σ) and `cap_strong` (at/above `strong_kbps`).
    BandwidthAdaptive {
        /// Cap when the link's lower envelope is at or below `weak_kbps`.
        cap_weak: f64,
        /// Cap when the lower envelope is at or above `strong_kbps`.
        cap_strong: f64,
        /// Lower pivot (kbps).
        weak_kbps: f64,
        /// Upper pivot (kbps).
        strong_kbps: f64,
    },
}

impl BmaxPolicy {
    /// Production-like default: 14 s on weak links shrinking to 8 s on
    /// strong ones.
    pub fn default_adaptive() -> Self {
        BmaxPolicy::BandwidthAdaptive {
            cap_weak: 14.0,
            cap_strong: 8.0,
            weak_kbps: 2000.0,
            strong_kbps: 20_000.0,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            BmaxPolicy::Fixed(cap) => {
                if !(cap > 0.0) || !cap.is_finite() {
                    return Err(PlayerError::InvalidConfig(
                        "fixed B_max must be positive".into(),
                    ));
                }
            }
            BmaxPolicy::BandwidthAdaptive {
                cap_weak,
                cap_strong,
                weak_kbps,
                strong_kbps,
            } => {
                if !(cap_weak > 0.0 && cap_strong > 0.0) {
                    return Err(PlayerError::InvalidConfig("caps must be positive".into()));
                }
                if !(strong_kbps > weak_kbps && weak_kbps > 0.0) {
                    return Err(PlayerError::InvalidConfig(
                        "need 0 < weak_kbps < strong_kbps".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Evaluate the cap (seconds) for the given bandwidth model.
    pub fn cap(&self, bandwidth: &NormalDist) -> f64 {
        match *self {
            BmaxPolicy::Fixed(cap) => cap,
            BmaxPolicy::BandwidthAdaptive {
                cap_weak,
                cap_strong,
                weak_kbps,
                strong_kbps,
            } => {
                // Use the μ−σ lower envelope: burstier links behave weaker.
                let lower = bandwidth.lower_envelope(1.0).max(0.0);
                if lower <= weak_kbps {
                    cap_weak
                } else if lower >= strong_kbps {
                    cap_strong
                } else {
                    let t = (lower - weak_kbps) / (strong_kbps - weak_kbps);
                    cap_weak + t * (cap_strong - cap_weak)
                }
            }
        }
    }
}

/// Full player configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerConfig {
    /// Buffer-cap policy.
    pub bmax: BmaxPolicy,
    /// Round-trip-time model (the RTT term of δt in Eq. 3).
    pub rtt: RttModel,
    /// Throughput-history window the player exposes to ABRs (segments).
    pub history_window: usize,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        Self {
            bmax: BmaxPolicy::default_adaptive(),
            rtt: RttModel::default_mobile(),
            history_window: 8,
        }
    }
}

impl PlayerConfig {
    /// Deterministic config for tests: fixed cap, constant RTT.
    pub fn deterministic(bmax_seconds: f64, rtt_seconds: f64) -> Self {
        Self {
            bmax: BmaxPolicy::Fixed(bmax_seconds),
            rtt: RttModel::constant(rtt_seconds),
            history_window: 8,
        }
    }

    /// Validate all components.
    pub fn validate(&self) -> Result<()> {
        self.bmax.validate()?;
        self.rtt
            .validate()
            .map_err(|e| PlayerError::InvalidConfig(e.to_string()))?;
        if self.history_window == 0 {
            return Err(PlayerError::InvalidConfig(
                "history window must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy() {
        let p = BmaxPolicy::Fixed(10.0);
        p.validate().unwrap();
        let bw = NormalDist::new(5000.0, 1000.0).unwrap();
        assert_eq!(p.cap(&bw), 10.0);
        assert!(BmaxPolicy::Fixed(0.0).validate().is_err());
    }

    #[test]
    fn adaptive_policy_interpolates() {
        let p = BmaxPolicy::default_adaptive();
        p.validate().unwrap();
        let weak = NormalDist::new(1500.0, 500.0).unwrap(); // envelope 1000
        let strong = NormalDist::new(40_000.0, 2000.0).unwrap(); // 38k
        let mid = NormalDist::new(12_000.0, 1000.0).unwrap(); // 11k
        assert_eq!(p.cap(&weak), 14.0);
        assert_eq!(p.cap(&strong), 8.0);
        let c = p.cap(&mid);
        assert!(c < 14.0 && c > 8.0);
    }

    #[test]
    fn burstier_links_get_bigger_buffers() {
        let p = BmaxPolicy::default_adaptive();
        let stable = NormalDist::new(10_000.0, 500.0).unwrap();
        let bursty = NormalDist::new(10_000.0, 6000.0).unwrap();
        assert!(p.cap(&bursty) >= p.cap(&stable));
    }

    #[test]
    fn adaptive_validation() {
        let bad = BmaxPolicy::BandwidthAdaptive {
            cap_weak: 14.0,
            cap_strong: 8.0,
            weak_kbps: 5000.0,
            strong_kbps: 2000.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn config_validation() {
        assert!(PlayerConfig::default().validate().is_ok());
        let c = PlayerConfig {
            history_window: 0,
            ..PlayerConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
