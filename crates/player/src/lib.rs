//! Playback-engine substrate: the paper's player model (Eq. 3) as a
//! discrete-event, per-segment simulator.
//!
//! The same buffer recursion drives both the "online" player (sessions over
//! bandwidth traces) and LingXi's Monte-Carlo *virtual* player (rollouts
//! over sampled bandwidth), exactly as in the paper where §3.2 states the
//! virtual environment "references previous classic works \[34\] and
//! production environment settings".
//!
//! Buffer recursion (paper Eq. 3), all in seconds of playback:
//!
//! ```text
//! T_k      = [ d_k(Q_k)/C_k − B_k ]_+                (stall time)
//! B'       = [ B_k − d_k(Q_k)/C_k ]_+ + L            (post-download buffer)
//! δt_k     = max(B' − B_max, 0) + RTT                (waiting time)
//! B_{k+1}  = [ B' − δt_k ]_+   clamped to [0, B_max]
//! ```
//!
//! `B_max` itself adapts to the bandwidth model (`B_max = f(N(μ, σ²))`).
//!
//! ```
//! use lingxi_player::{PlayerConfig, PlayerEnv};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // One segment through the Eq. 3 buffer recursion: 1600 kbit at
//! // 3200 kbps downloads in 0.5 s, leaving buffer for the 2 s of content.
//! let mut env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = env.step(1600.0, 1, 3200.0, 2.0, &mut rng).unwrap();
//! assert_eq!(outcome.stall_time, 0.0);
//! assert!(env.buffer() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod env;
pub mod log;
pub mod session;

pub use config::{BmaxPolicy, PlayerConfig};
pub use env::{PlayerEnv, SegmentOutcome, StallEvent};
pub use log::{SegmentRecord, SessionEnd, SessionLog, SessionSummary};
pub use session::{
    content_watch_time, run_session, ExitDecision, SegmentRequest, SessionSetup, SessionStream,
};

/// Errors from player construction or stepping.
#[derive(Debug, Clone, PartialEq)]
pub enum PlayerError {
    /// Invalid configuration parameter.
    InvalidConfig(String),
    /// A step was attempted with invalid inputs (e.g. non-positive
    /// bandwidth).
    InvalidStep(String),
}

impl std::fmt::Display for PlayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlayerError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            PlayerError::InvalidStep(m) => write!(f, "invalid step: {m}"),
        }
    }
}

impl std::error::Error for PlayerError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PlayerError>;
