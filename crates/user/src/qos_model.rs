//! The probabilistic QoS→exit model: the synthetic stand-in for real user
//! behaviour, calibrated to Fig. 4's effect magnitudes.

use lingxi_media::{BitrateLadder, QualityTier};
use lingxi_player::{PlayerEnv, SegmentRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::profile::StallProfile;

/// What an exit model gets to see after each segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// The player environment after the segment's update.
    pub env: &'a PlayerEnv,
    /// The segment just played.
    pub record: &'a SegmentRecord,
    /// The ladder (for tier lookups).
    pub ladder: &'a BitrateLadder,
}

/// A segment-level exit model: yields the probability that the user leaves
/// after this segment.
pub trait ExitModel: Send {
    /// Exit probability in `[0, 1]` for the segment just observed.
    fn exit_prob(&mut self, view: &SegmentView<'_>) -> f64;

    /// Reset per-session state.
    fn reset_session(&mut self);

    /// Bernoulli draw against [`ExitModel::exit_prob`].
    ///
    /// Takes `dyn RngCore` (not a generic) so the trait stays
    /// object-safe — managed sessions hold users as `&mut dyn ExitModel`.
    fn decide(&mut self, view: &SegmentView<'_>, rng: &mut dyn rand::RngCore) -> bool {
        let p = self.exit_prob(view).clamp(0.0, 1.0);
        (*rng).gen::<f64>() < p
    }
}

/// The calibrated generative model:
///
/// `p_exit = base + quality(level) + smoothness(switch) + stall(profile) ×
/// compound(modifiers)`
///
/// with per-term magnitudes matching Takeaway 1 (1e-3 / 1e-2 / 1e-1) and the
/// compound effects of Fig. 4(d):
/// - engagement beyond 20 s of watch time halves the stall response;
/// - watching Full HD *increases* stall response by 1.4×;
/// - a repeated stall (2nd+ event in a session) scales it by 1.5×.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosExitModel {
    /// Per-segment content-driven (QoS-unrelated) exit probability. This is
    /// the noise floor that makes ALL-dataset predictors unlearnable
    /// (Fig. 9a).
    pub base_exit: f64,
    /// Quality-term span across the ladder (~1e-3).
    pub quality_span: f64,
    /// Smoothness penalty per switch event (~1e-2); degradations weigh
    /// slightly more than upgrades.
    pub switch_penalty: f64,
    /// The user's stall profile (the 1e-1 term).
    pub stall: StallProfile,
    /// Session stall accumulated so far (model state).
    #[serde(skip)]
    session_stall: f64,
    /// Stall events seen this session (model state).
    #[serde(skip)]
    session_stall_events: usize,
}

impl QosExitModel {
    /// Calibrated defaults around a given stall profile.
    pub fn calibrated(stall: StallProfile) -> Self {
        Self {
            base_exit: 0.015,
            quality_span: 6e-3,
            switch_penalty: 1.2e-2,
            stall,
            session_stall: 0.0,
            session_stall_events: 0,
        }
    }

    /// Quality term: exit probability *decreases* with tier, spanning
    /// `quality_span` from LD to Full HD with diminishing marginal effect
    /// (Fig. 4a: the HD→FullHD gap is the smallest).
    fn quality_term(&self, tier: QualityTier) -> f64 {
        let frac = match tier {
            QualityTier::Ld => 1.0,
            QualityTier::Sd => 0.45,
            QualityTier::Hd => 0.12,
            QualityTier::FullHd => 0.0,
        };
        self.quality_span * frac
    }

    /// Smoothness term (Fig. 4b): any switch raises the exit rate; downward
    /// switches slightly more; magnitude grows weakly with granularity.
    fn smoothness_term(&self, granularity: i64) -> f64 {
        if granularity == 0 {
            return 0.0;
        }
        let magnitude = granularity.unsigned_abs() as f64;
        let direction = if granularity < 0 { 1.15 } else { 1.0 };
        self.switch_penalty * direction * (0.8 + 0.2 * magnitude)
    }

    /// Stall term with compound modifiers (Fig. 4c/d).
    fn stall_term(&self, view: &SegmentView<'_>, tier: QualityTier) -> f64 {
        if view.record.stall_time <= 0.0 && self.session_stall <= 0.0 {
            return 0.0;
        }
        let mut r = self.stall.response(self.session_stall);
        // Engagement: beyond 20 s watched, tolerance grows.
        if view.env.playback_time() > 20.0 {
            r *= 0.55;
        }
        // Full-HD watchers are less stall-tolerant.
        if tier == QualityTier::FullHd {
            r *= 1.4;
        }
        // Repeated stalls compound.
        if self.session_stall_events >= 2 {
            r *= 1.5;
        }
        r.min(0.95)
    }
}

impl ExitModel for QosExitModel {
    fn exit_prob(&mut self, view: &SegmentView<'_>) -> f64 {
        // Update session stall state first: the decision is made *after*
        // experiencing this segment.
        if view.record.stall_time > 0.0 {
            self.session_stall += view.record.stall_time;
            self.session_stall_events += 1;
        }
        let tier = view
            .ladder
            .tier(view.record.level)
            .unwrap_or(QualityTier::Ld);
        let p = self.base_exit
            + self.quality_term(tier)
            + self.smoothness_term(view.record.switch_granularity())
            + self.stall_term(view, tier);
        p.clamp(0.0, 1.0)
    }

    fn reset_session(&mut self) {
        self.session_stall = 0.0;
        self.session_stall_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{SensitivityKind, StallProfile};
    use lingxi_player::PlayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (BitrateLadder, PlayerEnv) {
        (
            BitrateLadder::default_short_video(),
            PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap(),
        )
    }

    fn record(level: usize, stall: f64, from: Option<usize>) -> SegmentRecord {
        SegmentRecord {
            index: 0,
            level,
            bitrate_kbps: [350.0, 800.0, 1850.0, 4300.0][level],
            size_kbits: 1000.0,
            throughput_kbps: 1000.0,
            download_time: 1.0,
            stall_time: stall,
            buffer_after: 5.0,
            switched_from: from,
        }
    }

    fn model() -> QosExitModel {
        QosExitModel::calibrated(StallProfile::new(SensitivityKind::Sensitive, 3.0, 0.3).unwrap())
    }

    #[test]
    fn magnitude_hierarchy_matches_takeaway1() {
        let (ladder, env) = fixture();
        let mut m = model();
        // Quality effect: LD vs FullHD, no stall, no switch.
        let r_ld = record(0, 0.0, Some(0));
        let r_hd = record(3, 0.0, Some(3));
        let p_ld = m.exit_prob(&SegmentView {
            env: &env,
            record: &r_ld,
            ladder: &ladder,
        });
        m.reset_session();
        let p_fhd = m.exit_prob(&SegmentView {
            env: &env,
            record: &r_hd,
            ladder: &ladder,
        });
        m.reset_session();
        let quality_effect = p_ld - p_fhd;
        assert!(
            quality_effect > 1e-3 && quality_effect < 2e-2,
            "quality {quality_effect}"
        );

        // Switch effect.
        let r_sw = record(1, 0.0, Some(3));
        let p_sw = m.exit_prob(&SegmentView {
            env: &env,
            record: &r_sw,
            ladder: &ladder,
        });
        m.reset_session();
        let r_nosw = record(1, 0.0, Some(1));
        let p_nosw = m.exit_prob(&SegmentView {
            env: &env,
            record: &r_nosw,
            ladder: &ladder,
        });
        m.reset_session();
        let switch_effect = p_sw - p_nosw;
        assert!(
            switch_effect > 5e-3 && switch_effect < 5e-2,
            "switch {switch_effect}"
        );

        // Stall effect dominates.
        let r_stall = record(1, 6.0, Some(1));
        let p_stall = m.exit_prob(&SegmentView {
            env: &env,
            record: &r_stall,
            ladder: &ladder,
        });
        m.reset_session();
        let stall_effect = p_stall - p_nosw;
        assert!(
            stall_effect > 5e-2 && stall_effect < 0.45,
            "stall {stall_effect}"
        );

        assert!(stall_effect > switch_effect && switch_effect > quality_effect);
    }

    #[test]
    fn downward_switch_worse_than_upward() {
        let (ladder, env) = fixture();
        let mut m = model();
        let down = record(0, 0.0, Some(2));
        let p_down = m.exit_prob(&SegmentView {
            env: &env,
            record: &down,
            ladder: &ladder,
        });
        m.reset_session();
        let up = record(2, 0.0, Some(0));
        let p_up = m.exit_prob(&SegmentView {
            env: &env,
            record: &up,
            ladder: &ladder,
        });
        m.reset_session();
        // Compare pure smoothness terms (quality terms differ too, so use
        // the model's internals).
        assert!(m.smoothness_term(-2) > m.smoothness_term(2));
        // End-to-end the downward path should not be milder once quality is
        // equalised by the stronger direction factor.
        assert!(p_down > 0.0 && p_up > 0.0);
    }

    #[test]
    fn stall_accumulates_across_segments() {
        let (ladder, env) = fixture();
        let mut m = model();
        let r1 = record(1, 1.0, Some(1));
        let p1 = m.exit_prob(&SegmentView {
            env: &env,
            record: &r1,
            ladder: &ladder,
        });
        let r2 = record(1, 1.5, Some(1));
        let p2 = m.exit_prob(&SegmentView {
            env: &env,
            record: &r2,
            ladder: &ladder,
        });
        assert!(p2 > p1, "repeat stall must compound: {p1} -> {p2}");
        m.reset_session();
        let p3 = m.exit_prob(&SegmentView {
            env: &env,
            record: &r1,
            ladder: &ladder,
        });
        assert!((p3 - p1).abs() < 1e-12, "reset must clear session state");
    }

    #[test]
    fn engagement_reduces_stall_response() {
        let ladder = BitrateLadder::default_short_video();
        let mut env_long = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        // Simulate 30 s of playback.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..16 {
            env_long.step(500.0, 1, 50_000.0, 2.0, &mut rng).unwrap();
        }
        assert!(env_long.playback_time() > 20.0);
        let env_new = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let r = record(1, 4.0, Some(1));
        let mut m1 = model();
        let p_new = m1.exit_prob(&SegmentView {
            env: &env_new,
            record: &r,
            ladder: &ladder,
        });
        let mut m2 = model();
        let p_long = m2.exit_prob(&SegmentView {
            env: &env_long,
            record: &r,
            ladder: &ladder,
        });
        assert!(
            p_long < p_new,
            "engaged users more tolerant: {p_long} vs {p_new}"
        );
    }

    #[test]
    fn decide_is_bernoulli() {
        let (ladder, env) = fixture();
        let mut m = model();
        // Heavy stall: probability should be well above base.
        let r = record(1, 10.0, Some(1));
        let mut rng = StdRng::seed_from_u64(2);
        let mut exits = 0;
        for _ in 0..2000 {
            m.reset_session();
            let view = SegmentView {
                env: &env,
                record: &r,
                ladder: &ladder,
            };
            if m.decide(&view, &mut rng) {
                exits += 1;
            }
        }
        let rate = exits as f64 / 2000.0;
        assert!(rate > 0.2 && rate < 0.5, "rate {rate}");
    }
}
