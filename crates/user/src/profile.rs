//! Per-user stall-sensitivity profiles and their temporal drift.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, UserError};

/// The three response archetypes of Fig. 5(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensitivityKind {
    /// Exit probability ramps quickly with stall time.
    Sensitive,
    /// Low response below a personal threshold, sharp jump above it.
    ThresholdSensitive,
    /// Mild, slowly growing response.
    Insensitive,
}

/// Day-to-day tolerance drift (Fig. 5a, right curve): most users are
/// stable; ~20% fluctuate by 2–4 s; the rest follow a long tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceDrift {
    /// Fraction of users with (near-)zero drift.
    pub p_stable: f64,
    /// Fraction with moderate 2–4 s drift.
    pub p_moderate: f64,
    // Remainder: long-tail drift.
}

impl Default for ToleranceDrift {
    fn default() -> Self {
        Self {
            p_stable: 0.6,
            p_moderate: 0.2,
        }
    }
}

impl ToleranceDrift {
    /// Draw a signed tolerance delta (seconds) for one user-day.
    pub fn sample_delta<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        if u < self.p_stable {
            sign * rng.gen::<f64>() * 0.5
        } else if u < self.p_stable + self.p_moderate {
            sign * (2.0 + rng.gen::<f64>() * 2.0)
        } else {
            // Long tail: exponential with mean 3 s, occasionally large.
            let e: f64 = rng.gen_range(f64::EPSILON..1.0);
            sign * (-3.0 * e.ln()).min(15.0)
        }
    }
}

/// One user's stall-response profile.
///
/// `response(stall_seconds)` maps a *session's cumulative* stall exposure to
/// an additional per-segment exit probability, shaped by the archetype and
/// the personal tolerance τ. The magnitudes keep the overall stall effect in
/// the 1e-1 band with a ~0.3 maximum differential (Fig. 4c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallProfile {
    /// Archetype.
    pub kind: SensitivityKind,
    /// Personal tolerance τ (seconds) — the pivot of the response.
    pub tolerance: f64,
    /// Response ceiling (max additional exit probability per segment).
    pub ceiling: f64,
}

impl StallProfile {
    /// Create a profile; tolerance must be positive.
    pub fn new(kind: SensitivityKind, tolerance: f64, ceiling: f64) -> Result<Self> {
        if !(tolerance > 0.0) || !tolerance.is_finite() {
            return Err(UserError::InvalidConfig(
                "tolerance must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&ceiling) {
            return Err(UserError::InvalidConfig("ceiling must be in [0,1]".into()));
        }
        Ok(Self {
            kind,
            tolerance,
            ceiling,
        })
    }

    /// Additional exit probability contributed by `stall_seconds` of
    /// accumulated stall.
    pub fn response(&self, stall_seconds: f64) -> f64 {
        if stall_seconds <= 0.0 {
            return 0.0;
        }
        let r = match self.kind {
            SensitivityKind::Sensitive => {
                // Fast ramp: reaches the ceiling around τ.
                self.ceiling * (stall_seconds / self.tolerance).min(1.0)
            }
            SensitivityKind::ThresholdSensitive => {
                if stall_seconds < self.tolerance {
                    0.05 * self.ceiling
                } else {
                    self.ceiling
                }
            }
            SensitivityKind::Insensitive => {
                // Slow saturating growth; ~40% of ceiling at 2τ.
                self.ceiling * (1.0 - (-stall_seconds / (4.0 * self.tolerance)).exp())
            }
        };
        r.min(self.ceiling)
    }

    /// A copy with tolerance shifted by `delta` (clamped to 0.25 s floor) —
    /// the day-to-day drift application.
    pub fn drifted(&self, delta: f64) -> Self {
        Self {
            tolerance: (self.tolerance + delta).max(0.25),
            ..*self
        }
    }

    /// The smallest stall (seconds) whose response exceeds half the
    /// ceiling — a scalar "average tolerable stall time" used to draw the
    /// Fig. 5(a) CDF.
    pub fn tolerable_stall(&self) -> f64 {
        // Binary search on the monotone response curve.
        let target = self.ceiling / 2.0;
        let (mut lo, mut hi) = (0.0f64, 40.0f64);
        if self.response(hi) < target {
            return hi;
        }
        for _ in 0..64 {
            let mid = (lo + hi) / 2.0;
            if self.response(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Draw a random profile matching the population shares of Fig. 5(a):
/// ~20% minimal tolerance, ~20% above 5 s, ~10% above 10 s.
pub fn sample_profile<R: Rng + ?Sized>(rng: &mut R) -> StallProfile {
    // Ceilings are high (0.5–0.9): once a user's tolerance is exceeded the
    // exit is close to deterministic, matching the near-step per-user
    // curves of Fig. 5(b). Population-average effects stay in Fig. 4's
    // 1e-1 band because most users are far from their threshold most of
    // the time.
    let u: f64 = rng.gen();
    if u < 0.20 {
        // Highly sensitive: tolerance under ~1.5 s.
        StallProfile {
            kind: SensitivityKind::Sensitive,
            tolerance: 0.4 + rng.gen::<f64>() * 1.1,
            ceiling: 0.65 + rng.gen::<f64>() * 0.25,
        }
    } else if u < 0.70 {
        // Threshold users with mid tolerances 1.5–5 s.
        StallProfile {
            kind: SensitivityKind::ThresholdSensitive,
            tolerance: 1.5 + rng.gen::<f64>() * 3.5,
            ceiling: 0.55 + rng.gen::<f64>() * 0.30,
        }
    } else if u < 0.90 {
        // Tolerant threshold users: 5–10 s.
        StallProfile {
            kind: SensitivityKind::ThresholdSensitive,
            tolerance: 5.0 + rng.gen::<f64>() * 5.0,
            ceiling: 0.45 + rng.gen::<f64>() * 0.30,
        }
    } else {
        // Insensitive: effective tolerance beyond 10 s.
        StallProfile {
            kind: SensitivityKind::Insensitive,
            tolerance: 4.0 + rng.gen::<f64>() * 4.0,
            ceiling: 0.15 + rng.gen::<f64>() * 0.10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn responses_monotone_and_capped() {
        for kind in [
            SensitivityKind::Sensitive,
            SensitivityKind::ThresholdSensitive,
            SensitivityKind::Insensitive,
        ] {
            let p = StallProfile::new(kind, 3.0, 0.3).unwrap();
            let mut prev = 0.0;
            for i in 0..100 {
                let r = p.response(i as f64 * 0.5);
                assert!(r >= prev - 1e-12, "{kind:?} not monotone");
                assert!(r <= 0.3 + 1e-12);
                prev = r;
            }
            assert_eq!(p.response(0.0), 0.0);
            assert_eq!(p.response(-1.0), 0.0);
        }
    }

    #[test]
    fn threshold_profile_jumps_at_tolerance() {
        let p = StallProfile::new(SensitivityKind::ThresholdSensitive, 4.0, 0.3).unwrap();
        assert!(p.response(3.9) < 0.02);
        assert!((p.response(4.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn sensitive_reaches_ceiling_at_tolerance() {
        let p = StallProfile::new(SensitivityKind::Sensitive, 2.0, 0.4).unwrap();
        assert!((p.response(2.0) - 0.4).abs() < 1e-12);
        assert!((p.response(1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tolerable_stall_orders_archetypes() {
        let sens = StallProfile::new(SensitivityKind::Sensitive, 1.0, 0.3).unwrap();
        let thresh = StallProfile::new(SensitivityKind::ThresholdSensitive, 5.0, 0.3).unwrap();
        let insens = StallProfile::new(SensitivityKind::Insensitive, 6.0, 0.2).unwrap();
        assert!(sens.tolerable_stall() < thresh.tolerable_stall());
        assert!(thresh.tolerable_stall() < insens.tolerable_stall());
    }

    #[test]
    fn population_tolerance_cdf_matches_fig5a() {
        let mut rng = StdRng::seed_from_u64(1);
        let tolerances: Vec<f64> = (0..20_000)
            .map(|_| sample_profile(&mut rng).tolerable_stall())
            .collect();
        let frac = |pred: &dyn Fn(f64) -> bool| {
            tolerances.iter().filter(|&&t| pred(t)).count() as f64 / tolerances.len() as f64
        };
        // ~20% minimal tolerance (< 2 s).
        let low = frac(&|t| t < 2.0);
        assert!(low > 0.12 && low < 0.32, "low-tolerance share {low}");
        // ~20% beyond 5 s (within modelling slack).
        let high = frac(&|t| t > 5.0);
        assert!(high > 0.18 && high < 0.45, "high-tolerance share {high}");
        // ~10% beyond 10 s.
        let vhigh = frac(&|t| t > 10.0);
        assert!(vhigh > 0.04 && vhigh < 0.25, "very-high share {vhigh}");
    }

    #[test]
    fn drift_distribution_shape() {
        let d = ToleranceDrift::default();
        let mut rng = StdRng::seed_from_u64(2);
        let deltas: Vec<f64> = (0..20_000)
            .map(|_| d.sample_delta(&mut rng).abs())
            .collect();
        let stable = deltas.iter().filter(|&&x| x < 1.0).count() as f64 / deltas.len() as f64;
        let moderate = deltas.iter().filter(|&&x| (2.0..=4.0).contains(&x)).count() as f64
            / deltas.len() as f64;
        assert!(stable > 0.5, "stable share {stable}");
        assert!(moderate > 0.15, "moderate share {moderate}");
        assert!(
            deltas.iter().cloned().fold(0.0, f64::max) > 6.0,
            "long tail missing"
        );
    }

    #[test]
    fn drifted_clamps_at_floor() {
        let p = StallProfile::new(SensitivityKind::Sensitive, 1.0, 0.3).unwrap();
        let d = p.drifted(-5.0);
        assert_eq!(d.tolerance, 0.25);
        assert_eq!(d.kind, p.kind);
    }

    #[test]
    fn invalid_profiles_rejected() {
        assert!(StallProfile::new(SensitivityKind::Sensitive, 0.0, 0.3).is_err());
        assert!(StallProfile::new(SensitivityKind::Sensitive, 1.0, 1.5).is_err());
    }
}
