//! User-behaviour substrate: exit models, stall-sensitivity profiles and
//! population generation.
//!
//! The paper's private asset is 1.5M production watch trajectories; every
//! analysis in §2 (and the user models of §5.2) is a function of how users
//! exit in response to QoS. This crate generates that behaviour
//! synthetically, calibrated to the published curves:
//!
//! - QoS → exit-rate magnitudes: video quality ~1e-3, smoothness ~1e-2,
//!   stall ~1e-1 with a ~0.3 maximum differential (Fig. 4, Takeaway 1);
//! - compound effects: longer engagement raises stall tolerance, Full-HD
//!   watchers are *less* stall-tolerant, repeated stalls compound (Fig. 4d);
//! - population heterogeneity: ~20% of users barely tolerate stalls, ~20%
//!   tolerate > 5 s, ~10% > 10 s; day-to-day tolerance drift is mostly
//!   stable with a 2–4 s band for ~20% of users and a long tail (Fig. 5a);
//! - archetypes: ramp-sensitive, threshold-sensitive, insensitive (Fig. 5b);
//! - plus *random* (content-driven) exits unrelated to QoS, which are what
//!   makes the ALL-dataset predictor of Fig. 9(a) unlearnable.
//!
//! ```
//! use lingxi_user::{PopulationConfig, UserPopulation};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Populations generate deterministically from a seed (§2's cohorts).
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = PopulationConfig { n_users: 10, ..PopulationConfig::default() };
//! let pop = UserPopulation::generate(&config, &mut rng).unwrap();
//! assert_eq!(pop.len(), 10);
//! assert!(pop.users().iter().all(|u| u.sessions_per_day >= 1.0));
//! ```

#![forbid(unsafe_code)]

pub mod datadriven;
pub mod population;
pub mod profile;
pub mod qos_model;
pub mod rules;

pub use datadriven::{DataDrivenExit, DataDrivenTrainer};
pub use population::{PopulationConfig, UserPopulation, UserRecord};
pub use profile::{SensitivityKind, StallProfile, ToleranceDrift};
pub use qos_model::{ExitModel, QosExitModel, SegmentView};
pub use rules::RuleBasedExit;

/// Errors from user-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum UserError {
    /// Invalid configuration parameter.
    InvalidConfig(String),
    /// Not enough data to fit a model.
    InsufficientData(String),
}

impl std::fmt::Display for UserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UserError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            UserError::InsufficientData(m) => write!(f, "insufficient data: {m}"),
        }
    }
}

impl std::error::Error for UserError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, UserError>;
