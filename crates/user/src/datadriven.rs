//! Data-driven per-user exit models — §5.2's "Data-Driven Modeling".
//!
//! The paper fits "an individual exit predictor" per active user from two
//! weeks of engagement and uses it as the user model in simulation. Here
//! the trainer consumes labelled per-segment examples (produced by
//! observing any behaviour source, typically the generative
//! [`QosExitModel`](crate::QosExitModel)) and fits a small network; the
//! fitted model then *acts as the user* inside rollouts.

use lingxi_nn::{softmax, Dense, Layer, Matrix, Relu, Sequential, TrainConfig, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::qos_model::{ExitModel, SegmentView};
use crate::{Result, UserError};

/// Feature vector length for the per-user model.
pub const FEATURES: usize = 6;

/// Extract per-segment features given the running session state.
fn features(view: &SegmentView<'_>, session_stall: f64, session_events: usize) -> [f64; FEATURES] {
    let top = view.ladder.top_level().max(1) as f64;
    [
        (session_stall / 10.0).min(3.0),
        (session_events as f64 / 5.0).min(3.0),
        (view.record.stall_time / 5.0).min(3.0),
        view.record.level as f64 / top,
        (view.env.playback_time() / 60.0).min(3.0),
        (view.record.switch_granularity().abs() as f64 / top).min(1.0),
    ]
}

/// One labelled observation of a user's reaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExitExample {
    /// Input features (see the feature list in this module's docs).
    pub x: [f64; FEATURES],
    /// Whether the user exited after this segment.
    pub exited: bool,
}

/// A trained per-user exit model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataDrivenExit {
    net: Sequential,
    #[serde(skip)]
    session_stall: f64,
    #[serde(skip)]
    session_events: usize,
}

impl DataDrivenExit {
    /// Probability of exit for a raw feature vector.
    pub fn prob_for(&mut self, x: &[f64; FEATURES]) -> f64 {
        let m = Matrix::row_vector(x);
        let logits = self.net.forward(&m).expect("fixed shapes");
        softmax(&logits).get(0, 1)
    }
}

impl ExitModel for DataDrivenExit {
    fn exit_prob(&mut self, view: &SegmentView<'_>) -> f64 {
        if view.record.stall_time > 0.0 {
            self.session_stall += view.record.stall_time;
            self.session_events += 1;
        }
        let x = features(view, self.session_stall, self.session_events);
        self.prob_for(&x)
    }

    fn reset_session(&mut self) {
        self.session_stall = 0.0;
        self.session_events = 0;
    }
}

/// Trainer for per-user models.
#[derive(Debug, Clone, Copy)]
pub struct DataDrivenTrainer {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for DataDrivenTrainer {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 40,
            lr: 5e-3,
        }
    }
}

impl DataDrivenTrainer {
    /// Fit a model from labelled examples (needs both classes present).
    pub fn fit<R: Rng + ?Sized>(
        &self,
        examples: &[ExitExample],
        rng: &mut R,
    ) -> Result<DataDrivenExit> {
        if examples.len() < 10 {
            return Err(UserError::InsufficientData(format!(
                "{} examples; need at least 10",
                examples.len()
            )));
        }
        let positives = examples.iter().filter(|e| e.exited).count();
        if positives == 0 || positives == examples.len() {
            return Err(UserError::InsufficientData(
                "need both exit and continue examples".into(),
            ));
        }
        let rows: Vec<Vec<f64>> = examples.iter().map(|e| e.x.to_vec()).collect();
        let x = Matrix::from_rows(&rows).map_err(|e| UserError::InvalidConfig(e.to_string()))?;
        let y: Vec<usize> = examples.iter().map(|e| usize::from(e.exited)).collect();
        let mut net = Sequential::new()
            .push(Layer::Dense(
                Dense::new(FEATURES, self.hidden, rng)
                    .map_err(|e| UserError::InvalidConfig(e.to_string()))?,
            ))
            .push(Layer::Relu(Relu::new()))
            .push(Layer::Dense(
                Dense::new_xavier(self.hidden, 2, rng)
                    .map_err(|e| UserError::InvalidConfig(e.to_string()))?,
            ));
        let trainer = Trainer::new(
            &x,
            &y,
            TrainConfig {
                epochs: self.epochs,
                batch_size: 32,
                lr: self.lr,
            },
        )
        .map_err(|e| UserError::InvalidConfig(e.to_string()))?;
        trainer
            .fit(&mut net, rng)
            .map_err(|e| UserError::InvalidConfig(e.to_string()))?;
        Ok(DataDrivenExit {
            net,
            session_stall: 0.0,
            session_events: 0,
        })
    }
}

/// Collect a labelled example from a behaviour source (used when fitting a
/// data-driven model to imitate a generative one).
pub fn observe_example<M: ExitModel, R: Rng>(
    source: &mut M,
    view: &SegmentView<'_>,
    session_stall_after: f64,
    session_events_after: usize,
    rng: &mut R,
) -> ExitExample {
    let exited = source.decide(view, rng);
    ExitExample {
        x: features(view, session_stall_after, session_events_after),
        exited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth_examples(n: usize, seed: u64) -> Vec<ExitExample> {
        // Ground truth: exit iff accumulated stall (feature 0, scaled by
        // 10) exceeds 0.4 (i.e. 4 s), with slight noise.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let stall: f64 = rng.gen::<f64>() * 1.0;
                let x = [
                    stall,
                    rng.gen::<f64>() * 0.6,
                    rng.gen::<f64>() * 0.5,
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                    0.0,
                ];
                let exited = stall > 0.4;
                ExitExample { x, exited }
            })
            .collect()
    }

    #[test]
    fn fit_learns_threshold_behaviour() {
        let examples = synth_examples(600, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = DataDrivenTrainer::default()
            .fit(&examples, &mut rng)
            .unwrap();
        // Well below threshold → low probability; far above → high.
        let low = model.prob_for(&[0.05, 0.1, 0.0, 0.5, 0.5, 0.0]);
        let high = model.prob_for(&[0.9, 0.1, 0.0, 0.5, 0.5, 0.0]);
        assert!(low < 0.35, "low {low}");
        assert!(high > 0.65, "high {high}");
    }

    #[test]
    fn fit_requires_both_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let all_continue: Vec<ExitExample> = (0..50)
            .map(|_| ExitExample {
                x: [0.0; FEATURES],
                exited: false,
            })
            .collect();
        assert!(DataDrivenTrainer::default()
            .fit(&all_continue, &mut rng)
            .is_err());
        assert!(DataDrivenTrainer::default().fit(&[], &mut rng).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let examples = synth_examples(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = DataDrivenTrainer {
            epochs: 5,
            ..DataDrivenTrainer::default()
        }
        .fit(&examples, &mut rng)
        .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let mut restored: DataDrivenExit = serde_json::from_str(&json).unwrap();
        let x = [0.5, 0.2, 0.1, 0.5, 0.5, 0.0];
        assert!((model.prob_for(&x) - restored.prob_for(&x)).abs() < 1e-9);
    }
}
