//! Population generation: users with network profiles, stall sensitivities
//! and engagement behaviour.

use lingxi_net::{ProductionMixture, UserNetProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::profile::{sample_profile, StallProfile, ToleranceDrift};
use crate::qos_model::QosExitModel;
use crate::{Result, UserError};

/// One synthetic user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserRecord {
    /// Stable identifier.
    pub id: u64,
    /// Network profile (class, mean bandwidth, burstiness).
    pub net: UserNetProfile,
    /// Stall-sensitivity profile.
    pub stall: StallProfile,
    /// Daily engagement intensity: expected sessions per day.
    pub sessions_per_day: f64,
}

impl UserRecord {
    /// Build the generative exit model of this user for day `day`,
    /// applying tolerance drift deterministically per (user, day).
    pub fn exit_model_for_day<R: Rng + ?Sized>(
        &self,
        drift: &ToleranceDrift,
        rng: &mut R,
    ) -> QosExitModel {
        let delta = drift.sample_delta(rng);
        QosExitModel::calibrated(self.stall.drifted(delta))
    }

    /// The user's baseline exit model (no drift).
    pub fn exit_model(&self) -> QosExitModel {
        QosExitModel::calibrated(self.stall)
    }
}

/// Population generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of users.
    pub n_users: usize,
    /// Bandwidth mixture.
    pub mixture: ProductionMixture,
    /// Mean sessions per user per day (engagement scale).
    pub mean_sessions_per_day: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            n_users: 1000,
            mixture: ProductionMixture::default(),
            mean_sessions_per_day: 30.0,
        }
    }
}

/// A generated user population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPopulation {
    users: Vec<UserRecord>,
}

impl UserPopulation {
    /// Generate a population.
    pub fn generate<R: Rng + ?Sized>(config: &PopulationConfig, rng: &mut R) -> Result<Self> {
        if config.n_users == 0 {
            return Err(UserError::InvalidConfig("need at least one user".into()));
        }
        if !(config.mean_sessions_per_day > 0.0) {
            return Err(UserError::InvalidConfig(
                "mean sessions per day must be positive".into(),
            ));
        }
        config
            .mixture
            .validate()
            .map_err(|e| UserError::InvalidConfig(e.to_string()))?;
        let users = (0..config.n_users)
            .map(|id| {
                let net = config.mixture.sample_profile(rng);
                let stall = sample_profile(rng);
                // Engagement: log-normal around the configured mean.
                let sigma: f64 = 0.5;
                let mu = config.mean_sessions_per_day.ln() - sigma * sigma / 2.0;
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let sessions_per_day = (mu + sigma * z).exp().max(1.0);
                UserRecord {
                    id: id as u64,
                    net,
                    stall,
                    sessions_per_day,
                }
            })
            .collect();
        Ok(Self { users })
    }

    /// All users.
    pub fn users(&self) -> &[UserRecord] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Populations are never empty by construction.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Users whose mean bandwidth is below `kbps` — the long-tail cohort of
    /// §5.4.
    pub fn low_bandwidth_users(&self, kbps: f64) -> Vec<&UserRecord> {
        self.users
            .iter()
            .filter(|u| u.net.mean_kbps < kbps)
            .collect()
    }

    /// Split users into `n` traffic buckets by id hash — the A/B cohort
    /// assignment (8% buckets in §5.3 are built from these).
    pub fn traffic_split(&self, n: usize) -> Vec<Vec<&UserRecord>> {
        let mut buckets: Vec<Vec<&UserRecord>> = (0..n.max(1)).map(|_| Vec::new()).collect();
        for u in &self.users {
            // Simple splitmix-style hash for stable assignment.
            let mut h = u.id.wrapping_add(0x9E3779B97F4A7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
            h ^= h >> 31;
            buckets[(h % n.max(1) as u64) as usize].push(u);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_respects_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = UserPopulation::generate(
            &PopulationConfig {
                n_users: 500,
                ..PopulationConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(pop.len(), 500);
        assert!(pop.users().iter().all(|u| u.sessions_per_day >= 1.0));
        // Ids unique and sequential.
        for (i, u) in pop.users().iter().enumerate() {
            assert_eq!(u.id, i as u64);
        }
    }

    #[test]
    fn low_bandwidth_cohort_near_mixture_share() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = UserPopulation::generate(
            &PopulationConfig {
                n_users: 10_000,
                ..PopulationConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let share = pop.low_bandwidth_users(2000.0).len() as f64 / pop.len() as f64;
        assert!((share - 0.10).abs() < 0.03, "share {share}");
    }

    #[test]
    fn traffic_split_partitions_everyone() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = UserPopulation::generate(
            &PopulationConfig {
                n_users: 1000,
                ..PopulationConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let buckets = pop.traffic_split(12);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 1000);
        // Buckets roughly even (within 3x of ideal).
        for b in &buckets {
            assert!(b.len() > 1000 / 12 / 3, "bucket size {}", b.len());
        }
        // Deterministic: same split twice.
        let again = pop.traffic_split(12);
        for (a, b) in buckets.iter().zip(&again) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn drifted_model_differs_but_base_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        let pop = UserPopulation::generate(
            &PopulationConfig {
                n_users: 5,
                ..PopulationConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let u = &pop.users()[0];
        let base1 = u.exit_model();
        let base2 = u.exit_model();
        assert_eq!(base1, base2);
        let drift = ToleranceDrift::default();
        let mut any_diff = false;
        for _ in 0..20 {
            let d = u.exit_model_for_day(&drift, &mut rng);
            if (d.stall.tolerance - u.stall.tolerance).abs() > 1.0 {
                any_diff = true;
            }
        }
        assert!(any_diff, "drift should sometimes move tolerance");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(UserPopulation::generate(
            &PopulationConfig {
                n_users: 0,
                ..PopulationConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(UserPopulation::generate(
            &PopulationConfig {
                mean_sessions_per_day: 0.0,
                ..PopulationConfig::default()
            },
            &mut rng
        )
        .is_err());
    }
}
