//! Deterministic rule-based exit models — §5.2's "Rule-Based Modeling".
//!
//! "The rule-based modeling implements deterministic exit rules based on
//! stall event characteristics ... cumulative stall time and stall counts.
//! Exit thresholds for both metrics are systematically varied between 2 and
//! 9, generating a comprehensive set of 64 distinct engagement rules."

use serde::{Deserialize, Serialize};

use crate::qos_model::{ExitModel, SegmentView};
use crate::{Result, UserError};

/// Exit deterministically once cumulative stall time (seconds) or stall
/// count crosses its threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleBasedExit {
    /// Cumulative stall-time threshold (seconds).
    pub max_stall_time: f64,
    /// Stall-count threshold.
    pub max_stall_count: usize,
    #[serde(skip)]
    session_stall: f64,
    #[serde(skip)]
    session_events: usize,
}

impl RuleBasedExit {
    /// Create a rule; thresholds must be positive.
    pub fn new(max_stall_time: f64, max_stall_count: usize) -> Result<Self> {
        if !(max_stall_time > 0.0) || max_stall_count == 0 {
            return Err(UserError::InvalidConfig(
                "thresholds must be positive".into(),
            ));
        }
        Ok(Self {
            max_stall_time,
            max_stall_count,
            session_stall: 0.0,
            session_events: 0,
        })
    }

    /// The paper's full 8×8 grid: thresholds 2..=9 on both axes.
    pub fn grid() -> Vec<RuleBasedExit> {
        let mut rules = Vec::with_capacity(64);
        for count in 2..=9usize {
            for time in 2..=9usize {
                rules.push(RuleBasedExit::new(time as f64, count).expect("grid thresholds valid"));
            }
        }
        rules
    }
}

impl ExitModel for RuleBasedExit {
    fn exit_prob(&mut self, view: &SegmentView<'_>) -> f64 {
        if view.record.stall_time > 0.0 {
            self.session_stall += view.record.stall_time;
            self.session_events += 1;
        }
        if self.session_stall >= self.max_stall_time || self.session_events >= self.max_stall_count
        {
            1.0
        } else {
            0.0
        }
    }

    fn reset_session(&mut self) {
        self.session_stall = 0.0;
        self.session_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingxi_media::BitrateLadder;
    use lingxi_player::{PlayerConfig, PlayerEnv, SegmentRecord};

    fn view_fixture<'a>(
        env: &'a PlayerEnv,
        ladder: &'a BitrateLadder,
        record: &'a SegmentRecord,
    ) -> SegmentView<'a> {
        SegmentView {
            env,
            record,
            ladder,
        }
    }

    fn record(stall: f64) -> SegmentRecord {
        SegmentRecord {
            index: 0,
            level: 1,
            bitrate_kbps: 800.0,
            size_kbits: 1000.0,
            throughput_kbps: 1000.0,
            download_time: 1.0,
            stall_time: stall,
            buffer_after: 5.0,
            switched_from: Some(1),
        }
    }

    #[test]
    fn exits_on_cumulative_time() {
        let ladder = BitrateLadder::default_short_video();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rule = RuleBasedExit::new(3.0, 99).unwrap();
        let r1 = record(1.5);
        assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r1)), 0.0);
        let r2 = record(1.5);
        assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r2)), 1.0);
    }

    #[test]
    fn exits_on_count() {
        let ladder = BitrateLadder::default_short_video();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rule = RuleBasedExit::new(100.0, 2).unwrap();
        let r = record(0.1);
        assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r)), 0.0);
        assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r)), 1.0);
    }

    #[test]
    fn stall_free_segments_never_exit() {
        let ladder = BitrateLadder::default_short_video();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rule = RuleBasedExit::new(2.0, 2).unwrap();
        let r = record(0.0);
        for _ in 0..100 {
            assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r)), 0.0);
        }
    }

    #[test]
    fn reset_clears_accumulation() {
        let ladder = BitrateLadder::default_short_video();
        let env = PlayerEnv::new(PlayerConfig::deterministic(10.0, 0.0)).unwrap();
        let mut rule = RuleBasedExit::new(2.0, 9).unwrap();
        let r = record(1.5);
        rule.exit_prob(&view_fixture(&env, &ladder, &r));
        rule.reset_session();
        assert_eq!(rule.exit_prob(&view_fixture(&env, &ladder, &r)), 0.0);
    }

    #[test]
    fn grid_is_8x8() {
        let grid = RuleBasedExit::grid();
        assert_eq!(grid.len(), 64);
        assert!(grid.iter().all(
            |r| (2.0..=9.0).contains(&r.max_stall_time) && (2..=9).contains(&r.max_stall_count)
        ));
        // All distinct.
        for (i, a) in grid.iter().enumerate() {
            for b in &grid[i + 1..] {
                assert!(
                    a.max_stall_time != b.max_stall_time || a.max_stall_count != b.max_stall_count
                );
            }
        }
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(RuleBasedExit::new(0.0, 2).is_err());
        assert!(RuleBasedExit::new(2.0, 0).is_err());
    }
}
