//! Property-based invariants for the bounded-memory streaming metrics.
//!
//! The fleet's shard-count-invariance contract rests on two claims: the
//! quantile sketch's merge is *exactly* associative and commutative
//! (integer bin counts), and its quantiles stay within one bin width of
//! the exact order statistic for in-range data. Both are pinned here,
//! together with the streaming-moments/batch-formula agreement.

use lingxi_stats::{mean, variance, QuantileSketch, StreamingMoments};
use proptest::prelude::*;

/// Exact ceil-rank order statistic matching `QuantileSketch::quantile`'s
/// rank convention.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn sketch_of(xs: &[f64], lo: f64, hi: f64, bins: usize) -> QuantileSketch {
    let mut s = QuantileSketch::new(lo, hi, bins).expect("valid sketch config");
    for &x in xs {
        s.push(x);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is commutative and associative bit-for-bit: any grouping and
    /// order of shard-local sketches yields the same merged state.
    #[test]
    fn sketch_merge_associative_commutative(
        a in proptest::collection::vec(0.0f64..100.0, 0..40),
        b in proptest::collection::vec(0.0f64..100.0, 0..40),
        c in proptest::collection::vec(0.0f64..100.0, 0..40),
    ) {
        let (sa, sb, sc) = (
            sketch_of(&a, 0.0, 100.0, 32),
            sketch_of(&b, 0.0, 100.0, 32),
            sketch_of(&c, 0.0, 100.0, 32),
        );
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb).unwrap();
        left.merge(&sc).unwrap();
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc).unwrap();
        let mut right = sa.clone();
        right.merge(&right_inner).unwrap();
        prop_assert_eq!(&left, &right, "associativity");
        // c ⊕ b ⊕ a
        let mut rev = sc.clone();
        rev.merge(&sb).unwrap();
        rev.merge(&sa).unwrap();
        prop_assert_eq!(&left, &rev, "commutativity");
        // And all equal the single-stream sketch.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &sketch_of(&all, 0.0, 100.0, 32), "partition independence");
    }

    /// For in-range data the sketch's quantile is within one bin width of
    /// the exact order statistic, at every probed rank.
    #[test]
    fn sketch_rank_error_bounded(
        xs in proptest::collection::vec(0.0f64..50.0, 1..120),
        bins in 8usize..128,
    ) {
        let s = sketch_of(&xs, 0.0, 50.0, bins);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = s.quantile(q).unwrap();
            prop_assert!(
                (approx - exact).abs() <= s.bin_width() + 1e-9,
                "q={} approx={} exact={} width={}", q, approx, exact, s.bin_width()
            );
        }
    }

    /// Quantiles are monotone in `q` and bracketed by the exact extremes.
    #[test]
    fn sketch_quantiles_monotone(
        xs in proptest::collection::vec(-20.0f64..120.0, 1..80),
    ) {
        // Range narrower than the data: clamped tails must stay ordered.
        let s = sketch_of(&xs, 0.0, 100.0, 16);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= prev - 1e-12, "q={} gave {} after {}", q, v, prev);
            prev = v;
        }
        let lo = s.quantile(0.0).unwrap();
        let hi = s.quantile(1.0).unwrap();
        let exact_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= exact_min - 1e-12 && hi <= exact_max + 1e-12);
    }

    /// Streaming moments agree with the batch formulas and are partition
    /// independent up to float round-off.
    #[test]
    fn moments_match_batch(
        xs in proptest::collection::vec(-1000.0f64..1000.0, 2..100),
        split in 0usize..100,
    ) {
        let mut whole = StreamingMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        prop_assert!((whole.mean() - mean(&xs).unwrap()).abs() < 1e-6);
        prop_assert!((whole.variance() - variance(&xs).unwrap()).abs() < 1e-3);
        let k = split.min(xs.len());
        let (first, second) = xs.split_at(k);
        let mut a = StreamingMoments::new();
        let mut b = StreamingMoments::new();
        for &x in first {
            a.push(x);
        }
        for &x in second {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count, whole.count);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
        prop_assert_eq!(a.min, whole.min);
        prop_assert_eq!(a.max, whole.max);
    }
}
