//! Property-based invariants for the statistics crate.

use lingxi_stats::*;
use proptest::prelude::*;

proptest! {
    // Cheap numeric properties: a high case count is still fast.
    // Deterministic and CI-bounded; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentile_bounded_by_extremes(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p in 0.0f64..=100.0,
    ) {
        let v = percentile(&xs, p).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo).unwrap() <= percentile(&xs, hi).unwrap() + 1e-9);
    }

    #[test]
    fn ecdf_monotone_and_bounded(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..150),
        queries in proptest::collection::vec(-2e3f64..2e3, 2..20),
    ) {
        let e = Ecdf::new(&xs).unwrap();
        let mut sorted = queries.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for q in sorted {
            let v = e.eval(q);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn pearson_in_unit_interval(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Ok(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r={r}");
        }
    }

    #[test]
    fn welch_antisymmetric(
        a in proptest::collection::vec(-1e2f64..1e2, 3..50),
        b in proptest::collection::vec(-1e2f64..1e2, 3..50),
    ) {
        let ab = welch_t_test(&a, &b).unwrap();
        let ba = welch_t_test(&b, &a).unwrap();
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
        prop_assert!((ab.p_two_sided - ba.p_two_sided).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_quantile_inverse(p in 0.001f64..0.999) {
        let x = norm_quantile(p).unwrap();
        prop_assert!((norm_cdf(x) - p).abs() < 1e-5);
    }

    #[test]
    fn harmonic_leq_arithmetic(
        xs in proptest::collection::vec(0.1f64..1e4, 1..60),
    ) {
        let hm = harmonic_mean(&xs).unwrap();
        let am = mean(&xs).unwrap();
        prop_assert!(hm <= am + 1e-9, "hm {hm} > am {am}");
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pts in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 3..50),
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if let Ok(fit) = linear_fit(&xs, &ys) {
            // OLS residuals sum to ~0.
            let resid_sum: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - fit.predict(x)).sum();
            prop_assert!(resid_sum.abs() < 1e-6 * (1.0 + ys.iter().map(|y| y.abs()).sum::<f64>()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }
}
