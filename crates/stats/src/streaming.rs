//! Bounded-memory streaming statistics: mergeable moments and a
//! fixed-bin quantile sketch.
//!
//! The fleet engine (see `lingxi-fleet`) aggregates metrics over millions
//! of sessions; storing every per-session value just to compute a mean or
//! a p99 at the epoch barrier is O(sessions) memory. The two types here
//! hold O(1) / O(bins) state instead:
//!
//! * [`StreamingMoments`] — count/sum/sum-of-squares (plus exact min/max),
//!   enough for mean, variance and standard error. Merging adds the
//!   fields; because float addition is not associative, callers that need
//!   bit-identical results across different partitions (the fleet's
//!   shard-count invariance contract) must merge partials in a canonical
//!   order (the fleet merges per-user partials in ascending user-id
//!   order).
//! * [`QuantileSketch`] — a fixed-bin histogram over a configured value
//!   range. Unlike P² (which keeps five adaptive markers but is neither
//!   mergeable nor order-independent), fixed integer bins make the merge
//!   *exactly* associative and commutative — `u64` addition — so sketches
//!   accumulated on different shards merge bit-identically in any order.
//!   The price is a fixed value range and a value error bounded by one
//!   bin width; both are the right trade for QoE metrics whose ranges are
//!   known a priori (stall seconds, watch seconds, ladder bitrates).

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Streaming count/sum/sum-of-squares accumulator: O(1) memory mean and
/// variance over a value stream, with exact min/max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Sum of squared observations.
    pub sum_sq: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one value.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another accumulator into this one. Field-wise addition: exact
    /// for `count`, order-sensitive in the last float bits for the sums —
    /// merge partials in a canonical order when bit-identical results
    /// across partitions are required.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    /// Clamped at 0 against catastrophic cancellation in `sum_sq - n·μ²`.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0)
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A mergeable fixed-bin quantile sketch over a configured value range.
///
/// Values land in one of `bins` equal-width buckets over `[lo, hi)`;
/// values below `lo` count into the first bin, values at or above `hi`
/// into the last (the exact `min`/`max` are tracked separately). Quantiles
/// interpolate within the owning bucket, so for in-range data the answer
/// is within one bin width of the exact order statistic.
///
/// Because the state is integer counts, [`QuantileSketch::merge`] is
/// exactly associative and commutative — shards can accumulate
/// independently and merge in any order with bit-identical results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Create a sketch over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(hi > lo) || !lo.is_finite() || !hi.is_finite() || bins == 0 {
            return Err(StatsError::InvalidParameter);
        }
        Ok(Self {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    /// Lower bound of the tracked range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the tracked range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of buckets.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Width of one bucket.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Observe one value (NaN is ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else {
            let raw = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            raw.min(n - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another sketch into this one. Errors unless both sketches were
    /// built with the same range and bin count.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(StatsError::InvalidParameter);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += *b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// The `q`-quantile (`q` in `[0, 1]`), interpolated within the owning
    /// bucket and clamped to the exact observed `[min, max]`. Errors when
    /// empty or `q` is out of domain.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(StatsError::InvalidParameter);
        }
        // Target rank in [1, count].
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within the bucket by rank position.
                let frac = (target - seen) as f64 / c as f64;
                let left = self.lo + i as f64 * self.bin_width();
                let v = left + frac * self.bin_width();
                return Ok(v.clamp(self.min, self.max));
            }
            seen += c;
        }
        Ok(self.max)
    }

    /// Median shortcut.
    pub fn median(&self) -> Result<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_batch_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count, 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(m.min, 2.0);
        assert_eq!(m.max, 9.0);
    }

    #[test]
    fn moments_merge_equals_single_stream() {
        let mut a = StreamingMoments::new();
        let mut b = StreamingMoments::new();
        let mut whole = StreamingMoments::new();
        for i in 0..100 {
            let x = (i as f64) * 0.37 - 5.0;
            if i < 40 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn moments_empty_and_degenerate() {
        let m = StreamingMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        let mut one = StreamingMoments::new();
        one.push(3.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 3.0);
    }

    #[test]
    fn sketch_quantiles_within_one_bin() {
        let mut s = QuantileSketch::new(0.0, 100.0, 200).unwrap();
        let xs: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        for &x in &xs {
            s.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = sorted[(((q * xs.len() as f64).ceil() as usize).max(1) - 1).min(999)];
            let approx = s.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() <= s.bin_width() + 1e-9,
                "q={q}: approx {approx} exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_clamps_out_of_range_but_tracks_extremes() {
        let mut s = QuantileSketch::new(0.0, 10.0, 10).unwrap();
        s.push(-5.0);
        s.push(50.0);
        s.push(5.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 50.0);
        // Quantiles stay inside the observed extremes.
        assert!(s.quantile(0.0).unwrap() >= -5.0);
        assert!(s.quantile(1.0).unwrap() <= 50.0);
    }

    #[test]
    fn sketch_merge_is_exact() {
        let mut a = QuantileSketch::new(0.0, 10.0, 20).unwrap();
        let mut b = QuantileSketch::new(0.0, 10.0, 20).unwrap();
        let mut whole = QuantileSketch::new(0.0, 10.0, 20).unwrap();
        for i in 0..50 {
            let x = (i as f64) * 0.19;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab, whole, "merge equals single-stream accumulation");
    }

    #[test]
    fn sketch_rejects_bad_configs_and_merges() {
        assert!(QuantileSketch::new(1.0, 1.0, 4).is_err());
        assert!(QuantileSketch::new(0.0, 1.0, 0).is_err());
        assert!(QuantileSketch::new(f64::NAN, 1.0, 4).is_err());
        let mut a = QuantileSketch::new(0.0, 1.0, 4).unwrap();
        let b = QuantileSketch::new(0.0, 2.0, 4).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.quantile(0.5).is_err(), "empty sketch");
        a.push(0.5);
        assert!(a.quantile(1.5).is_err());
        assert!(a.quantile(f64::NAN).is_err());
    }
}
