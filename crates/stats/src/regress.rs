//! Ordinary least-squares simple linear regression.
//!
//! Fig. 14's per-day trend lines between stall-exit rate and the β parameter
//! are "fitted using least squares linear regression" (paper §5.5.1).

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Result of fitting `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope coefficient.
    pub slope: f64,
    /// Intercept coefficient.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit a simple OLS line. Requires at least two points and non-degenerate x.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return Err(StatsError::InsufficientData);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // all y identical: the flat line explains everything
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!(f.slope > 0.9 && f.slope < 1.1);
        assert!(f.r_squared > 0.95 && f.r_squared < 1.0);
    }

    #[test]
    fn flat_y_has_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(linear_fit(&[1.0], &[1.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_err());
    }
}
