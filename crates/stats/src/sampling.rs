//! Dataset sampling utilities.
//!
//! The predictor training pipeline (paper §3.3) partitions data 80:20 with
//! stratification and applies *balanced undersampling*: the majority class
//! (continued watching, ~4:1 even among stall sessions) is randomly
//! undersampled to parity with the minority class (exits). Fig. 9(b) is the
//! ablation of that choice.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Result, StatsError};

/// Split indices `0..n` into (train, test) with the given train fraction.
///
/// Shuffles deterministically under the caller's RNG.
pub fn train_test_split<R: Rng + ?Sized>(
    n: usize,
    train_fraction: f64,
    rng: &mut R,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if n == 0 {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&train_fraction) || train_fraction.is_nan() {
        return Err(StatsError::InvalidParameter);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let cut = ((n as f64) * train_fraction).round() as usize;
    let test = idx.split_off(cut.min(n));
    Ok((idx, test))
}

/// Stratified train/test split: each class keeps the global train fraction,
/// so the test set preserves class balance (the paper's "80:20
/// stratification ratio").
///
/// `labels[i]` is the class of item `i` (binary: exit / keep watching).
pub fn stratified_split<R: Rng + ?Sized>(
    labels: &[bool],
    train_fraction: f64,
    rng: &mut R,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if labels.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&train_fraction) || train_fraction.is_nan() {
        return Err(StatsError::InvalidParameter);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in [false, true] {
        let mut idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        idx.shuffle(rng);
        let cut = ((idx.len() as f64) * train_fraction).round() as usize;
        for (j, i) in idx.into_iter().enumerate() {
            if j < cut {
                train.push(i);
            } else {
                test.push(i);
            }
        }
    }
    train.shuffle(rng);
    test.shuffle(rng);
    Ok((train, test))
}

/// Balanced undersampling: return indices where the majority class has been
/// randomly undersampled to the minority class count. Preserves all minority
/// items. Errors if either class is absent.
pub fn balanced_undersample<R: Rng + ?Sized>(labels: &[bool], rng: &mut R) -> Result<Vec<usize>> {
    let pos: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l)
        .map(|(i, _)| i)
        .collect();
    let neg: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| !l)
        .map(|(i, _)| i)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return Err(StatsError::InsufficientData);
    }
    let (minority, mut majority) = if pos.len() <= neg.len() {
        (pos, neg)
    } else {
        (neg, pos)
    };
    majority.shuffle(rng);
    majority.truncate(minority.len());
    let mut out = minority;
    out.extend(majority);
    out.shuffle(rng);
    Ok(out)
}

/// Reservoir-sample `k` items from an iterator of unknown length
/// (used for the "1/1000 of online users" detailed-log sampling of §5.4).
pub fn reservoir_sample<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, te) = train_test_split(100, 0.8, &mut rng).unwrap();
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        let mut all: Vec<usize> = tr.iter().chain(te.iter()).cloned().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(train_test_split(10, 1.5, &mut rng).is_err());
        assert!(train_test_split(0, 0.5, &mut rng).is_err());
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        let mut rng = StdRng::seed_from_u64(2);
        // 200 negatives, 50 positives (4:1 as in the paper).
        let labels: Vec<bool> = (0..250).map(|i| i < 50).collect();
        let (tr, te) = stratified_split(&labels, 0.8, &mut rng).unwrap();
        let tr_pos = tr.iter().filter(|&&i| labels[i]).count();
        let te_pos = te.iter().filter(|&&i| labels[i]).count();
        assert_eq!(tr_pos, 40);
        assert_eq!(te_pos, 10);
        assert_eq!(tr.len(), 200);
        assert_eq!(te.len(), 50);
    }

    #[test]
    fn balanced_equalises_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels: Vec<bool> = (0..500).map(|i| i < 100).collect();
        let idx = balanced_undersample(&labels, &mut rng).unwrap();
        let pos = idx.iter().filter(|&&i| labels[i]).count();
        let neg = idx.len() - pos;
        assert_eq!(pos, 100);
        assert_eq!(neg, 100);
        // All minority items kept.
        let mut minority: Vec<usize> = idx.iter().cloned().filter(|&i| labels[i]).collect();
        minority.sort_unstable();
        assert_eq!(minority, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn balanced_requires_both_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(balanced_undersample(&[true, true], &mut rng).is_err());
        assert!(balanced_undersample(&[false], &mut rng).is_err());
    }

    #[test]
    fn reservoir_exact_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let sample = reservoir_sample(0..10_000, 100, &mut rng);
        assert_eq!(sample.len(), 100);
        // Roughly uniform: mean should be near 5000.
        let mean: f64 = sample.iter().map(|&x| x as f64).sum::<f64>() / 100.0;
        assert!((mean - 5000.0).abs() < 1500.0, "mean {mean}");
    }

    #[test]
    fn reservoir_short_input() {
        let mut rng = StdRng::seed_from_u64(6);
        let sample = reservoir_sample(0..5, 100, &mut rng);
        assert_eq!(sample.len(), 5);
    }
}
