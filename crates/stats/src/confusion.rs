//! Binary-classification metrics for the exit-rate predictor.
//!
//! The paper evaluates its predictor with accuracy, precision, recall and F1
//! (Fig. 9) and studies recall vs accumulated stall count to choose the
//! trigger threshold (Fig. 8b). "Positive" throughout means *exit*.

use serde::{Deserialize, Serialize};

/// Counts of a binary confusion matrix. Positive class = "user exits".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Predicted exit, user exited.
    pub tp: u64,
    /// Predicted exit, user kept watching.
    pub fp: u64,
    /// Predicted keep-watching, user kept watching.
    pub tn: u64,
    /// Predicted keep-watching, user exited.
    pub fn_: u64,
}

impl BinaryConfusion {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (predicted, actual) pair.
    pub fn record(&mut self, predicted_exit: bool, actual_exit: bool) {
        match (predicted_exit, actual_exit) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merge another matrix into this one (for parallel evaluation shards).
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Derived metrics. Divisions by zero yield 0.0 (convention: a metric
    /// with an empty denominator is reported as zero, never NaN).
    pub fn metrics(&self) -> ClassMetrics {
        let total = self.total() as f64;
        let accuracy = if total == 0.0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total
        };
        let precision = ratio(self.tp, self.tp + self.fp);
        let recall = ratio(self.tp, self.tp + self.fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics {
            accuracy,
            precision,
            recall,
            f1,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Accuracy / precision / recall / F1, the four bars of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut c = BinaryConfusion::new();
        for _ in 0..10 {
            c.record(true, true);
            c.record(false, false);
        }
        let m = c.metrics();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_mixed_counts() {
        let c = BinaryConfusion {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        let m = c.metrics();
        assert!((m.accuracy - 0.93).abs() < 1e-12);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 8.0 / 13.0).abs() < 1e-12);
        let expect_f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((m.f1 - expect_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_all_zero() {
        let m = BinaryConfusion::new().metrics();
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn never_predicts_positive() {
        let mut c = BinaryConfusion::new();
        for _ in 0..5 {
            c.record(false, true);
            c.record(false, false);
        }
        let m = c.metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BinaryConfusion {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = BinaryConfusion {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        };
        a.merge(&b);
        assert_eq!(a.tp, 11);
        assert_eq!(a.total(), 110);
    }
}
