//! Hypothesis tests and the difference-in-differences estimator.
//!
//! The paper's headline numbers come from a 10-day difference-in-differences
//! A/B test: watch time +0.146% ± 0.043% (t = 3.395, p < 0.01), bitrate
//! +0.103% ± 0.015% (t = 6.867), stall −1.287% ± 0.103% (t = −12.495).
//! [`did_estimate`] + [`welch_t_test`] regenerate that analysis shape.

use serde::{Deserialize, Serialize};

use crate::describe::{mean, variance};
use crate::dist::norm_cdf;
use crate::{Result, StatsError};

/// Output of a t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch-Satterthwaite (or `n-1`) degrees of freedom.
    pub df: f64,
    /// Two-sided p-value (normal approximation to the t distribution for
    /// `df > 30`, Hill's approximation otherwise).
    pub p_two_sided: f64,
    /// Difference of means (a - b) or mean of differences.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
}

impl TTestResult {
    /// Whether the two-sided p-value is below `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Two-sided p-value for a t statistic with `df` degrees of freedom.
///
/// Uses the incomplete-beta-free approximation: for large df the t
/// distribution converges to the normal; for small df we apply the
/// Cornish-Fisher style correction from Hill (1970), accurate to ~1e-4 —
/// more than enough for reporting experiment significance.
fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    let t = t.abs();
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 {
        return 1.0;
    }
    // Normal-approximation with correction term: z ~= t * (1 - 1/(4 df)) /
    // sqrt(1 + t^2/(2 df)).
    let z = t * (1.0 - 1.0 / (4.0 * df)) / (1.0 + t * t / (2.0 * df)).sqrt();
    2.0 * (1.0 - norm_cdf(z))
}

/// Welch's unequal-variance two-sample t-test.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientData);
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let va = variance(a)?;
    let vb = variance(b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence of difference.
        return Ok(TTestResult {
            t: 0.0,
            df: na + nb - 2.0,
            p_two_sided: 1.0,
            estimate: ma - mb,
            std_err: 0.0,
        });
    }
    let se = se2.sqrt();
    let t = (ma - mb) / se;
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    Ok(TTestResult {
        t,
        df,
        p_two_sided: t_sf_two_sided(t, df),
        estimate: ma - mb,
        std_err: se,
    })
}

/// Paired t-test on `a[i] - b[i]` differences.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch);
    }
    if a.len() < 2 {
        return Err(StatsError::InsufficientData);
    }
    let d: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = mean(&d)?;
    let vd = variance(&d)?;
    let n = d.len() as f64;
    let se = (vd / n).sqrt();
    if se == 0.0 {
        return Ok(TTestResult {
            t: 0.0,
            df: n - 1.0,
            p_two_sided: if md == 0.0 { 1.0 } else { 0.0 },
            estimate: md,
            std_err: 0.0,
        });
    }
    let t = md / se;
    Ok(TTestResult {
        t,
        df: n - 1.0,
        p_two_sided: t_sf_two_sided(t, n - 1.0),
        estimate: md,
        std_err: se,
    })
}

/// Difference-in-differences estimate from daily relative differences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DidResult {
    /// Mean post-intervention difference minus mean pre-intervention
    /// difference (the DiD effect, in whatever units the inputs carry —
    /// the experiment harness feeds relative percentages).
    pub effect: f64,
    /// Standard error of the effect.
    pub std_err: f64,
    /// t statistic of the effect.
    pub t: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean pre-period difference (the "AA" baseline bias).
    pub pre_mean: f64,
    /// Mean post-period difference.
    pub post_mean: f64,
}

/// Difference-in-differences over per-day treatment-vs-control differences.
///
/// `pre` holds the daily (treatment − control) differences during the AA
/// phase, `post` during the AB phase. The DiD effect is
/// `mean(post) − mean(pre)`, tested with Welch's t-test across days —
/// exactly how §5.3 reports its +0.146% ± 0.043% watch-time effect.
pub fn did_estimate(pre: &[f64], post: &[f64]) -> Result<DidResult> {
    let w = welch_t_test(post, pre)?;
    Ok(DidResult {
        effect: w.estimate,
        std_err: w.std_err,
        t: w.t,
        p_two_sided: w.p_two_sided,
        pre_mean: mean(pre)?,
        post_mean: mean(post)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_detects_shift() {
        let a: Vec<f64> = (0..40).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..40).map(|i| 9.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.t > 10.0);
        assert!(r.p_two_sided < 0.001);
        assert!((r.estimate - 1.0).abs() < 1e-9);
        assert!(r.significant(0.05));
    }

    #[test]
    fn welch_no_difference() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.t, 0.0);
        assert!(r.p_two_sided > 0.99);
    }

    #[test]
    fn welch_identical_constants() {
        let a = [2.0, 2.0, 2.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.p_two_sided, 1.0);
    }

    #[test]
    fn welch_insufficient() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn paired_detects_consistent_improvement() {
        let a = [10.1, 10.2, 10.15, 10.3, 10.25, 10.2];
        let b = [10.0, 10.1, 10.05, 10.2, 10.15, 10.1];
        let r = paired_t_test(&a, &b).unwrap();
        assert!((r.estimate - 0.1).abs() < 1e-9);
        assert!(r.p_two_sided < 0.01);
    }

    #[test]
    fn paired_length_mismatch() {
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn did_recovers_injected_effect() {
        // AA phase: ~0 daily difference; AB phase: ~+0.15 effect.
        let pre = [0.02, -0.03, 0.01, -0.02, 0.03];
        let post = [0.16, 0.13, 0.17, 0.14, 0.15];
        let d = did_estimate(&pre, &post).unwrap();
        assert!((d.effect - 0.148).abs() < 0.02);
        assert!(d.t > 5.0);
        assert!(d.p_two_sided < 0.01);
        assert!(d.pre_mean.abs() < 0.05);
    }

    #[test]
    fn t_sf_matches_normal_for_large_df() {
        // t=1.96, df=1e6 should give ~0.05.
        let p = t_sf_two_sided(1.959964, 1e6);
        assert!((p - 0.05).abs() < 1e-3, "p={p}");
    }

    #[test]
    fn t_sf_small_df_is_heavier_tailed() {
        let p_small = t_sf_two_sided(2.0, 4.0);
        let p_large = t_sf_two_sided(2.0, 1000.0);
        assert!(p_small > p_large);
    }
}
