//! Probability distributions: the standard normal special functions plus
//! parameterised Normal / LogNormal models with sampling.
//!
//! The player simulator models past bandwidth as `N(mu, sigma^2)` (paper
//! Eq. 3) and the pre-playback pruning rule tests `mu - 3*sigma > Q_max`
//! (paper §4); both rely on this module.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Error function `erf(x)` via the Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error ~1.5e-7, plenty for CDF work here).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function `Phi(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile function (inverse CDF) via the
/// Acklam/Wichura-style rational approximation refined with one Halley step.
///
/// Returns an error unless `0 < p < 1`.
pub fn norm_quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidParameter);
    }
    // Peter Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the accurate erf-based CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// A normal distribution `N(mu, sigma^2)` with sampling and CDF access.
///
/// `sigma` may be zero, in which case the distribution is a point mass
/// (useful for deterministic bandwidth in tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalDist {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (non-negative).
    pub sigma: f64,
}

impl NormalDist {
    /// Create a normal distribution; `sigma` must be non-negative and both
    /// parameters finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(StatsError::InvalidParameter);
        }
        Ok(Self { mu, sigma })
    }

    /// Maximum-likelihood fit from samples (population sigma).
    pub fn fit(samples: &[f64]) -> Result<Self> {
        Self::fit_iter(samples.iter().copied())
    }

    /// [`NormalDist::fit`] over any re-iterable sample source (e.g. a ring
    /// buffer's iterator). Summation order follows iteration order, so for
    /// the same sequence of samples this is bit-identical to `fit`.
    pub fn fit_iter<I>(samples: I) -> Result<Self>
    where
        I: Iterator<Item = f64> + Clone,
    {
        let n = samples.clone().count();
        if n == 0 {
            return Err(StatsError::Empty);
        }
        let mu = samples.clone().sum::<f64>() / n as f64;
        let var = samples.map(|x| (x - mu) * (x - mu)).sum::<f64>() / n as f64;
        Self::new(mu, var.sqrt())
    }

    /// [`NormalDist::fit`] over a ring buffer's two contiguous halves,
    /// visiting `front` then `back` — the same element order as
    /// [`NormalDist::fit_iter`] over the deque's iterator, so every
    /// floating-point operation happens in the same sequence and the fit is
    /// bit-identical. This variant skips the counting pass (slice lengths
    /// are known) and iterates slices instead of a wrap-checking deque
    /// cursor, which is what the per-segment bandwidth-model refresh on the
    /// player hot path wants.
    pub fn fit_slices(front: &[f64], back: &[f64]) -> Result<Self> {
        let n = front.len() + back.len();
        if n == 0 {
            return Err(StatsError::Empty);
        }
        let mut sum = 0.0;
        for &x in front {
            sum += x;
        }
        for &x in back {
            sum += x;
        }
        let mu = sum / n as f64;
        let mut sq = 0.0;
        for &x in front {
            sq += (x - mu) * (x - mu);
        }
        for &x in back {
            sq += (x - mu) * (x - mu);
        }
        let var = sq / n as f64;
        Self::new(mu, var.sqrt())
    }

    /// Draw one sample using the Box-Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mu;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    /// Draw one sample truncated below at `lo` (simple rejection with a
    /// clamp fallback after 64 tries; adequate for the mild truncations used
    /// by the bandwidth model).
    pub fn sample_truncated_low<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64) -> f64 {
        for _ in 0..64 {
            let x = self.sample(rng);
            if x >= lo {
                return x;
            }
        }
        lo
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sigma == 0.0 {
            return if x >= self.mu { 1.0 } else { 0.0 };
        }
        norm_cdf((x - self.mu) / self.sigma)
    }

    /// The `mu - k*sigma` lower envelope used by LingXi's pre-playback
    /// pruning test (paper §4 uses `k = 3`).
    pub fn lower_envelope(&self, k: f64) -> f64 {
        self.mu - k * self.sigma
    }
}

/// A log-normal distribution, parameterised by the mean and standard
/// deviation of the *underlying* normal. Used for heavy-tailed bandwidth
/// regimes and the long-tail of day-to-day tolerance drift (paper Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalDist {
    /// Mean of ln(X).
    pub mu_log: f64,
    /// Standard deviation of ln(X), non-negative.
    pub sigma_log: f64,
}

impl LogNormalDist {
    /// Create from log-space parameters.
    pub fn new(mu_log: f64, sigma_log: f64) -> Result<Self> {
        if !mu_log.is_finite() || !sigma_log.is_finite() || sigma_log < 0.0 {
            return Err(StatsError::InvalidParameter);
        }
        Ok(Self { mu_log, sigma_log })
    }

    /// Create a log-normal whose *linear-space* mean and standard deviation
    /// match the given values.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self> {
        if mean <= 0.0 || std < 0.0 {
            return Err(StatsError::InvalidParameter);
        }
        let cv2 = (std / mean).powi(2);
        let sigma_log = (cv2 + 1.0).ln().sqrt();
        let mu_log = mean.ln() - sigma_log * sigma_log / 2.0;
        Self::new(mu_log, sigma_log)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let n = NormalDist {
            mu: self.mu_log,
            sigma: self.sigma_log,
        };
        n.sample(rng).exp()
    }

    /// Linear-space mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu_log + self.sigma_log * self.sigma_log / 2.0).exp()
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.sigma_log == 0.0 {
            return if x.ln() >= self.mu_log { 1.0 } else { 0.0 };
        }
        norm_cdf((x.ln() - self.mu_log) / self.sigma_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fit_slices_matches_fit_iter_bit_for_bit() {
        // Any front/back split of the same sequence must reproduce
        // `fit_iter` exactly — this is the ring-buffer fast path's
        // bit-identity contract.
        let samples = [
            3121.75,
            980.0625,
            4471.21875,
            2250.5,
            1823.109375,
            5004.0,
            777.3125,
            3999.875,
        ];
        let whole = NormalDist::fit_iter(samples.iter().copied()).unwrap();
        for split in 0..=samples.len() {
            let (front, back) = samples.split_at(split);
            let fast = NormalDist::fit_slices(front, back).unwrap();
            assert_eq!(whole.mu.to_bits(), fast.mu.to_bits(), "split {split}");
            assert_eq!(whole.sigma.to_bits(), fast.sigma.to_bits(), "split {split}");
        }
        assert!(NormalDist::fit_slices(&[], &[]).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.959964) - 0.975).abs() < 1e-5);
        for x in [-2.5, -1.0, -0.3, 0.7, 2.2] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = norm_quantile(p).unwrap();
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn quantile_rejects_bad_p() {
        assert!(norm_quantile(0.0).is_err());
        assert!(norm_quantile(1.0).is_err());
        assert!(norm_quantile(-0.1).is_err());
        assert!(norm_quantile(f64::NAN).is_err());
    }

    #[test]
    fn normal_sampling_moments() {
        let d = NormalDist::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = crate::describe::mean(&xs).unwrap();
        let s = crate::describe::std_dev(&xs).unwrap();
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let d = NormalDist::new(-1.5, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let f = NormalDist::fit(&xs).unwrap();
        assert!((f.mu + 1.5).abs() < 0.02);
        assert!((f.sigma - 0.7).abs() < 0.02);
    }

    #[test]
    fn degenerate_normal_is_point_mass() {
        let d = NormalDist::new(3.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 3.0);
        assert_eq!(d.cdf(2.999), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn truncated_sampling_respects_bound() {
        let d = NormalDist::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.sample_truncated_low(&mut rng, 0.5) >= 0.5);
        }
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(NormalDist::new(f64::NAN, 1.0).is_err());
        assert!(NormalDist::new(0.0, -1.0).is_err());
        assert!(NormalDist::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_from_mean_std_matches_mean() {
        let d = LogNormalDist::from_mean_std(4000.0, 1500.0).unwrap();
        assert!((d.mean() - 4000.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..80_000).map(|_| d.sample(&mut rng)).collect();
        let m = crate::describe::mean(&xs).unwrap();
        assert!((m - 4000.0).abs() / 4000.0 < 0.02, "mean {m}");
    }

    #[test]
    fn lognormal_cdf_monotone_nonneg() {
        let d = LogNormalDist::from_mean_std(10.0, 5.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let c = d.cdf(i as f64);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn lower_envelope_matches_paper_prune_rule() {
        let d = NormalDist::new(10_000.0, 1000.0).unwrap();
        assert!((d.lower_envelope(3.0) - 7000.0).abs() < 1e-9);
    }
}
