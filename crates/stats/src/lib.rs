//! Statistical substrate for the LingXi reproduction.
//!
//! The paper's analyses (§2) and evaluation (§5) are built on a small set of
//! statistical primitives: normal models of past bandwidth, empirical CDFs of
//! user behaviour, Pearson correlations between the tuned parameter and
//! stall-exit rates, least-squares trend lines, Welch t-tests and a
//! difference-in-differences estimator for the A/B test, and classification
//! metrics (accuracy / precision / recall / F1) for the exit-rate predictor.
//! All of those live here so every other crate shares one implementation.
//!
//! Everything is deterministic given an `rng`; no global state.
//!
//! ```
//! use lingxi_stats::did_estimate;
//!
//! // Pre-phase differences hover near zero; post-phase near +5:
//! // the difference-in-differences estimate recovers the step.
//! let did = did_estimate(&[0.1, -0.2, 0.0], &[5.0, 4.8, 5.2]).unwrap();
//! assert!((did.effect - 5.0).abs() < 0.3);
//! assert!(did.p_two_sided < 0.05);
//! ```

#![forbid(unsafe_code)]

pub mod confusion;
pub mod corr;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod hypothesis;
pub mod regress;
pub mod sampling;
pub mod streaming;

pub use confusion::{BinaryConfusion, ClassMetrics};
pub use corr::{pearson, spearman};
pub use describe::{harmonic_mean, mean, median, percentile, std_dev, variance, Summary};
pub use dist::{norm_cdf, norm_pdf, norm_quantile, LogNormalDist, NormalDist};
pub use ecdf::{Ecdf, Histogram};
pub use hypothesis::{did_estimate, paired_t_test, welch_t_test, DidResult, TTestResult};
pub use regress::{linear_fit, LinearFit};
pub use sampling::{balanced_undersample, stratified_split, train_test_split};
pub use streaming::{QuantileSketch, StreamingMoments};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty where at least one element is required.
    Empty,
    /// The two inputs must have the same, non-zero length.
    LengthMismatch,
    /// Not enough samples to estimate the requested quantity.
    InsufficientData,
    /// A parameter was outside its valid domain (e.g. `p` not in `(0,1)`).
    InvalidParameter,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty input"),
            StatsError::LengthMismatch => write!(f, "input length mismatch"),
            StatsError::InsufficientData => write!(f, "insufficient data"),
            StatsError::InvalidParameter => write!(f, "parameter out of domain"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
