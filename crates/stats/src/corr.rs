//! Correlation coefficients.
//!
//! §5.5.1 of the paper reports Pearson correlations between users' daily
//! stall-exit rates and the β parameter LingXi assigns them (range −0.23 to
//! −0.52 across days); Fig. 14 is regenerated with [`pearson`].

use crate::{Result, StatsError};

/// Pearson product-moment correlation coefficient.
///
/// Errors if the slices differ in length, have fewer than two points, or
/// either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InsufficientData);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over mid-ranks, handling ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch);
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks (ties share the average of the ranks they span), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic "uncorrelated" pattern: periods 10 and 17 are
        // coprime, so over one full cycle (170 points) the rank sequences
        // are independent.
        let xs: Vec<f64> = (0..170).map(|i| (i % 10) as f64).collect();
        let ys: Vec<f64> = (0..170).map(|i| ((i * 5 + 3) % 17) as f64).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.1, "r={r}");
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero variance
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone but nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
