//! Descriptive statistics over `f64` slices.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Arithmetic mean. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n-1 denominator). Needs at least two samples.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData);
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Harmonic mean, the robust throughput estimator used by MPC-family ABRs
/// (`RobustMPC` divides it by the max observed error). All inputs must be
/// strictly positive.
pub fn harmonic_mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::InvalidParameter);
    }
    Ok(xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>())
}

/// Median (linear-interpolated for even lengths).
pub fn median(xs: &[f64]) -> Result<f64> {
    percentile(xs, 50.0)
}

/// Percentile in `[0, 100]` using linear interpolation between order
/// statistics (the "linear" / type-7 method, matching numpy's default).
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=100.0).contains(&p) || p.is_nan() {
        return Err(StatsError::InvalidParameter);
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let w = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation (0 when `n < 2`).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary; errors on empty input.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::Empty);
        }
        let mean_v = mean(xs)?;
        let std = if xs.len() > 1 { std_dev(xs)? } else { 0.0 };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            n: xs.len(),
            mean: mean_v,
            std,
            min,
            p25: percentile(xs, 25.0)?,
            p50: percentile(xs, 50.0)?,
            p75: percentile(xs, 75.0)?,
            max,
        })
    }

    /// Standard error of the mean (`std / sqrt(n)`), the error-bar length
    /// used throughout the paper's figures.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Population variance is 4.0; sample variance is 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_known() {
        assert!((harmonic_mean(&[1.0, 4.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(harmonic_mean(&[1.0, 0.0]).is_err());
        assert!(harmonic_mean(&[]).is_err());
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 4.0);
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0).unwrap() - 1.75).abs() < 1e-12);
        assert!(percentile(&xs, 101.0).is_err());
        assert!(percentile(&xs, -1.0).is_err());
    }

    #[test]
    fn percentile_handles_unsorted() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs).unwrap(), 5.0);
    }

    #[test]
    fn summary_fields() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!(s.std_err() > 0.0);
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p50, 7.0);
    }
}
