//! Empirical CDFs and histograms.
//!
//! Nearly half the paper's figures are CDFs (Fig. 2, 5a, 8a); the experiment
//! harness evaluates them on fixed grids so the series can be printed and
//! compared against the published curves.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// An empirical cumulative distribution function built from a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaNs are rejected).
    pub fn new(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::Empty);
        }
        if xs.iter().any(|x| x.is_nan()) {
            return Err(StatsError::InvalidParameter);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(Self { sorted })
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from zero observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we test
        // `v <= x` (all "true" elements precede the partition point).
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile for `q` in `[0,1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(StatsError::InvalidParameter);
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Ok(self.sorted[idx])
    }

    /// Evaluate the CDF on an evenly spaced grid of `n` points spanning
    /// `[lo, hi]`, yielding `(x, F(x))` pairs — the series form every CDF
    /// figure is printed in.
    pub fn on_grid(&self, lo: f64, hi: f64, n: usize) -> Result<Vec<(f64, f64)>> {
        if n < 2 || !(hi > lo) {
            return Err(StatsError::InvalidParameter);
        }
        Ok((0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect())
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped into
/// the edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 || !(hi > lo) {
            return Err(StatsError::InvalidParameter);
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Insert one observation (NaN ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Insert many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin centre of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Normalised densities (fractions summing to 1, or all zeros if empty).
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval_step() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(9.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_nearest_rank() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 10.0);
        assert_eq!(e.quantile(0.2).unwrap(), 10.0);
        assert_eq!(e.quantile(0.21).unwrap(), 20.0);
        assert_eq!(e.quantile(1.0).unwrap(), 50.0);
        assert!(e.quantile(1.5).is_err());
    }

    #[test]
    fn ecdf_rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn ecdf_grid_monotone() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0, 3.0, 2.0]).unwrap();
        let grid = e.on_grid(0.0, 6.0, 13).unwrap();
        assert_eq!(grid.len(), 13);
        for w in grid.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(grid.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend(&[-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 3); // -1, 0, 1.9
        assert_eq!(h.counts()[1], 1); // 2.0
        assert_eq!(h.counts()[4], 3); // 9.99, 10.0, 55.0
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_densities() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.densities(), vec![0.0; 4]);
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}
