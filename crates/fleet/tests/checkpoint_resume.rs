//! Kill-at-epoch-barrier + resume must be bit-identical to an
//! uninterrupted run — at 1, 4, and 8 shards, over both persistence
//! backends and both static and population-dynamics cohorts.
//!
//! This is the checkpoint half of the engine's determinism contract (see
//! `FleetEngine::run_resumable`): immediately after barrier `k` every
//! user's long-term state is durable, so epoch `k+1` is a pure function
//! of (config, scenario, durable state) and a resumed run replays the
//! remaining epochs exactly.

use std::path::{Path, PathBuf};

use lingxi_fleet::{
    ContentionConfig, FleetCheckpoint, FleetConfig, FleetEngine, FleetReport, FleetScenario,
    PersistenceConfig, PopulationDynamics, RunControl, RunOutcome,
};
use lingxi_workload::{ArrivalKind, ClassRegistry, Poisson};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lingxi_ckpt_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> FleetScenario {
    FleetScenario {
        name: "ckpt".into(),
        n_users: 24,
        n_videos: 8,
        mean_sessions_per_epoch: 2.0,
        ..FleetScenario::default()
    }
}

fn config(shards: usize, dir: &Path, persistence: PersistenceConfig) -> FleetConfig {
    FleetConfig {
        shards,
        epochs: 4,
        seed: 17,
        state_dir: dir.to_path_buf(),
        persistence,
        ..FleetConfig::default()
    }
}

/// Add population dynamics (arrivals over shared links) to a config.
fn with_dynamics(mut config: FleetConfig) -> FleetConfig {
    config.contention = Some(ContentionConfig {
        links: 4,
        capacity_kbps: 25_000.0,
        arrival_window: 10.0,
        access_cap_factor: 1.5,
    });
    config.dynamics = Some(PopulationDynamics {
        arrivals: ArrivalKind::Poisson(Poisson { rate_per_sec: 0.05 }),
        registry: ClassRegistry::default_heterogeneous(),
        day_seconds: 600.0,
    });
    config
}

/// Run straight through in one directory; kill at the barrier after
/// `stop_after` epochs and resume in another. Both must agree bit-exactly.
fn assert_kill_resume_bit_identical(
    make_config: impl Fn(&Path) -> FleetConfig,
    stop_after: usize,
    tag: &str,
) -> FleetReport {
    let straight_dir = temp_dir(&format!("{tag}_straight"));
    let resumed_dir = temp_dir(&format!("{tag}_resumed"));
    let scenario = scenario();

    let straight = FleetEngine::new(make_config(&straight_dir))
        .unwrap()
        .run(&scenario)
        .unwrap();

    let engine = FleetEngine::new(make_config(&resumed_dir)).unwrap();
    let first = engine
        .run_resumable(
            &scenario,
            RunControl {
                resume: false,
                stop_after_epochs: Some(stop_after),
            },
        )
        .unwrap();
    let ckpt = match first {
        RunOutcome::Suspended(ckpt) => ckpt,
        RunOutcome::Complete(_) => panic!("run must suspend at the barrier"),
    };
    assert_eq!(ckpt.next_epoch, stop_after);
    assert!(FleetCheckpoint::load(&resumed_dir).unwrap().is_some());

    // The "kill": drop the engine and start over from the manifest. A
    // fresh engine models the restarted process.
    let resumed = match FleetEngine::new(make_config(&resumed_dir))
        .unwrap()
        .run_resumable(
            &scenario,
            RunControl {
                resume: true,
                stop_after_epochs: None,
            },
        )
        .unwrap()
    {
        RunOutcome::Complete(report) => *report,
        RunOutcome::Suspended(_) => panic!("resumed run must complete"),
    };

    // Bit-identical: merged metrics, sketches, and all counters.
    assert_eq!(straight.merged_metrics(), resumed.merged_metrics());
    assert_eq!(straight.merged_sketches(), resumed.merged_sketches());
    assert_eq!(straight.sessions, resumed.sessions);
    assert_eq!(straight.segments, resumed.segments);
    assert_eq!(straight.users, resumed.users);
    for (a, b) in straight.epochs.iter().zip(&resumed.epochs) {
        assert_eq!(a.control, b.control);
        assert_eq!(a.treatment, b.treatment);
        assert_eq!(a.classes, b.classes);
    }
    // A completed run leaves no manifest behind.
    assert!(FleetCheckpoint::load(&resumed_dir).unwrap().is_none());

    let _ = std::fs::remove_dir_all(&straight_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
    straight
}

#[test]
fn kill_resume_bit_identical_at_1_4_8_shards_binlog() {
    let mut reports = Vec::new();
    for shards in [1usize, 4, 8] {
        let report = assert_kill_resume_bit_identical(
            |dir| with_dynamics(config(shards, dir, PersistenceConfig::binary_log())),
            2,
            &format!("bin{shards}"),
        );
        reports.push(report);
    }
    // And the shard counts agree with each other (the engine's standing
    // invariance contract composes with checkpointing).
    assert_eq!(reports[0].merged_metrics(), reports[1].merged_metrics());
    assert_eq!(reports[0].merged_metrics(), reports[2].merged_metrics());
    assert_eq!(reports[0].merged_sketches(), reports[1].merged_sketches());
    assert_eq!(reports[0].merged_sketches(), reports[2].merged_sketches());
}

#[test]
fn kill_resume_bit_identical_static_cohort_file_backend() {
    // The manifest protocol is backend-agnostic: the legacy file-per-user
    // store checkpoints and resumes the same way.
    assert_kill_resume_bit_identical(
        |dir| config(2, dir, PersistenceConfig::FileJson),
        1,
        "file2",
    );
}

#[test]
fn periodic_checkpoints_leave_resumable_manifest() {
    let dir = temp_dir("periodic");
    let mut cfg = config(2, &dir, PersistenceConfig::binary_log());
    cfg.checkpoint_every = 1;
    let report = FleetEngine::new(cfg).unwrap().run(&scenario()).unwrap();
    assert!(report.sessions > 0);
    // Completion removed the manifest even though every barrier wrote one.
    assert!(FleetCheckpoint::load(&dir).unwrap().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_mismatched_run() {
    let dir = temp_dir("mismatch");
    let engine = FleetEngine::new(config(2, &dir, PersistenceConfig::binary_log())).unwrap();
    let outcome = engine
        .run_resumable(
            &scenario(),
            RunControl {
                resume: false,
                stop_after_epochs: Some(1),
            },
        )
        .unwrap();
    assert!(matches!(outcome, RunOutcome::Suspended(_)));

    // Different seed → refuse.
    let mut other = config(2, &dir, PersistenceConfig::binary_log());
    other.seed = 99;
    let err = FleetEngine::new(other)
        .unwrap()
        .run_resumable(
            &scenario(),
            RunControl {
                resume: true,
                stop_after_epochs: None,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("does not match"));

    // No manifest at all → refuse.
    let empty = temp_dir("mismatch_empty");
    let err = FleetEngine::new(config(2, &empty, PersistenceConfig::binary_log()))
        .unwrap()
        .run_resumable(
            &scenario(),
            RunControl {
                resume: true,
                stop_after_epochs: None,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("no checkpoint"));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}
