//! Property-based invariants for the dispatch layer.
//!
//! The layer's determinism contract (see `crates/fleet/src/dispatch.rs`):
//! placement is a pure function of (seed, logical dispatcher stream,
//! barrier-snapshot estimates) — never of the shard count or the
//! *physical* dispatcher count — and `StaticHash` under the `Dispatcher`
//! trait reproduces the legacy engine bit-exactly. The pure-function
//! properties run under proptest over random snapshots/weights; the
//! engine-level bit-identity contracts run full (small) fleet runs.

use lingxi_fleet::{
    static_link_of, ContentionConfig, DispatchConfig, DispatchPolicy, Dispatcher, FleetConfig,
    FleetEngine, FleetScenario, Lsq, StaticHash, DISPATCH_STREAMS,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lingxi_dispatch_props_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> FleetScenario {
    FleetScenario {
        name: "dispatch_props".into(),
        n_users: 24,
        n_videos: 8,
        mean_sessions_per_epoch: 2.0,
        ..FleetScenario::default()
    }
}

fn contended(links: usize) -> ContentionConfig {
    ContentionConfig {
        links,
        capacity_kbps: 20_000.0,
        arrival_window: 10.0,
        access_cap_factor: 1.5,
    }
}

/// A contended fleet run with the given dispatch layer (or none).
fn run_fleet(
    shards: usize,
    links: usize,
    dispatch: Option<DispatchConfig>,
    tag: &str,
) -> lingxi_fleet::FleetReport {
    let dir = temp_dir(tag);
    let config = FleetConfig {
        shards,
        epochs: 2,
        seed: 7,
        state_dir: dir.clone(),
        contention: Some(contended(links)),
        dispatch,
        ..FleetConfig::default()
    };
    let report = FleetEngine::new(config).unwrap().run(&scenario()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement determinism: the same (seed, snapshot, call sequence)
    /// produces the same placements, for both policies, and never places
    /// outside the link range.
    #[test]
    fn placement_is_pure_in_seed_and_snapshot(
        seed in 0u64..1_000_000,
        links in 1usize..12,
        n_users in 1usize..120,
        snapshot in proptest::collection::vec(0u64..500, 0..12),
        fat_every in 1usize..5,
    ) {
        let weights: Vec<f64> = (0..links)
            .map(|q| if q % fat_every == 0 { 4.0 } else { 1.0 })
            .collect();
        let place_all = |d: &mut dyn Dispatcher| -> Vec<u64> {
            d.refresh(&snapshot);
            (0..n_users as u64)
                .map(|u| d.place(u, seed ^ u.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect()
        };
        let mut lsq_a = Lsq::new(weights.clone(), 2);
        let mut lsq_b = Lsq::new(weights.clone(), 2);
        let a = place_all(&mut lsq_a);
        prop_assert_eq!(&a, &place_all(&mut lsq_b));
        prop_assert!(a.iter().all(|&q| q < links as u64));

        let mut sh_a = StaticHash::new(seed, links);
        let mut sh_b = StaticHash::new(seed, links);
        let s = place_all(&mut sh_a);
        prop_assert_eq!(&s, &place_all(&mut sh_b));
        prop_assert!(s.iter().all(|&q| q < links as u64));
    }

    /// The physical dispatcher count only regroups the pinned logical
    /// streams: placements are identical for every count in
    /// 1..=DISPATCH_STREAMS, and the per-dispatcher loads always sum to
    /// the placements made.
    #[test]
    fn physical_dispatcher_count_never_moves_a_placement(
        seed in 0u64..1_000_000,
        links in 1usize..10,
        n_users in 1usize..100,
        snapshot in proptest::collection::vec(0u64..200, 0..10),
    ) {
        let weights = vec![1.0; links];
        let run = |dispatchers: usize| {
            let mut d = Lsq::new(weights.clone(), dispatchers);
            d.refresh(&snapshot);
            let placements: Vec<u64> = (0..n_users as u64)
                .map(|u| d.place(u, seed ^ u.rotate_left(17)))
                .collect();
            let loads: u64 = d.dispatcher_loads().iter().sum();
            prop_assert_eq!(loads as usize, n_users);
            prop_assert_eq!(d.dispatcher_loads().len(), dispatchers);
            Ok(placements)
        };
        let reference = run(1)?;
        for dispatchers in 2..=DISPATCH_STREAMS {
            prop_assert_eq!(&reference, &run(dispatchers)?);
        }
    }

    /// LSQ never exceeds StaticHash's weighted queue on the snapshot it
    /// saw: for every single decision, the weighted estimated length of
    /// LSQ's chosen queue is at most that of the queue StaticHash would
    /// have picked, judged on the same local estimates (argmin ≤ any
    /// alternative, including the hash's pick).
    #[test]
    fn lsq_decisions_beat_static_hash_on_local_estimates(
        seed in 0u64..1_000_000,
        links in 1usize..12,
        n_users in 1usize..150,
        snapshot in proptest::collection::vec(0u64..300, 0..12),
        fat_every in 1usize..5,
    ) {
        let weights: Vec<f64> = (0..links)
            .map(|q| if q % fat_every == 0 { 4.8 } else { 1.0 })
            .collect();
        let mut lsq = Lsq::new(weights.clone(), 2);
        lsq.refresh(&snapshot);
        for uid in 0..n_users as u64 {
            let stream_seed = seed ^ uid.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let stream = Lsq::stream_of(stream_seed);
            let est: Vec<f64> = (0..links).map(|q| lsq.estimate(stream, q)).collect();
            let chosen = lsq.place(uid, stream_seed) as usize;
            let hashed = static_link_of(seed, uid, links as u64) as usize;
            let score = |q: usize| (est[q] + 1.0) / weights[q];
            prop_assert!(
                score(chosen) <= score(hashed),
                "user {uid}: LSQ chose queue {chosen} (weighted {}), hash queue {hashed} \
                 (weighted {})",
                score(chosen),
                score(hashed)
            );
        }
    }
}

/// Merged metrics are bit-identical across physical dispatcher counts:
/// the engine-level version of the stream-pinning argument, through full
/// contended runs at 1/2/4 dispatchers (and a shard-count cross-check).
#[test]
fn merged_metrics_invariant_across_dispatcher_counts() {
    let lsq = |dispatchers: usize| DispatchConfig {
        policy: DispatchPolicy::Lsq { dispatchers },
        capacity_weights: vec![4.0, 1.0, 1.0, 1.0, 4.0, 1.0],
    };
    let one = run_fleet(2, 6, Some(lsq(1)), "d1");
    let two = run_fleet(2, 6, Some(lsq(2)), "d2");
    let four = run_fleet(2, 6, Some(lsq(4)), "d4");
    assert_eq!(one.merged_metrics(), two.merged_metrics());
    assert_eq!(one.merged_metrics(), four.merged_metrics());
    assert_eq!(one.merged_sketches(), four.merged_sketches());
    assert_eq!(one.sessions, four.sessions);
    // Placements (not just aggregates) are identical; only the load
    // accounting regroups.
    for (a, b) in one.dispatch_epochs().iter().zip(four.dispatch_epochs()) {
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.max_weighted_occupancy, b.max_weighted_occupancy);
        assert_eq!(a.dispatcher_loads.len(), 1);
        assert_eq!(b.dispatcher_loads.len(), 4);
        assert_eq!(
            a.dispatcher_loads.iter().sum::<u64>(),
            b.dispatcher_loads.iter().sum::<u64>()
        );
    }
    // And across shard counts under LSQ, since shard ownership follows
    // the placed link.
    let eight_shards = run_fleet(8, 6, Some(lsq(2)), "d2s8");
    assert_eq!(two.merged_metrics(), eight_shards.merged_metrics());
    assert_eq!(two.merged_sketches(), eight_shards.merged_sketches());
}

/// StaticHash under the Dispatcher trait reproduces the legacy engine
/// (dispatch: None) bit-exactly — the refactor moved the hash, not the
/// behaviour.
#[test]
fn static_hash_dispatch_is_bit_exact_with_legacy_engine() {
    let legacy = run_fleet(4, 6, None, "legacy");
    let dispatched = run_fleet(4, 6, Some(DispatchConfig::static_hash()), "static");
    assert_eq!(legacy.merged_metrics(), dispatched.merged_metrics());
    assert_eq!(legacy.merged_sketches(), dispatched.merged_sketches());
    assert_eq!(legacy.sessions, dispatched.sessions);
    assert_eq!(legacy.segments, dispatched.segments);
    // The dispatched run additionally records placements; the legacy one
    // records none.
    assert!(legacy.max_weighted_occupancy().is_none());
    let occ = dispatched
        .max_weighted_occupancy()
        .expect("dispatch mode records occupancy");
    assert!(occ >= 1.0, "24 users on 6 links peak at >= 1: {occ}");
    for e in dispatched.dispatch_epochs() {
        let e = e.unwrap();
        assert_eq!(e.placements.iter().sum::<u64>(), 24);
        // StaticHash's per-epoch placements match the hash directly.
        let mut expected = vec![0u64; 6];
        for uid in 0..24u64 {
            expected[static_link_of(7, uid, 6) as usize] += 1;
        }
        assert_eq!(e.placements, expected);
    }
}
