//! Bit-identity against the pre-topology-refactor contention kernel.
//!
//! The fairness/topology generalization folded the single-link
//! `SharedBottleneck` into the degenerate 1-hop [`lingxi_net::Topology`]
//! code path: every contended fleet run now goes through the topology
//! allocator, with max-min on a single link dispatching to the exact
//! pre-refactor water-fill walk. These fingerprints were captured on the
//! commit *before* the refactor (PR 7 head); if any of them moves, the
//! degenerate path is no longer bit-identical to the old kernel.
//!
//! Regenerate (only after an intentional simulation change) with:
//! `cargo test -p lingxi-fleet --test prerefactor_identity -- --ignored --nocapture`

use lingxi_fleet::{
    ContentionConfig, FleetConfig, FleetEngine, FleetReport, FleetScenario, PopulationDynamics,
};
use lingxi_workload::{ArrivalKind, ClassRegistry, FlashRamp};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lingxi_prerefactor_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The legacy contended cell (static cohort hashing onto shared links).
fn run_contended() -> FleetReport {
    let dir = temp_dir("contended");
    let config = FleetConfig {
        shards: 2,
        epochs: 2,
        seed: 17,
        state_dir: dir.clone(),
        contention: Some(ContentionConfig {
            links: 5,
            capacity_kbps: 18_000.0,
            arrival_window: 12.0,
            access_cap_factor: 1.5,
        }),
        ..FleetConfig::default()
    };
    let scenario = FleetScenario {
        name: "prerefactor_contended".into(),
        n_users: 24,
        n_videos: 8,
        mean_sessions_per_epoch: 2.0,
        ..FleetScenario::default()
    };
    let report = FleetEngine::new(config).unwrap().run(&scenario).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The legacy flash-crowd cell (population dynamics onto shared links) —
/// the `flashcrowd`/`population` call-site shape.
fn run_dynamics() -> FleetReport {
    let dir = temp_dir("dynamics");
    let config = FleetConfig {
        shards: 2,
        epochs: 1,
        seed: 23,
        state_dir: dir.clone(),
        contention: Some(ContentionConfig {
            links: 3,
            capacity_kbps: 22_000.0,
            arrival_window: 15.0,
            access_cap_factor: 1.5,
        }),
        dynamics: Some(PopulationDynamics {
            arrivals: ArrivalKind::FlashRamp(FlashRamp::uniform(40, 15.0)),
            registry: ClassRegistry::default_heterogeneous(),
            day_seconds: 900.0,
        }),
        ..FleetConfig::default()
    };
    let scenario = FleetScenario {
        name: "prerefactor_dynamics".into(),
        n_users: 40,
        n_videos: 8,
        mean_sessions_per_epoch: 2.0,
        ..FleetScenario::default()
    };
    let report = FleetEngine::new(config).unwrap().run(&scenario).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Flatten a report into a bit-exact fingerprint: per-epoch merged floats
/// as IEEE-754 bit patterns plus the integer counters.
fn fingerprint(report: &FleetReport) -> Vec<u64> {
    let mut bits = Vec::new();
    for m in report.merged_metrics() {
        bits.push(m.watch_time.to_bits());
        bits.push(m.stall_time.to_bits());
        bits.push(m.mean_bitrate.to_bits());
        bits.push(m.sessions as u64);
        bits.push(m.completions as u64);
        bits.push(m.stall_count as u64);
        bits.push(m.switches as u64);
    }
    bits.push(report.sessions as u64);
    bits.push(report.segments as u64);
    bits
}

/// Captured on the pre-refactor kernel; see module docs.
const CONTENDED_FINGERPRINT: &[u64] = &[
    4655877589770960896,
    0,
    4659225787509234865,
    46,
    38,
    0,
    126,
    4654989184375717888,
    4603903880908171796,
    4659409513613401726,
    51,
    30,
    3,
    98,
    97,
    1755,
];

/// Captured on the pre-refactor kernel; see module docs.
const DYNAMICS_FINGERPRINT: &[u64] = &[
    4659593939072843776,
    4621462916202313255,
    4657779177101044590,
    97,
    61,
    13,
    380,
    97,
    1677,
];

#[test]
#[ignore = "regeneration helper: prints the fingerprint constants"]
fn regenerate_fingerprints() {
    println!(
        "CONTENDED_FINGERPRINT: &[u64] = &{:?};",
        fingerprint(&run_contended())
    );
    println!(
        "DYNAMICS_FINGERPRINT: &[u64] = &{:?};",
        fingerprint(&run_dynamics())
    );
}

#[test]
fn contended_cell_is_bit_identical_to_prerefactor() {
    assert_eq!(
        fingerprint(&run_contended()),
        CONTENDED_FINGERPRINT,
        "degenerate 1-hop topology diverged from the pre-refactor kernel"
    );
}

#[test]
fn dynamics_cell_is_bit_identical_to_prerefactor() {
    assert_eq!(
        fingerprint(&run_dynamics()),
        DYNAMICS_FINGERPRINT,
        "dynamics path diverged from the pre-refactor kernel"
    );
}
