//! Load-aware dispatch: which shared link (queue) an arriving user is
//! placed on.
//!
//! Historically the fleet placed users by static id-hash
//! ([`static_link_of`]); one hot link then serialized a whole shard while
//! others idled. This module adds the LSQ ("local shortest queue")
//! alternative from the load-balancing literature: multiple dispatchers
//! place arrivals using *local, possibly-stale* queue-length estimates
//! with per-queue capacity weights for heterogeneous hardware. Estimates
//! are refreshed only at epoch barriers — the stale-information regime —
//! and each dispatcher self-increments its own estimates between
//! refreshes.
//!
//! # Determinism contract
//!
//! Placement must stay a pure function of `(seed, dispatcher stream,
//! barrier snapshot)` — never of the shard count *or the physical
//! dispatcher count*. Two pins make that hold bit-exactly:
//!
//! - **Queues are links, not shards.** Dispatch assigns a user to a
//!   shared link; shard ownership remains `mix64(link) % shards`, so the
//!   existing shard-count invariance survives any placement policy.
//! - **Logical dispatcher streams are pinned at
//!   [`DISPATCH_STREAMS`].** A physical dispatcher count `D` merely
//!   *groups* the fixed streams (stream `s` belongs to dispatcher
//!   `s % D`, and per-dispatcher load accounting follows that grouping);
//!   placement itself is computed per logical stream. Adding or removing
//!   physical dispatchers re-homes streams but cannot move a single
//!   placement — which is exactly what the `dispatch` experiment's
//!   1/2/4-dispatcher bit-identity gate pins. (The same idiom as the
//!   binary state log's pinned shard-file count.)
//!
//! A user's stream is derived from the engine's per-(seed, user, epoch)
//! RNG stream seed, so dispatch randomness rides the existing stream
//! derivation without consuming any agent RNG draws.
//!
//! # Estimate scale
//!
//! At a barrier each stream adopts `snapshot / DISPATCH_STREAMS` — its
//! *share* of the observed per-queue placements — rather than the raw
//! fleet-wide counts. Raw counts would dwarf a single stream's own
//! increments and make every queue that was busy last epoch look
//! saturated forever (the classic stale-herd oscillation); the per-share
//! scale puts the stale term and the self-increment term in the same
//! units, and greedy placement then converges on the weighted-
//! proportional fixed point (placements ∝ capacity weight).

use serde::{Deserialize, Serialize};

use crate::{mix64, FleetError, Result};

/// Number of logical dispatcher streams. Pinned (like the binary log's
/// shard-file count) so placements are invariant to the *physical*
/// dispatcher count, which may be any divisor-friendly value in
/// `1..=DISPATCH_STREAMS`.
pub const DISPATCH_STREAMS: usize = 8;

/// Salt of the legacy static user→link hash (the pre-dispatch fleet
/// behaviour, kept bit-exact as the reference policy).
pub(crate) const STATIC_LINK_SALT: u64 = 0x11AC_C355_71E0_2BB7;

/// Salt deriving a user's logical dispatcher stream from the engine's
/// per-(seed, user, epoch) stream seed.
const STREAM_SALT: u64 = 0xD15A_7C8E_57A1_E5EE;

/// The legacy static user→link hash: pure in `(seed, user id)`, uniform
/// over `links`. [`StaticHash`] and the engine's contention-mode link
/// assignment both call this — one source of truth for the bit-exact
/// reference placement.
pub fn static_link_of(seed: u64, user_id: u64, links: u64) -> u64 {
    mix64(seed ^ mix64(user_id ^ STATIC_LINK_SALT)) % links
}

/// Which placement policy the dispatch layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Today's behaviour: the static id-hash, kept as the bit-exact
    /// reference ([`static_link_of`]).
    StaticHash,
    /// Load-aware LSQ: `dispatchers` physical dispatchers (grouping the
    /// pinned logical streams) place each arrival on the estimated-
    /// shortest *weighted* queue, estimates refreshed only at epoch
    /// barriers.
    Lsq {
        /// Physical dispatcher count, `1..=DISPATCH_STREAMS`. Groups the
        /// logical streams for load accounting; provably cannot affect
        /// placement (see the module docs).
        dispatchers: usize,
    },
}

/// Dispatch-layer configuration ([`crate::FleetConfig::dispatch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchConfig {
    /// The placement policy.
    pub policy: DispatchPolicy,
    /// Per-link capacity weights for heterogeneous hardware: weight `w`
    /// scales the link's real capacity to `w × contention.capacity_kbps`
    /// and tells LSQ the link absorbs `w×` the load of a weight-1 link.
    /// Empty means uniform (all `1.0`); in population-dynamics mode the
    /// weights are instead derived from the link-class registry and this
    /// must stay empty.
    pub capacity_weights: Vec<f64>,
}

impl DispatchConfig {
    /// A static-hash dispatch layer with uniform weights (bit-exact with
    /// `dispatch: None`).
    pub fn static_hash() -> Self {
        Self {
            policy: DispatchPolicy::StaticHash,
            capacity_weights: Vec::new(),
        }
    }

    /// An LSQ dispatch layer with `dispatchers` physical dispatchers and
    /// uniform weights.
    pub fn lsq(dispatchers: usize) -> Self {
        Self {
            policy: DispatchPolicy::Lsq { dispatchers },
            capacity_weights: Vec::new(),
        }
    }

    /// Validate against the contention link count and dynamics mode.
    pub fn validate(&self, links: usize, has_dynamics: bool) -> Result<()> {
        if let DispatchPolicy::Lsq { dispatchers } = self.policy {
            if dispatchers == 0 || dispatchers > DISPATCH_STREAMS {
                return Err(FleetError::InvalidConfig(format!(
                    "LSQ needs 1..={DISPATCH_STREAMS} dispatchers, got {dispatchers}"
                )));
            }
        }
        if !self.capacity_weights.is_empty() {
            if has_dynamics {
                return Err(FleetError::InvalidConfig(
                    "explicit capacity_weights conflict with population dynamics \
                     (link heterogeneity comes from the class registry there; \
                     leave the weights empty to derive them from the registry)"
                        .into(),
                ));
            }
            if self.capacity_weights.len() != links {
                return Err(FleetError::InvalidConfig(format!(
                    "capacity_weights has {} entries for {} links",
                    self.capacity_weights.len(),
                    links
                )));
            }
            if let Some(w) = self
                .capacity_weights
                .iter()
                .find(|w| !(**w > 0.0) || !w.is_finite())
            {
                return Err(FleetError::InvalidConfig(format!(
                    "capacity weights must be positive and finite, got {w}"
                )));
            }
        }
        Ok(())
    }

    /// Build the policy's dispatcher over `weights` (one per link).
    pub fn build(&self, seed: u64, weights: Vec<f64>) -> Box<dyn Dispatcher> {
        match self.policy {
            DispatchPolicy::StaticHash => Box::new(StaticHash::new(seed, weights.len())),
            DispatchPolicy::Lsq { dispatchers } => Box::new(Lsq::new(weights, dispatchers)),
        }
    }
}

/// A placement policy: puts each arriving user on a link-level queue.
///
/// Implementations must be pure in their constructor inputs, the
/// [`Dispatcher::refresh`] snapshots and the `place` call sequence —
/// never in shard layout, thread schedule or physical dispatcher count.
pub trait Dispatcher: std::fmt::Debug + Send {
    /// Place one arriving user; returns the queue (link) index.
    /// `stream_seed` is the engine's per-(seed, user, epoch) stream seed.
    fn place(&mut self, user_id: u64, stream_seed: u64) -> u64;

    /// Epoch barrier: adopt the realized per-queue placement counts of
    /// the finished epoch as the new (now-stale) estimates and reset the
    /// per-dispatcher load accounting.
    fn refresh(&mut self, snapshot: &[u64]);

    /// Placements made by each *physical* dispatcher since the last
    /// refresh (empty for policies without dispatcher state).
    fn dispatcher_loads(&self) -> &[u64];
}

/// The bit-exact legacy policy: [`static_link_of`], ignoring estimates.
#[derive(Debug, Clone)]
pub struct StaticHash {
    seed: u64,
    links: u64,
}

impl StaticHash {
    /// A static-hash dispatcher over `links` queues.
    pub fn new(seed: u64, links: usize) -> Self {
        Self {
            seed,
            links: (links as u64).max(1),
        }
    }
}

impl Dispatcher for StaticHash {
    fn place(&mut self, user_id: u64, _stream_seed: u64) -> u64 {
        static_link_of(self.seed, user_id, self.links)
    }

    fn refresh(&mut self, _snapshot: &[u64]) {}

    fn dispatcher_loads(&self) -> &[u64] {
        &[]
    }
}

/// LSQ over the pinned logical dispatcher streams: each stream keeps its
/// own weighted queue-length estimates (barrier share + own placements)
/// and places greedily on the estimated-shortest weighted queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    /// Per-queue capacity weights (len = number of links).
    weights: Vec<f64>,
    /// Physical dispatcher count (groups the logical streams).
    dispatchers: usize,
    /// Per-stream local estimates, `est[stream * links + queue]`.
    est: Vec<f64>,
    /// Placements per physical dispatcher since the last refresh.
    loads: Vec<u64>,
}

impl Lsq {
    /// An LSQ dispatcher over `weights.len()` queues.
    pub fn new(weights: Vec<f64>, dispatchers: usize) -> Self {
        let links = weights.len().max(1);
        let dispatchers = dispatchers.clamp(1, DISPATCH_STREAMS);
        Self {
            weights,
            dispatchers,
            est: vec![0.0; DISPATCH_STREAMS * links],
            loads: vec![0; dispatchers],
        }
    }

    /// The logical dispatcher stream a user belongs to this epoch,
    /// derived from the engine's per-(seed, user, epoch) stream seed.
    pub fn stream_of(stream_seed: u64) -> usize {
        (mix64(stream_seed ^ STREAM_SALT) % DISPATCH_STREAMS as u64) as usize
    }

    /// One stream's current estimate of one queue's length (barrier
    /// share plus the stream's own placements since the last refresh).
    pub fn estimate(&self, stream: usize, queue: usize) -> f64 {
        self.est[stream * self.weights.len() + queue]
    }

    /// The per-queue capacity weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The queue `stream` would place the next arrival on: the argmin of
    /// the weighted estimated length `(est + 1) / weight`, ties broken
    /// deterministically by cyclic order from the stream's own offset
    /// (so equal-estimate streams fan out instead of herding onto
    /// queue 0).
    fn shortest_weighted(&self, stream: usize) -> usize {
        let links = self.weights.len();
        let offset = stream % links;
        let base = stream * links;
        let mut best_q = offset;
        let mut best_score = f64::INFINITY;
        for k in 0..links {
            let q = (offset + k) % links;
            let score = (self.est[base + q] + 1.0) / self.weights[q];
            if score < best_score {
                best_score = score;
                best_q = q;
            }
        }
        best_q
    }
}

impl Dispatcher for Lsq {
    fn place(&mut self, _user_id: u64, stream_seed: u64) -> u64 {
        let stream = Self::stream_of(stream_seed);
        let q = self.shortest_weighted(stream);
        self.est[stream * self.weights.len() + q] += 1.0;
        self.loads[stream % self.dispatchers] += 1;
        q as u64
    }

    fn refresh(&mut self, snapshot: &[u64]) {
        let links = self.weights.len();
        // Each stream adopts its *share* of the barrier counts (see the
        // module docs: raw counts would sit at fleet scale and drown the
        // stream's own unit increments).
        for stream in 0..DISPATCH_STREAMS {
            for q in 0..links {
                self.est[stream * links + q] =
                    snapshot.get(q).copied().unwrap_or(0) as f64 / DISPATCH_STREAMS as f64;
            }
        }
        for l in &mut self.loads {
            *l = 0;
        }
    }

    fn dispatcher_loads(&self) -> &[u64] {
        &self.loads
    }
}

/// What one epoch's dispatch pass produced. Carried inside
/// [`crate::EpochMetrics`] so it rides the checkpoint manifest: a resumed
/// run re-seeds its estimates from the last completed epoch's placements
/// and stays bit-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchEpoch {
    /// Users placed on each link this epoch (the next barrier snapshot).
    pub placements: Vec<u64>,
    /// `max_q placements[q] / weight[q]` — the heterogeneity-normalized
    /// hot-queue occupancy the LSQ policy exists to shrink.
    pub max_weighted_occupancy: f64,
    /// Placements per physical dispatcher (LSQ only; empty for
    /// [`StaticHash`]). Reporting only: the grouping varies with the
    /// configured dispatcher count, placements provably do not.
    pub dispatcher_loads: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hash_matches_legacy_formula() {
        let mut d = StaticHash::new(42, 6);
        for id in 0..200u64 {
            assert_eq!(d.place(id, 999), static_link_of(42, id, 6));
        }
        assert!(d.dispatcher_loads().is_empty());
    }

    #[test]
    fn lsq_placement_is_pure_in_seed_and_snapshot() {
        let weights = vec![4.0, 1.0, 1.0, 1.0];
        let snapshot = vec![12, 3, 3, 2];
        let run = |dispatchers: usize| {
            let mut d = Lsq::new(weights.clone(), dispatchers);
            d.refresh(&snapshot);
            (0..100u64)
                .map(|u| d.place(u, crate::mix64(u ^ 77)))
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same inputs, same placements");
        // The physical dispatcher count groups streams for accounting but
        // must not move a single placement.
        for d in 2..=DISPATCH_STREAMS {
            assert_eq!(a, run(d), "{d} dispatchers changed placements");
        }
    }

    #[test]
    fn lsq_spreads_proportionally_to_weights() {
        // 2 fat (w=4) + 6 thin (w=1) queues, zero snapshot: greedy must
        // land close to the weighted-proportional split and far below the
        // all-on-one-queue herd.
        let weights = vec![4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let mut d = Lsq::new(weights.clone(), 4);
        d.refresh(&[0; 8]);
        let mut counts = [0u64; 8];
        for u in 0..280u64 {
            counts[d.place(u, crate::mix64(u)) as usize] += 1;
        }
        let max_weighted = counts
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| c as f64 / w)
            .fold(0.0, f64::max);
        // Ideal level: 280 / 14 = 20 per unit weight; allow stream
        // granularity slack but reject herding (a uniform split would
        // put 35 on a thin queue).
        assert!(
            max_weighted < 28.0,
            "weighted occupancy {max_weighted} vs ideal 20"
        );
        let loads: u64 = d.dispatcher_loads().iter().sum();
        assert_eq!(loads, 280, "every placement accounted to a dispatcher");
    }

    #[test]
    fn lsq_estimates_settle_across_barriers() {
        // Iterating (place epoch, refresh with realized counts) must stay
        // at the weighted-proportional fixed point, not oscillate between
        // "everyone on fat" and "everyone on thin".
        let weights = vec![4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let mut d = Lsq::new(weights.clone(), 2);
        let mut snapshot = vec![0u64; 8];
        for epoch in 0..4usize {
            d.refresh(&snapshot);
            let mut counts = vec![0u64; 8];
            for u in 0..280u64 {
                let s = crate::mix64(u ^ (epoch as u64) << 17);
                counts[d.place(u, s) as usize] += 1;
            }
            let max_weighted = counts
                .iter()
                .zip(&weights)
                .map(|(&c, &w)| c as f64 / w)
                .fold(0.0, f64::max);
            // Ideal level is 280/14 = 20 per unit weight; a fat-herd
            // epoch would read 35 (all 280 on the two w=4 queues) and a
            // thin-flight epoch ~46.7. Every epoch — including the ones
            // placed from a realized-count snapshot — must stay in the
            // granularity band around the ideal, never at either herd.
            assert!(
                max_weighted < 27.0,
                "epoch {epoch}: weighted occupancy {max_weighted} (counts {counts:?})"
            );
            snapshot = counts;
        }
    }

    #[test]
    fn config_validation_rejects_bad_weights() {
        let cfg = |weights: Vec<f64>, dispatchers| DispatchConfig {
            policy: DispatchPolicy::Lsq { dispatchers },
            capacity_weights: weights,
        };
        assert!(cfg(vec![], 2).validate(4, false).is_ok());
        assert!(cfg(vec![1.0, 4.0, 1.0, 1.0], 2).validate(4, false).is_ok());
        assert!(cfg(vec![1.0, 4.0], 2).validate(4, false).is_err(), "len");
        assert!(cfg(vec![1.0; 4], 0).validate(4, false).is_err(), "disp 0");
        assert!(
            cfg(vec![1.0; 4], DISPATCH_STREAMS + 1)
                .validate(4, false)
                .is_err(),
            "too many dispatchers"
        );
        assert!(cfg(vec![0.0; 4], 2).validate(4, false).is_err(), "zero w");
        assert!(
            cfg(vec![f64::NAN; 4], 2).validate(4, false).is_err(),
            "nan w"
        );
        assert!(
            cfg(vec![1.0; 4], 2).validate(4, true).is_err(),
            "explicit weights under dynamics"
        );
        assert!(cfg(vec![], 2).validate(4, true).is_ok());
        assert!(DispatchConfig::static_hash().validate(4, true).is_ok());
    }
}
